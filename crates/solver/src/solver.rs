//! The CDCL search engine.

use crate::heap::VarOrderHeap;
use crate::{ClauseDb, ClauseId, SolveResult, SolverConfig, SolverStats};
use rescheck_cnf::{Assignment, Clause, Cnf, LBool, Lit, Var};
use rescheck_obs::{Event, NullObserver, Observer};
use rescheck_trace::{NullSink, TraceSink};
use std::io;

/// An entry in a watch list: the watching clause plus a *blocker* literal
/// whose truth lets propagation skip the clause without touching it.
#[derive(Clone, Copy, Debug)]
struct Watcher {
    clause: ClauseId,
    blocker: Lit,
}

/// A Chaff-style CDCL SAT solver.
///
/// The search follows Fig. 1 of the paper: decide, deduce (BCP over
/// watched literals), analyze conflicts by resolution (Fig. 2, 1UIP stop
/// criterion), backtrack by assertion. Learned clauses are recorded with
/// their resolve sources so an independent checker can replay the proof.
///
/// Clauses must all be added before the first [`solve`](Solver::solve)
/// call; clause IDs match the order of addition (and thus the input CNF).
///
/// # Examples
///
/// ```
/// use rescheck_cnf::Cnf;
/// use rescheck_solver::{Solver, SolverConfig};
///
/// let mut cnf = Cnf::new();
/// cnf.add_dimacs_clause(&[1, 2]);
/// cnf.add_dimacs_clause(&[-1]);
/// let mut solver = Solver::new(SolverConfig::default());
/// solver.add_formula(&cnf);
/// let result = solver.solve();
/// assert!(result.is_sat());
/// assert!(cnf.is_satisfied_by(result.model().unwrap()));
/// ```
#[derive(Debug)]
pub struct Solver {
    cfg: SolverConfig,
    db: ClauseDb,
    num_vars: usize,

    watches: Vec<Vec<Watcher>>,
    assigns: Vec<LBool>,
    level: Vec<u32>,
    reason: Vec<Option<ClauseId>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,

    activity: Vec<f64>,
    var_inc: f64,
    order: VarOrderHeap,
    phase: Vec<bool>,
    seen: Vec<bool>,

    stats: SolverStats,
    rng: u64,

    started: bool,
    initialized: bool,
    finished: Option<SolveResult>,
    /// An input clause found unsatisfiable at level 0 during setup
    /// (an empty clause, or a unit contradicting an earlier unit).
    pending_conflict: Option<ClauseId>,
    pending_units: Vec<ClauseId>,

    /// For every variable assigned at decision level 0, the ID of a
    /// **unit clause** asserting its value (the original clause if it was
    /// unit, otherwise a unit derived by resolution and recorded in the
    /// trace). Conflict analysis resolves with these to keep level-0
    /// literals out of learned clauses.
    unit_id: Vec<Option<ClauseId>>,
    /// Level-0 variables whose unit clause has not been derived yet,
    /// in chronological order.
    pending_unit_vars: Vec<Var>,

    conflicts_since_restart: u64,
    next_reduce: u64,
}

impl Solver {
    /// Creates an empty solver with the given configuration.
    pub fn new(cfg: SolverConfig) -> Self {
        let seed = cfg.seed | 1; // xorshift state must be non-zero
        let next_reduce = cfg.reduce_db_interval;
        Solver {
            cfg,
            db: ClauseDb::new(),
            num_vars: 0,
            watches: Vec::new(),
            assigns: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            order: VarOrderHeap::new(),
            phase: Vec::new(),
            seen: Vec::new(),
            stats: SolverStats::default(),
            rng: seed,
            started: false,
            initialized: false,
            finished: None,
            pending_conflict: None,
            pending_units: Vec::new(),
            unit_id: Vec::new(),
            pending_unit_vars: Vec::new(),
            conflicts_since_restart: 0,
            next_reduce,
        }
    }

    /// Creates a solver preloaded with a formula.
    pub fn from_cnf(cnf: &Cnf, cfg: SolverConfig) -> Self {
        let mut solver = Solver::new(cfg);
        solver.add_formula(cnf);
        solver
    }

    /// The configuration in use.
    pub fn config(&self) -> &SolverConfig {
        &self.cfg
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &SolverStats {
        &self.stats
    }

    /// The clause database (originals + live learned clauses).
    pub fn clause_db(&self) -> &ClauseDb {
        &self.db
    }

    /// Number of variables the solver knows about.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Declares variables up to `n` (0-based indices `0..n`).
    pub fn ensure_vars(&mut self, n: usize) {
        assert!(!self.started, "cannot add variables after solving started");
        self.num_vars = self.num_vars.max(n);
    }

    /// Adds every clause of `cnf`, in order.
    ///
    /// # Panics
    ///
    /// Panics if solving has already started.
    pub fn add_formula(&mut self, cnf: &Cnf) {
        self.ensure_vars(cnf.num_vars());
        for clause in cnf.clauses() {
            self.add_clause_internal(Clause::new(clause.iter().copied()));
        }
    }

    /// Adds a single clause; its ID is the number of clauses added before.
    ///
    /// # Panics
    ///
    /// Panics if solving has already started.
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) -> ClauseId {
        self.add_clause_internal(Clause::new(lits))
    }

    fn add_clause_internal(&mut self, clause: Clause) -> ClauseId {
        assert!(!self.started, "cannot add clauses after solving started");
        if let Some(max) = clause.max_var() {
            self.num_vars = self.num_vars.max(max.index() + 1);
        }
        self.db.add_original(clause)
    }

    /// Solves without emitting a trace (Table 1's "trace off" mode).
    ///
    /// Calling `solve` again returns the cached answer; after an
    /// inconclusive budget-limited run it resumes the search.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_traced(&mut NullSink::new())
            .expect("NullSink cannot fail")
    }

    /// Solves while streaming a resolve trace into `sink`.
    ///
    /// Pass `&mut sink` to keep ownership of the sink.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors raised by the sink (e.g. a full disk while
    /// writing a trace file). The solver state is unusable for tracing
    /// after such an error; `solve` may still be called.
    pub fn solve_traced(&mut self, sink: &mut dyn TraceSink) -> io::Result<SolveResult> {
        self.solve_observed(sink, &mut NullObserver)
    }

    /// [`solve_traced`](Solver::solve_traced) with instrumentation: the
    /// observer receives a [`Event::Decision`] per branching decision, a
    /// [`Event::Conflict`] per conflict, plus restart, clause-learning
    /// and database-reduction events as they happen.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors raised by the sink, exactly like
    /// [`solve_traced`](Solver::solve_traced).
    pub fn solve_observed(
        &mut self,
        sink: &mut dyn TraceSink,
        obs: &mut dyn Observer,
    ) -> io::Result<SolveResult> {
        if let Some(result) = &self.finished {
            return Ok(result.clone());
        }
        self.started = true;
        if !self.initialized {
            self.initialize();
        }

        // Setup-time contradictions (empty clause, contradicting units).
        if let Some(confl) = self.pending_conflict {
            return self.conclude_unsat(confl, sink);
        }

        let mut budget = self.cfg.conflict_limit;
        loop {
            let conflict = self.propagate();
            self.derive_level_zero_units(sink)?;
            if let Some(confl) = conflict {
                self.stats.conflicts += 1;
                self.conflicts_since_restart += 1;
                obs.observe(&Event::Conflict {
                    number: self.stats.conflicts,
                    decision_level: self.decision_level() as u32,
                });
                if self.decision_level() == 0 {
                    return self.conclude_unsat(confl, sink);
                }
                let learned_before = self.stats.learned_clauses;
                let literals_before = self.stats.learned_literals;
                self.handle_conflict(confl, sink)?;
                if self.stats.learned_clauses > learned_before {
                    obs.observe(&Event::ClauseLearned {
                        id: self.stats.learned_clauses,
                        literals: self.stats.learned_literals - literals_before,
                    });
                }
                if self.cfg.clause_deletion && self.stats.conflicts >= self.next_reduce {
                    let deleted_before = self.stats.deleted_clauses;
                    self.reduce_db();
                    self.next_reduce += self.cfg.reduce_db_interval + self.cfg.reduce_db_increment;
                    obs.observe(&Event::DbReduced {
                        kept: self.stats.learned_clauses - self.stats.deleted_clauses,
                        deleted: self.stats.deleted_clauses - deleted_before,
                    });
                }
                if let Some(limit) = &mut budget {
                    if *limit == 0 {
                        return Ok(SolveResult::Unknown);
                    }
                    *limit -= 1;
                }
            } else if self.should_restart() {
                let conflicts_since = self.conflicts_since_restart;
                self.restart();
                obs.observe(&Event::Restart {
                    number: self.stats.restarts,
                    conflicts_since,
                });
            } else if self.decide() {
                obs.observe(&Event::Decision {
                    number: self.stats.decisions,
                });
            } else {
                // No free variables and no conflict: satisfiable.
                let model = self.extract_model();
                let result = SolveResult::Satisfiable(model);
                self.finished = Some(result.clone());
                return Ok(result);
            }
        }
    }

    // ------------------------------------------------------------------
    // Setup
    // ------------------------------------------------------------------

    fn initialize(&mut self) {
        self.initialized = true;
        let n = self.num_vars;
        self.watches = vec![Vec::new(); 2 * n];
        self.assigns = vec![LBool::Undef; n];
        self.level = vec![0; n];
        self.reason = vec![None; n];
        self.phase = vec![self.cfg.default_phase; n];
        self.seen = vec![false; n];
        self.activity = vec![0.0; n];
        self.unit_id = vec![None; n];
        for i in 0..n {
            self.order.insert(Var::new(i), &self.activity);
        }

        for index in 0..self.db.num_original() {
            let id = ClauseId::new(index);
            let lits = self.db.literals(id).expect("original clauses are live");
            match lits.len() {
                0 => {
                    if self.pending_conflict.is_none() {
                        self.pending_conflict = Some(id);
                    }
                }
                1 => self.pending_units.push(id),
                _ => {
                    if !is_tautology(lits) {
                        let (a, b) = (lits[0], lits[1]);
                        self.watches[a.code()].push(Watcher {
                            clause: id,
                            blocker: b,
                        });
                        self.watches[b.code()].push(Watcher {
                            clause: id,
                            blocker: a,
                        });
                    }
                }
            }
        }

        // Enqueue input units at level 0; a contradicting pair is a
        // setup-time conflict with the later clause as the conflicting one.
        let units = std::mem::take(&mut self.pending_units);
        for id in units {
            let lit = self.db.literals(id).expect("live")[0];
            match value_of(&self.assigns, lit) {
                LBool::Undef => self.enqueue(lit, Some(id)),
                LBool::True => {}
                LBool::False => {
                    if self.pending_conflict.is_none() {
                        self.pending_conflict = Some(id);
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Assignment plumbing
    // ------------------------------------------------------------------

    /// Current decision level (0 before any branching).
    pub fn decision_level(&self) -> usize {
        self.trail_lim.len()
    }

    /// The value a literal currently has.
    pub fn lit_value(&self, lit: Lit) -> LBool {
        value_of(&self.assigns, lit)
    }

    fn enqueue(&mut self, lit: Lit, reason: Option<ClauseId>) {
        let v = lit.var().index();
        debug_assert!(self.assigns[v].is_undef(), "enqueue of assigned var");
        self.assigns[v] = LBool::from(lit.is_positive());
        self.level[v] = self.decision_level() as u32;
        self.reason[v] = reason;
        self.trail.push(lit);
        self.stats.propagations += 1;
        if self.trail_lim.is_empty() {
            debug_assert!(reason.is_some(), "level-0 assignments are implied");
            self.pending_unit_vars.push(lit.var());
        }
    }

    /// Derives (and traces) a unit clause for every freshly implied
    /// level-0 variable: the variable's antecedent resolved against the
    /// unit clauses of its other (earlier) level-0 variables. Called
    /// after every propagation round so [`Solver::analyze`] can strip
    /// level-0 literals from learned clauses with exact resolve sources.
    fn derive_level_zero_units(&mut self, sink: &mut dyn TraceSink) -> io::Result<()> {
        if self.pending_unit_vars.is_empty() {
            return Ok(());
        }
        let vars = std::mem::take(&mut self.pending_unit_vars);
        for v in vars {
            let reason = self.reason[v.index()].expect("level-0 assignment has an antecedent");
            let lits = self.db.literals(reason).expect("reason clauses are live");
            if lits.len() == 1 {
                self.unit_id[v.index()] = Some(reason);
                continue;
            }
            let the_lit = Lit::new(v, self.assigns[v.index()] == LBool::True);
            let mut sources: Vec<u64> = Vec::with_capacity(lits.len());
            sources.push(reason.as_u64());
            for &l in lits {
                if l.var() == v {
                    continue;
                }
                let u = self.unit_id[l.var().index()]
                    .expect("earlier level-0 vars already have unit clauses");
                sources.push(u.as_u64());
            }
            let id = self.db.add_learned(vec![the_lit]);
            self.stats.learned_clauses += 1;
            self.stats.learned_literals += 1;
            sink.learned(id.as_u64(), &sources)?;
            self.unit_id[v.index()] = Some(id);
            self.reason[v.index()] = Some(id);
        }
        Ok(())
    }

    fn cancel_until(&mut self, target: usize) {
        if self.decision_level() <= target {
            return;
        }
        let lim = self.trail_lim[target];
        for i in (lim..self.trail.len()).rev() {
            let lit = self.trail[i];
            let v = lit.var();
            self.assigns[v.index()] = LBool::Undef;
            if self.cfg.phase_saving {
                self.phase[v.index()] = lit.is_positive();
            }
            self.reason[v.index()] = None;
            self.level[v.index()] = 0;
            self.order.insert(v, &self.activity);
        }
        self.trail.truncate(lim);
        self.trail_lim.truncate(target);
        self.qhead = lim;
    }

    // ------------------------------------------------------------------
    // BCP (deduce)
    // ------------------------------------------------------------------

    fn propagate(&mut self) -> Option<ClauseId> {
        let mut conflict = None;
        while conflict.is_none() && self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            let false_lit = !p;
            let mut ws = std::mem::take(&mut self.watches[false_lit.code()]);
            let mut i = 0;
            let mut j = 0;
            'watchers: while i < ws.len() {
                let w = ws[i];
                i += 1;
                if value_of(&self.assigns, w.blocker) == LBool::True {
                    ws[j] = w;
                    j += 1;
                    continue;
                }
                let cid = w.clause;
                let Some(lits) = self.db.literals_mut(cid) else {
                    // Tombstone of a deleted learned clause: drop watcher.
                    continue;
                };
                if lits[0] == false_lit {
                    lits.swap(0, 1);
                }
                debug_assert_eq!(lits[1], false_lit);
                let first = lits[0];
                let keep = Watcher {
                    clause: cid,
                    blocker: first,
                };
                if first != w.blocker && value_of(&self.assigns, first) == LBool::True {
                    ws[j] = keep;
                    j += 1;
                    continue;
                }
                // Find a replacement watch among the remaining literals.
                for k in 2..lits.len() {
                    if value_of(&self.assigns, lits[k]) != LBool::False {
                        lits.swap(1, k);
                        let moved = lits[1];
                        self.watches[moved.code()].push(keep);
                        continue 'watchers;
                    }
                }
                // Clause is unit or conflicting; the watcher stays.
                ws[j] = keep;
                j += 1;
                if value_of(&self.assigns, first) == LBool::False {
                    conflict = Some(cid);
                    // Keep the remaining watchers and stop propagating.
                    while i < ws.len() {
                        ws[j] = ws[i];
                        j += 1;
                        i += 1;
                    }
                    self.qhead = self.trail.len();
                } else {
                    self.enqueue(first, Some(cid));
                }
            }
            ws.truncate(j);
            debug_assert!(self.watches[false_lit.code()].is_empty());
            self.watches[false_lit.code()] = ws;
        }
        conflict
    }

    // ------------------------------------------------------------------
    // Branching
    // ------------------------------------------------------------------

    fn decide(&mut self) -> bool {
        // Optional random decisions (disabled by default).
        if self.cfg.random_decision_freq > 0.0
            && self.next_f64() < self.cfg.random_decision_freq
            && self.num_vars > 0
        {
            let v = Var::new((self.next_u64() % self.num_vars as u64) as usize);
            if self.assigns[v.index()].is_undef() {
                self.branch_on(v);
                return true;
            }
        }
        while let Some(v) = self.order.pop_max(&self.activity) {
            if self.assigns[v.index()].is_undef() {
                self.branch_on(v);
                return true;
            }
        }
        false
    }

    fn branch_on(&mut self, v: Var) {
        self.trail_lim.push(self.trail.len());
        let phase = if self.cfg.phase_saving {
            self.phase[v.index()]
        } else {
            self.cfg.default_phase
        };
        self.stats.decisions += 1;
        self.enqueue(Lit::new(v, phase), None);
    }

    fn should_restart(&self) -> bool {
        if !self.cfg.restarts || self.decision_level() == 0 {
            return false;
        }
        let threshold = crate::luby(self.stats.restarts + 1) * self.cfg.restart_interval;
        self.conflicts_since_restart >= threshold
    }

    fn restart(&mut self) {
        self.stats.restarts += 1;
        self.conflicts_since_restart = 0;
        self.cancel_until(0);
    }

    // ------------------------------------------------------------------
    // Conflict analysis (learning by resolution, Fig. 2)
    // ------------------------------------------------------------------

    /// Analyzes a conflict at decision level > 0.
    ///
    /// Returns the asserting clause (first literal = asserting literal,
    /// second = a literal at the asserting level when present), the
    /// resolve-source IDs in resolution order, and the asserting level.
    ///
    /// Literals falsified at decision level 0 are **not** kept in the
    /// learned clause; instead the unit clause recorded for their
    /// variable (see [`Solver::derive_level_zero_units`]) is appended to
    /// the resolve sources, so the learned clause remains the *exact*
    /// resolvent of its recorded sources — which is what the checker
    /// verifies.
    fn analyze(&mut self, conflict: ClauseId) -> (Vec<Lit>, Vec<u64>, usize) {
        let current = self.decision_level() as u32;
        let mut learnt: Vec<Lit> = vec![Lit::from_code(0)]; // placeholder slot 0
        let mut sources: Vec<u64> = vec![conflict.as_u64()];
        let mut zero_sources: Vec<u64> = Vec::new();
        let mut zero_vars: Vec<Var> = Vec::new();
        let mut path = 0usize;
        let mut idx = self.trail.len();
        let mut p: Option<Lit> = None;
        let mut confl = conflict;

        loop {
            if self.db.is_learned(confl) {
                self.db.bump_activity(confl);
            }
            let lits = self.db.literals(confl).expect("conflict clause is live");
            let skip = p.map(Lit::var);
            for &q in lits {
                let qv = q.var();
                if Some(qv) == skip || self.seen[qv.index()] {
                    continue;
                }
                debug_assert_eq!(
                    value_of(&self.assigns, q),
                    LBool::False,
                    "all literals of a resolvent are false"
                );
                self.seen[qv.index()] = true;
                bump_var(&mut self.activity, &mut self.var_inc, &mut self.order, qv);
                if self.level[qv.index()] == current {
                    path += 1;
                } else if self.level[qv.index()] == 0 {
                    let u = self.unit_id[qv.index()].expect("level-0 vars have unit clauses");
                    zero_sources.push(u.as_u64());
                    zero_vars.push(qv);
                } else {
                    learnt.push(q);
                }
            }

            // Walk the trail backwards to the next marked literal.
            loop {
                idx -= 1;
                if self.seen[self.trail[idx].var().index()] {
                    break;
                }
            }
            let pl = self.trail[idx];
            p = Some(pl);
            self.seen[pl.var().index()] = false;
            path -= 1;
            if path == 0 {
                break; // pl is the first UIP
            }
            confl = self.reason[pl.var().index()]
                .expect("non-decision variable at the current level has an antecedent");
            sources.push(confl.as_u64());
        }

        learnt[0] = !p.expect("at least one current-level literal");

        // Resolving with the level-0 unit clauses happens after the main
        // chain; each such step removes exactly one false literal.
        sources.extend(zero_sources);

        let cleanup: Vec<Var> = learnt[1..].iter().map(|l| l.var()).collect();
        if self.cfg.minimize_learned {
            self.minimize(&mut learnt, &mut sources);
        }

        // Find the asserting level and move one of its literals to slot 1
        // so the watched literals are positioned correctly after attach.
        let mut assert_level = 0usize;
        let mut at = 1usize;
        for (i, l) in learnt.iter().enumerate().skip(1) {
            let lv = self.level[l.var().index()] as usize;
            if lv > assert_level {
                assert_level = lv;
                at = i;
            }
        }
        if learnt.len() > 1 {
            learnt.swap(1, at);
        }
        for v in cleanup {
            self.seen[v.index()] = false;
        }
        for v in zero_vars {
            self.seen[v.index()] = false;
        }
        (learnt, sources, assert_level)
    }

    /// Self-subsuming minimization: a literal can be dropped from the
    /// learned clause when its antecedent's other literals are all either
    /// kept in the clause or falsified at level 0. Each removal is one
    /// resolution with that antecedent (plus unit resolutions for any
    /// level-0 literals it drags in), and those sources are appended so
    /// the clause stays the exact resolvent of its source list.
    fn minimize(&mut self, learnt: &mut Vec<Lit>, sources: &mut Vec<u64>) {
        debug_assert!(learnt[1..].iter().all(|l| self.seen[l.var().index()]));
        let mut removed = vec![]; // vars removed so far (unusable as support)
        let mut kept = Vec::with_capacity(learnt.len());
        kept.push(learnt[0]);
        'literals: for &q in &learnt[1..] {
            let v = q.var();
            let Some(reason) = self.reason[v.index()] else {
                kept.push(q);
                continue;
            };
            let lits = self.db.literals(reason).expect("reason clauses are live");
            // Check removability against the *kept* literals only; a
            // removed literal would be re-introduced by this resolution.
            for &l in lits {
                let lv = l.var();
                if lv == v {
                    continue;
                }
                // Level-0 vars may still be marked `seen` from the main
                // loop but are *not* in the clause; they are supported by
                // their unit clause instead.
                let supported = if self.level[lv.index()] == 0 {
                    self.unit_id[lv.index()].is_some()
                } else {
                    self.seen[lv.index()] && !removed.contains(&lv)
                };
                if !supported {
                    kept.push(q);
                    continue 'literals;
                }
            }
            // Commit: resolve with the antecedent, then clean up any
            // level-0 literals it introduced.
            removed.push(v);
            sources.push(reason.as_u64());
            for &l in self.db.literals(reason).expect("live") {
                let lv = l.var();
                if lv != v && self.level[lv.index()] == 0 {
                    let u = self.unit_id[lv.index()].expect("checked above");
                    sources.push(u.as_u64());
                }
            }
            self.stats.minimized_literals += 1;
        }
        *learnt = kept;
    }

    fn handle_conflict(&mut self, conflict: ClauseId, sink: &mut dyn TraceSink) -> io::Result<()> {
        let (learnt, sources, assert_level) = self.analyze(conflict);
        let asserting = learnt[0];

        let reason_id = if sources.len() >= 2 {
            let len = learnt.len();
            let id = self.db.add_learned(learnt.clone());
            self.stats.learned_clauses += 1;
            self.stats.learned_literals += len as u64;
            sink.learned(id.as_u64(), &sources)?;
            if len >= 2 {
                let (a, b) = (learnt[0], learnt[1]);
                self.watches[a.code()].push(Watcher {
                    clause: id,
                    blocker: b,
                });
                self.watches[b.code()].push(Watcher {
                    clause: id,
                    blocker: a,
                });
            }
            id
        } else {
            // The conflicting clause was already asserting: no resolution
            // happened, so no clause is learned (Fig. 2's stop criterion
            // is met immediately) and the conflicting clause itself
            // becomes the antecedent of the flipped variable.
            self.stats.reused_conflicts += 1;
            conflict
        };

        self.cancel_until(assert_level);
        self.enqueue(asserting, Some(reason_id));

        self.var_inc /= self.cfg.var_decay;
        self.db.decay_activity(self.cfg.clause_decay);
        Ok(())
    }

    fn conclude_unsat(
        &mut self,
        conflict: ClauseId,
        sink: &mut dyn TraceSink,
    ) -> io::Result<SolveResult> {
        debug_assert_eq!(self.decision_level(), 0);
        for i in 0..self.trail.len() {
            let lit = self.trail[i];
            let reason =
                self.reason[lit.var().index()].expect("every level-0 assignment has an antecedent");
            sink.level_zero(lit, reason.as_u64())?;
        }
        sink.final_conflict(conflict.as_u64())?;
        sink.flush()?;
        self.finished = Some(SolveResult::Unsatisfiable);
        Ok(SolveResult::Unsatisfiable)
    }

    // ------------------------------------------------------------------
    // Learned-clause database reduction
    // ------------------------------------------------------------------

    fn is_locked(&self, id: ClauseId) -> bool {
        let Some(lits) = self.db.literals(id) else {
            return false;
        };
        let Some(&first) = lits.first() else {
            return false;
        };
        value_of(&self.assigns, first) == LBool::True
            && self.reason[first.var().index()] == Some(id)
    }

    fn reduce_db(&mut self) {
        self.stats.db_reductions += 1;
        let mut candidates: Vec<(f64, ClauseId)> = self
            .db
            .learned_ids()
            .filter(|&id| !self.is_locked(id))
            .filter(|&id| {
                // Binary clauses are cheap and strong; keep them (unless
                // learning is off entirely).
                !self.cfg.learning || self.db.literals(id).map_or(0, <[Lit]>::len) > 2
            })
            .map(|id| (self.db.activity(id), id))
            .collect();
        candidates.sort_by(|a, b| a.0.total_cmp(&b.0));
        let to_delete = if self.cfg.learning {
            candidates.len() / 2
        } else {
            candidates.len()
        };
        for &(_, id) in candidates.iter().take(to_delete) {
            self.db.remove_learned(id);
            self.stats.deleted_clauses += 1;
        }
        // Watch lists self-clean lazily during propagation.
    }

    // ------------------------------------------------------------------
    // Misc
    // ------------------------------------------------------------------

    fn extract_model(&self) -> Assignment {
        let mut model = Assignment::new(self.num_vars);
        for (i, &v) in self.assigns.iter().enumerate() {
            model.set(Var::new(i), v);
        }
        model
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Deep consistency check of the solver's internal invariants, used
    /// by tests after (partial) solving:
    ///
    /// - the trail holds distinct, currently-true literals, partitioned
    ///   by decision level;
    /// - every non-decision assigned variable has a live reason clause
    ///   that contains its literal;
    /// - every level-0 variable has a unit clause recorded;
    /// - under a complete propagation fixpoint, no live attached clause
    ///   is unit or conflicting.
    ///
    /// # Panics
    ///
    /// Panics (with a description) on the first violated invariant.
    #[cfg(test)]
    pub(crate) fn assert_invariants(&self) {
        use std::collections::HashSet;
        let mut seen_vars: HashSet<Var> = HashSet::new();
        for (pos, &lit) in self.trail.iter().enumerate() {
            assert!(seen_vars.insert(lit.var()), "duplicate trail var {lit}");
            assert_eq!(
                value_of(&self.assigns, lit),
                LBool::True,
                "trail literal {lit} is not true"
            );
            // Level partitioning: position vs trail_lim.
            let level = self.trail_lim.iter().take_while(|&&lim| lim <= pos).count();
            assert_eq!(
                self.level[lit.var().index()] as usize,
                level,
                "trail literal {lit} has the wrong level"
            );
            let is_decision = self.trail_lim.contains(&pos);
            match self.reason[lit.var().index()] {
                Some(r) => {
                    let lits = self
                        .db
                        .literals(r)
                        .expect("reason clauses are never deleted");
                    assert!(
                        lits.contains(&lit),
                        "reason {r} of {lit} lacks the implied literal"
                    );
                }
                None => assert!(is_decision, "non-decision {lit} lacks a reason"),
            }
            if level == 0 && self.pending_unit_vars.is_empty() {
                assert!(
                    self.unit_id[lit.var().index()].is_some(),
                    "level-0 var {lit} lacks a unit clause"
                );
            }
        }
        // With propagation complete, no clause may be unit/conflicting.
        if self.qhead == self.trail.len() {
            for index in 0..self.db.num_ids() {
                let id = ClauseId::new(index);
                let Some(lits) = self.db.literals(id) else {
                    continue;
                };
                if lits.len() < 2 || is_tautology(lits) {
                    continue;
                }
                let any_true = lits
                    .iter()
                    .any(|&l| value_of(&self.assigns, l) == LBool::True);
                let unassigned = lits
                    .iter()
                    .filter(|&&l| value_of(&self.assigns, l) == LBool::Undef)
                    .count();
                assert!(
                    any_true || unassigned >= 2 || self.finished_unsat(),
                    "clause {id} is unit/conflicting after a propagation fixpoint"
                );
            }
        }
    }

    /// After an UNSAT conclusion the assignment is a conflicting
    /// snapshot by design; the fixpoint invariant only applies while the
    /// search is live or ended SAT.
    #[cfg(test)]
    fn finished_unsat(&self) -> bool {
        matches!(self.finished, Some(SolveResult::Unsatisfiable))
    }
}

fn value_of(assigns: &[LBool], lit: Lit) -> LBool {
    let v = assigns[lit.var().index()];
    if lit.is_positive() {
        v
    } else {
        !v
    }
}

fn bump_var(activity: &mut [f64], var_inc: &mut f64, order: &mut VarOrderHeap, v: Var) {
    activity[v.index()] += *var_inc;
    if activity[v.index()] > 1e100 {
        for a in activity.iter_mut() {
            *a *= 1e-100;
        }
        *var_inc *= 1e-100;
    }
    order.bumped(v, activity);
}

fn is_tautology(lits: &[Lit]) -> bool {
    // Clauses are short on average; the quadratic check avoids allocation.
    if lits.len() > 32 {
        let mut sorted: Vec<Lit> = lits.to_vec();
        sorted.sort_unstable();
        return sorted.windows(2).any(|w| w[0] == !w[1]);
    }
    lits.iter()
        .enumerate()
        .any(|(i, &a)| lits[i + 1..].contains(&!a))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescheck_trace::{MemorySink, TraceEvent};

    fn solve_dimacs(clauses: &[&[i64]]) -> (SolveResult, Cnf) {
        let mut cnf = Cnf::new();
        for c in clauses {
            cnf.add_dimacs_clause(c);
        }
        let mut solver = Solver::from_cnf(&cnf, SolverConfig::default());
        (solver.solve(), cnf)
    }

    #[test]
    fn empty_formula_is_sat() {
        let (result, _) = solve_dimacs(&[]);
        assert!(result.is_sat());
    }

    #[test]
    fn single_unit_is_sat_with_correct_model() {
        let (result, cnf) = solve_dimacs(&[&[-3]]);
        let model = result.model().unwrap();
        assert!(cnf.is_satisfied_by(model));
        assert_eq!(model.value(Var::new(2)), LBool::False);
    }

    #[test]
    fn contradicting_units_are_unsat() {
        let (result, _) = solve_dimacs(&[&[1], &[-1]]);
        assert!(result.is_unsat());
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut cnf = Cnf::new();
        cnf.push_clause(Clause::empty());
        let mut solver = Solver::from_cnf(&cnf, SolverConfig::default());
        assert!(solver.solve().is_unsat());
    }

    #[test]
    fn chain_of_implications_is_sat() {
        // 1 → 2 → 3 → 4, with unit 1.
        let (result, cnf) = solve_dimacs(&[&[1], &[-1, 2], &[-2, 3], &[-3, 4]]);
        let model = result.model().unwrap();
        assert!(cnf.is_satisfied_by(model));
        for i in 0..4 {
            assert_eq!(model.value(Var::new(i)), LBool::True);
        }
    }

    #[test]
    fn unit_conflict_through_propagation_is_unsat() {
        let (result, _) = solve_dimacs(&[&[1], &[-1, 2], &[-2]]);
        assert!(result.is_unsat());
    }

    #[test]
    fn two_var_complete_conflict_is_unsat() {
        let (result, _) = solve_dimacs(&[&[1, 2], &[1, -2], &[-1, 2], &[-1, -2]]);
        assert!(result.is_unsat());
    }

    #[test]
    fn tautological_clause_is_ignored() {
        let (result, cnf) = solve_dimacs(&[&[1, -1], &[2]]);
        assert!(cnf.is_satisfied_by(result.model().unwrap()));
    }

    #[test]
    fn duplicate_literals_are_handled() {
        let (result, cnf) = solve_dimacs(&[&[1, 1, 1], &[-1, -1, 2]]);
        assert!(cnf.is_satisfied_by(result.model().unwrap()));
    }

    #[test]
    fn repeated_solve_returns_cached_answer() {
        let mut cnf = Cnf::new();
        cnf.add_dimacs_clause(&[1]);
        cnf.add_dimacs_clause(&[-1]);
        let mut solver = Solver::from_cnf(&cnf, SolverConfig::default());
        assert!(solver.solve().is_unsat());
        assert!(solver.solve().is_unsat());
    }

    #[test]
    #[should_panic(expected = "after solving started")]
    fn adding_clauses_after_solve_panics() {
        let mut solver = Solver::new(SolverConfig::default());
        solver.ensure_vars(1);
        solver.solve();
        solver.add_clause([Lit::from_dimacs(1)]);
    }

    #[test]
    fn trace_events_are_emitted_for_unsat() {
        let mut cnf = Cnf::new();
        for c in [&[1i64, 2][..], &[1, -2], &[-1, 2], &[-1, -2]] {
            cnf.add_dimacs_clause(c);
        }
        let mut solver = Solver::from_cnf(&cnf, SolverConfig::default());
        let mut sink = MemorySink::new();
        let result = solver.solve_traced(&mut sink).unwrap();
        assert!(result.is_unsat());
        let events = sink.events();
        // Must end with a final conflict.
        assert!(matches!(
            events.last().unwrap(),
            TraceEvent::FinalConflict { .. }
        ));
        // Learned clause IDs start after the originals.
        for e in events {
            if let TraceEvent::Learned { id, sources } = e {
                assert!(*id >= cnf.num_clauses() as u64);
                assert!(sources.len() >= 2);
                // Sources must be already-defined IDs.
                for s in sources {
                    assert!(*s < *id);
                }
            }
        }
    }

    #[test]
    fn sat_instances_produce_no_final_conflict() {
        let mut cnf = Cnf::new();
        cnf.add_dimacs_clause(&[1, 2]);
        let mut solver = Solver::from_cnf(&cnf, SolverConfig::default());
        let mut sink = MemorySink::new();
        let result = solver.solve_traced(&mut sink).unwrap();
        assert!(result.is_sat());
        assert!(sink
            .events()
            .iter()
            .all(|e| !matches!(e, TraceEvent::FinalConflict { .. })));
    }

    /// Pigeonhole formula PHP(n+1, n): n+1 pigeons, n holes — UNSAT.
    fn pigeonhole(holes: usize) -> Cnf {
        let pigeons = holes + 1;
        let mut cnf = Cnf::new();
        let var = |p: usize, h: usize| Lit::positive(Var::new(p * holes + h));
        for p in 0..pigeons {
            cnf.add_clause((0..holes).map(|h| var(p, h)));
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in p1 + 1..pigeons {
                    cnf.add_clause([!var(p1, h), !var(p2, h)]);
                }
            }
        }
        cnf
    }

    #[test]
    fn pigeonhole_instances_are_unsat() {
        for holes in 1..=5 {
            let cnf = pigeonhole(holes);
            let mut solver = Solver::from_cnf(&cnf, SolverConfig::default());
            assert!(solver.solve().is_unsat(), "php({holes}) must be UNSAT");
        }
    }

    #[test]
    fn solver_agrees_with_brute_force_on_random_small_instances() {
        // Deterministic pseudo-random 3-SAT instances, cross-checked
        // against exhaustive enumeration.
        let mut state = 0xdead_beefu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..60 {
            let num_vars = 3 + (next() % 6) as usize; // 3..8
            let num_clauses = 2 + (next() % 24) as usize;
            let mut cnf = Cnf::with_vars(num_vars);
            for _ in 0..num_clauses {
                let len = 1 + (next() % 3) as usize;
                let lits: Vec<i64> = (0..len)
                    .map(|_| {
                        let v = (next() % num_vars as u64) as i64 + 1;
                        if next() % 2 == 0 {
                            v
                        } else {
                            -v
                        }
                    })
                    .collect();
                cnf.add_dimacs_clause(&lits);
            }
            let expected = cnf.brute_force_status();
            let mut solver = Solver::from_cnf(&cnf, SolverConfig::default());
            let result = solver.solve();
            assert_eq!(result.status(), expected, "round {round}: {cnf}");
            if let Some(model) = result.model() {
                assert!(cnf.is_satisfied_by(model), "round {round}");
            }
        }
    }

    #[test]
    fn minimization_shortens_learned_clauses() {
        let cnf = pigeonhole(6);
        let mut with = Solver::from_cnf(&cnf, SolverConfig::default());
        assert!(with.solve().is_unsat());
        let mut without = Solver::from_cnf(&cnf, SolverConfig::without_minimization());
        assert!(without.solve().is_unsat());
        assert!(with.stats().minimized_literals > 0);
        assert_eq!(without.stats().minimized_literals, 0);
    }

    #[test]
    fn ablation_configs_reach_the_same_answers() {
        let cnf = pigeonhole(4);
        for cfg in [
            SolverConfig::without_learning(),
            SolverConfig::without_deletion(),
            SolverConfig::without_restarts(),
            SolverConfig::without_minimization(),
            SolverConfig {
                phase_saving: false,
                default_phase: true,
                ..SolverConfig::default()
            },
            SolverConfig {
                random_decision_freq: 0.1,
                ..SolverConfig::default()
            },
        ] {
            let mut solver = Solver::from_cnf(&cnf, cfg.clone());
            assert!(solver.solve().is_unsat(), "cfg {cfg:?}");
        }
    }

    #[test]
    fn conflict_limit_returns_unknown_and_can_resume() {
        let cnf = pigeonhole(6);
        let cfg = SolverConfig {
            conflict_limit: Some(1),
            ..SolverConfig::default()
        };
        let mut solver = Solver::from_cnf(&cnf, cfg);
        let first = solver.solve();
        assert!(matches!(first, SolveResult::Unknown));
        // Budget renews on each call; eventually the search completes.
        let mut answer = solver.solve();
        let mut guard = 0;
        while matches!(answer, SolveResult::Unknown) {
            answer = solver.solve();
            guard += 1;
            assert!(guard < 200_000, "search must terminate");
        }
        assert!(answer.is_unsat());
    }

    #[test]
    fn invariants_hold_after_solving() {
        // SAT outcome: complete assignment, all clauses satisfied.
        let mut sat = Cnf::new();
        sat.add_dimacs_clause(&[1, 2]);
        sat.add_dimacs_clause(&[-1, 3]);
        sat.add_dimacs_clause(&[-3, -2, 1]);
        let mut solver = Solver::from_cnf(&sat, SolverConfig::default());
        assert!(solver.solve().is_sat());
        solver.assert_invariants();

        // UNSAT outcome (trail is a level-0 conflicting snapshot).
        let mut solver = Solver::from_cnf(&pigeonhole(4), SolverConfig::default());
        assert!(solver.solve().is_unsat());
        solver.assert_invariants();

        // Mid-search snapshot via a conflict budget.
        let cfg = SolverConfig {
            conflict_limit: Some(5),
            ..SolverConfig::default()
        };
        let mut solver = Solver::from_cnf(&pigeonhole(6), cfg);
        let _ = solver.solve();
        solver.assert_invariants();
    }

    #[test]
    fn invariants_hold_across_many_random_instances() {
        let mut state = 0x77aa_11bbu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..40 {
            let num_vars = 4 + (next() % 8) as usize;
            let num_clauses = 6 + (next() % 30) as usize;
            let mut cnf = Cnf::with_vars(num_vars);
            for _ in 0..num_clauses {
                let len = 2 + (next() % 3) as usize;
                let lits: Vec<i64> = (0..len)
                    .map(|_| {
                        let v = (next() % num_vars as u64) as i64 + 1;
                        if next() % 2 == 0 {
                            v
                        } else {
                            -v
                        }
                    })
                    .collect();
                cnf.add_dimacs_clause(&lits);
            }
            let mut solver = Solver::from_cnf(&cnf, SolverConfig::default());
            solver.solve();
            solver.assert_invariants();
        }
    }

    #[test]
    fn stats_are_populated() {
        let cnf = pigeonhole(4);
        let mut solver = Solver::from_cnf(&cnf, SolverConfig::default());
        solver.solve();
        let stats = solver.stats();
        assert!(stats.decisions > 0);
        assert!(stats.conflicts > 0);
        assert!(stats.propagations > 0);
        assert!(stats.learned_clauses > 0);
        assert!(stats.avg_learned_len() > 0.0);
    }

    #[test]
    fn learned_ids_and_trace_ids_stay_aligned_under_deletion() {
        // Aggressive deletion must not shift IDs: every learned event's ID
        // equals num_original + (number of learned events before it).
        let cnf = pigeonhole(5);
        let cfg = SolverConfig {
            reduce_db_interval: 10,
            reduce_db_increment: 0,
            ..SolverConfig::default()
        };
        let mut solver = Solver::from_cnf(&cnf, cfg);
        let mut sink = MemorySink::new();
        assert!(solver.solve_traced(&mut sink).unwrap().is_unsat());
        let mut expected = cnf.num_clauses() as u64;
        for e in sink.events() {
            if let TraceEvent::Learned { id, .. } = e {
                assert_eq!(*id, expected);
                expected += 1;
            }
        }
        assert!(solver.stats().deleted_clauses > 0 || solver.stats().db_reductions == 0);
    }
}
