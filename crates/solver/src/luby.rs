//! The Luby restart sequence.

/// Returns the `i`-th element (1-based) of the Luby sequence
/// `1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 …`.
///
/// Scheduling restarts at `luby(i) * interval` conflicts makes the restart
/// period grow over time, which the paper's §2.2 identifies as necessary
/// for termination: with a fixed restart period the search-progress
/// function `f` can decrease forever.
///
/// # Panics
///
/// Panics if `i == 0`; the sequence is 1-based.
///
/// # Examples
///
/// ```
/// use rescheck_solver::luby;
///
/// let prefix: Vec<u64> = (1..=15).map(luby).collect();
/// assert_eq!(prefix, [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
/// ```
pub fn luby(i: u64) -> u64 {
    assert!(i > 0, "the Luby sequence is 1-based");
    // If i = 2^k - 1 the value is 2^(k-1); otherwise recurse on the
    // position within the current block.
    let mut i = i;
    loop {
        let k = 64 - i.leading_zeros() as u64; // number of bits in i
        if i == (1 << k) - 1 {
            return 1 << (k - 1);
        }
        i -= (1 << (k - 1)) - 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_prefix() {
        let expected = [
            1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, 1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2,
            4, 8, 16,
        ];
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(luby(i as u64 + 1), e, "luby({})", i + 1);
        }
    }

    #[test]
    fn powers_of_two_appear_at_block_ends() {
        assert_eq!(luby((1 << 10) - 1), 1 << 9);
        assert_eq!(luby((1 << 20) - 1), 1 << 19);
    }

    #[test]
    fn values_are_powers_of_two() {
        for i in 1..2000 {
            assert!(luby(i).is_power_of_two());
        }
    }

    #[test]
    fn sequence_is_unbounded() {
        // max over a long prefix keeps growing.
        let max_small: u64 = (1..100).map(luby).max().unwrap();
        let max_large: u64 = (1..10_000).map(luby).max().unwrap();
        assert!(max_large > max_small);
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn zero_is_rejected() {
        luby(0);
    }
}
