//! The clause database: original and learned clauses with stable IDs.

use rescheck_cnf::{Clause, Lit};
use std::fmt;

/// A stable identifier for a clause in the database.
///
/// IDs follow the convention the paper's checker relies on (§3.1):
/// original clauses are numbered by order of appearance, learned clauses
/// continue the sequence, and an ID is never reused — deleted learned
/// clauses leave a tombstone.
///
/// # Examples
///
/// ```
/// use rescheck_solver::ClauseId;
///
/// let id = ClauseId::new(7);
/// assert_eq!(id.as_u64(), 7);
/// assert_eq!(id.to_string(), "#7");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClauseId(u32);

impl ClauseId {
    /// Creates a clause ID from a raw index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in 32 bits.
    pub fn new(index: usize) -> Self {
        assert!(index <= u32::MAX as usize, "clause id out of range");
        ClauseId(index as u32)
    }

    /// The raw index of this ID.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The ID as used in traces.
    pub fn as_u64(self) -> u64 {
        u64::from(self.0)
    }
}

impl fmt::Debug for ClauseId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ClauseId({})", self.0)
    }
}

impl fmt::Display for ClauseId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

#[derive(Clone, Debug)]
struct ClauseRec {
    lits: Vec<Lit>,
    learned: bool,
    activity: f64,
}

/// The solver's clause store.
///
/// Original clauses are added first (their IDs match the input CNF's
/// clause positions); learned clauses are appended during search. Learned
/// clauses can be removed, leaving a tombstone so later IDs stay valid —
/// the watch lists clean dangling references lazily.
///
/// # Examples
///
/// ```
/// use rescheck_cnf::Clause;
/// use rescheck_solver::ClauseDb;
///
/// let mut db = ClauseDb::new();
/// let id = db.add_original(Clause::from_dimacs(&[1, -2]));
/// assert_eq!(id.index(), 0);
/// assert_eq!(db.literals(id).unwrap().len(), 2);
/// assert!(!db.is_learned(id));
/// ```
#[derive(Clone, Debug, Default)]
pub struct ClauseDb {
    slots: Vec<Option<ClauseRec>>,
    num_original: usize,
    live_learned: usize,
    deleted_learned: u64,
    cla_inc: f64,
}

impl ClauseDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        ClauseDb {
            slots: Vec::new(),
            num_original: 0,
            live_learned: 0,
            deleted_learned: 0,
            cla_inc: 1.0,
        }
    }

    /// Number of original (input) clauses.
    pub fn num_original(&self) -> usize {
        self.num_original
    }

    /// Number of learned clauses currently alive.
    pub fn num_live_learned(&self) -> usize {
        self.live_learned
    }

    /// Number of learned clauses deleted so far.
    pub fn num_deleted_learned(&self) -> u64 {
        self.deleted_learned
    }

    /// Total number of IDs ever allocated.
    pub fn num_ids(&self) -> usize {
        self.slots.len()
    }

    /// Adds an original clause.
    ///
    /// Literal duplicates are removed; original clause IDs must match the
    /// input CNF, so this must be called for *every* input clause (even
    /// tautologies) before any learned clause is added.
    ///
    /// # Panics
    ///
    /// Panics if a learned clause was already added.
    pub fn add_original(&mut self, clause: Clause) -> ClauseId {
        assert_eq!(
            self.num_original,
            self.slots.len(),
            "original clauses must be added before learned clauses"
        );
        let mut lits = clause.into_literals();
        dedup_preserving_order(&mut lits);
        let id = ClauseId::new(self.slots.len());
        self.slots.push(Some(ClauseRec {
            lits,
            learned: false,
            activity: 0.0,
        }));
        self.num_original += 1;
        id
    }

    /// Adds a learned clause and returns its ID.
    pub fn add_learned(&mut self, lits: Vec<Lit>) -> ClauseId {
        let id = ClauseId::new(self.slots.len());
        self.slots.push(Some(ClauseRec {
            lits,
            learned: true,
            activity: self.cla_inc,
        }));
        self.live_learned += 1;
        id
    }

    /// The literals of a live clause, or `None` for tombstones/bad IDs.
    pub fn literals(&self, id: ClauseId) -> Option<&[Lit]> {
        self.slots
            .get(id.index())
            .and_then(|s| s.as_ref())
            .map(|r| r.lits.as_slice())
    }

    /// Mutable literals of a live clause (the solver reorders watches).
    pub fn literals_mut(&mut self, id: ClauseId) -> Option<&mut Vec<Lit>> {
        self.slots
            .get_mut(id.index())
            .and_then(|s| s.as_mut())
            .map(|r| &mut r.lits)
    }

    /// Returns `true` if the ID refers to a live clause.
    pub fn is_live(&self, id: ClauseId) -> bool {
        self.slots.get(id.index()).is_some_and(|s| s.is_some())
    }

    /// Returns `true` if the clause is learned (live learned clauses only).
    pub fn is_learned(&self, id: ClauseId) -> bool {
        self.slots
            .get(id.index())
            .and_then(|s| s.as_ref())
            .is_some_and(|r| r.learned)
    }

    /// Removes a learned clause, leaving a tombstone.
    ///
    /// # Panics
    ///
    /// Panics if the clause is original or already removed.
    pub fn remove_learned(&mut self, id: ClauseId) {
        let slot = self.slots.get_mut(id.index()).expect("clause id in range");
        let rec = slot.as_ref().expect("clause is live");
        assert!(rec.learned, "original clauses are never removed");
        *slot = None;
        self.live_learned -= 1;
        self.deleted_learned += 1;
    }

    /// Current activity of a clause (0.0 for originals and tombstones).
    pub fn activity(&self, id: ClauseId) -> f64 {
        self.slots
            .get(id.index())
            .and_then(|s| s.as_ref())
            .map_or(0.0, |r| r.activity)
    }

    /// Bumps a learned clause's activity, rescaling all activities when
    /// they grow too large.
    pub fn bump_activity(&mut self, id: ClauseId) {
        let inc = self.cla_inc;
        if let Some(rec) = self.slots.get_mut(id.index()).and_then(|s| s.as_mut()) {
            rec.activity += inc;
            if rec.activity > 1e100 {
                for slot in self.slots.iter_mut().flatten() {
                    slot.activity *= 1e-100;
                }
                self.cla_inc *= 1e-100;
            }
        }
    }

    /// Applies the per-conflict clause-activity decay.
    pub fn decay_activity(&mut self, clause_decay: f64) {
        self.cla_inc /= clause_decay;
    }

    /// Iterates over live learned clause IDs.
    pub fn learned_ids(&self) -> impl Iterator<Item = ClauseId> + '_ {
        self.slots
            .iter()
            .enumerate()
            .skip(self.num_original)
            .filter_map(|(i, s)| s.as_ref().filter(|r| r.learned).map(|_| ClauseId::new(i)))
    }

    /// Accounted memory of live clauses in bytes (literals only).
    pub fn live_bytes(&self) -> u64 {
        self.slots
            .iter()
            .flatten()
            .map(|r| (r.lits.len() * std::mem::size_of::<Lit>()) as u64)
            .sum()
    }
}

/// Removes duplicate literals while keeping first occurrences in place.
fn dedup_preserving_order(lits: &mut Vec<Lit>) {
    let mut seen = std::collections::HashSet::with_capacity(lits.len());
    lits.retain(|l| seen.insert(*l));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(ds: &[i64]) -> Vec<Lit> {
        ds.iter().map(|&d| Lit::from_dimacs(d)).collect()
    }

    #[test]
    fn original_ids_are_sequential() {
        let mut db = ClauseDb::new();
        let a = db.add_original(Clause::from_dimacs(&[1]));
        let b = db.add_original(Clause::from_dimacs(&[2, -1]));
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(db.num_original(), 2);
        assert_eq!(db.num_ids(), 2);
        assert!(!db.is_learned(a));
    }

    #[test]
    fn duplicates_in_original_are_removed() {
        let mut db = ClauseDb::new();
        let id = db.add_original(Clause::from_dimacs(&[1, 2, 1, -3, 2]));
        assert_eq!(db.literals(id).unwrap(), lits(&[1, 2, -3]).as_slice());
    }

    #[test]
    fn learned_ids_continue_after_original() {
        let mut db = ClauseDb::new();
        db.add_original(Clause::from_dimacs(&[1]));
        let l = db.add_learned(lits(&[2, 3]));
        assert_eq!(l.index(), 1);
        assert!(db.is_learned(l));
        assert_eq!(db.num_live_learned(), 1);
        assert_eq!(db.learned_ids().collect::<Vec<_>>(), vec![l]);
    }

    #[test]
    #[should_panic(expected = "before learned")]
    fn original_after_learned_is_rejected() {
        let mut db = ClauseDb::new();
        db.add_learned(lits(&[1]));
        db.add_original(Clause::from_dimacs(&[2]));
    }

    #[test]
    fn remove_leaves_tombstone() {
        let mut db = ClauseDb::new();
        db.add_original(Clause::from_dimacs(&[1]));
        let l1 = db.add_learned(lits(&[2]));
        let l2 = db.add_learned(lits(&[3]));
        db.remove_learned(l1);
        assert!(!db.is_live(l1));
        assert!(db.is_live(l2));
        assert!(db.literals(l1).is_none());
        assert_eq!(db.num_live_learned(), 1);
        assert_eq!(db.num_deleted_learned(), 1);
        // IDs are not reused.
        let l3 = db.add_learned(lits(&[4]));
        assert_eq!(l3.index(), 3);
    }

    #[test]
    #[should_panic(expected = "never removed")]
    fn removing_original_panics() {
        let mut db = ClauseDb::new();
        let id = db.add_original(Clause::from_dimacs(&[1]));
        db.remove_learned(id);
    }

    #[test]
    fn activity_bump_and_decay() {
        let mut db = ClauseDb::new();
        let a = db.add_learned(lits(&[1]));
        let b = db.add_learned(lits(&[2]));
        db.bump_activity(a);
        assert!(db.activity(a) > db.activity(b));
        db.decay_activity(0.5);
        db.bump_activity(b);
        // After decay the increment is larger, so b overtakes a.
        assert!(db.activity(b) > db.activity(a));
    }

    #[test]
    fn activity_rescale_preserves_order() {
        let mut db = ClauseDb::new();
        let a = db.add_learned(lits(&[1]));
        let b = db.add_learned(lits(&[2]));
        for _ in 0..400 {
            db.decay_activity(0.5); // inc doubles each time → overflows 1e100
            db.bump_activity(a);
        }
        db.bump_activity(b);
        assert!(db.activity(a).is_finite());
        assert!(db.activity(a) > db.activity(b));
    }

    #[test]
    fn live_bytes_tracks_literals() {
        let mut db = ClauseDb::new();
        db.add_original(Clause::from_dimacs(&[1, 2]));
        let l = db.add_learned(lits(&[3, 4, 5]));
        let per_lit = std::mem::size_of::<Lit>() as u64;
        assert_eq!(db.live_bytes(), 5 * per_lit);
        db.remove_learned(l);
        assert_eq!(db.live_bytes(), 2 * per_lit);
    }

    #[test]
    fn clause_id_display() {
        assert_eq!(ClauseId::new(3).to_string(), "#3");
        assert_eq!(format!("{:?}", ClauseId::new(3)), "ClauseId(3)");
        assert_eq!(ClauseId::new(9).as_u64(), 9);
    }
}
