//! Solver configuration.

/// Tunable parameters of the [`Solver`](crate::Solver).
///
/// The defaults mirror zchaff-era settings. Two switches correspond to the
/// paper's discussion in §2.1: `learning` (learned clauses may be kept or
/// deleted without affecting correctness) and `clause_deletion` (deleting
/// learned clauses cannot cause nontermination, contrary to common
/// belief). Both default to on, like every modern solver.
///
/// # Examples
///
/// ```
/// use rescheck_solver::SolverConfig;
///
/// let cfg = SolverConfig {
///     restarts: false,
///     ..SolverConfig::default()
/// };
/// assert!(cfg.learning);
/// assert!(!cfg.restarts);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct SolverConfig {
    /// Keep learned clauses in the database for future pruning.
    ///
    /// When `false`, learned clauses are still *created* — assertion-based
    /// backtracking needs them as antecedents — but they are discarded as
    /// soon as they stop being the reason of an assigned variable.
    pub learning: bool,
    /// Periodically delete low-activity learned clauses.
    pub clause_deletion: bool,
    /// Enable Luby-scheduled restarts.
    ///
    /// The restart period grows with the Luby sequence, which keeps the
    /// solver terminating (paper §2.2: fixed-period restarts can loop
    /// forever).
    pub restarts: bool,
    /// Base unit (in conflicts) of the Luby restart schedule.
    pub restart_interval: u64,
    /// Multiplicative decay applied to variable activities per conflict.
    pub var_decay: f64,
    /// Multiplicative decay applied to clause activities per conflict.
    pub clause_decay: f64,
    /// Conflicts before the first learned-clause database reduction.
    pub reduce_db_interval: u64,
    /// Growth added to the reduction interval after each reduction.
    pub reduce_db_increment: u64,
    /// Shrink learned clauses by self-subsuming resolution with the
    /// reasons of their literals.
    ///
    /// Every removal is itself a resolution, and the extra resolve
    /// sources are recorded in the trace, so minimized clauses remain
    /// exact resolvents of their recorded sources and stay checkable.
    pub minimize_learned: bool,
    /// Remember each variable's last value and reuse it on decisions.
    pub phase_saving: bool,
    /// Value given to a decision variable with no saved phase.
    pub default_phase: bool,
    /// Seed for the deterministic tie-breaking PRNG.
    ///
    /// The solver is fully deterministic for a given seed and input.
    pub seed: u64,
    /// Fraction of decisions made on a pseudo-random variable instead of
    /// the VSIDS maximum (0.0 disables random decisions).
    pub random_decision_freq: f64,
    /// Hard limit on conflicts before giving up (`None` = no limit).
    pub conflict_limit: Option<u64>,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            learning: true,
            clause_deletion: true,
            restarts: true,
            restart_interval: 128,
            var_decay: 0.95,
            clause_decay: 0.999,
            reduce_db_interval: 4000,
            reduce_db_increment: 1000,
            minimize_learned: true,
            phase_saving: true,
            default_phase: false,
            seed: 0x5eed_cafe,
            random_decision_freq: 0.0,
            conflict_limit: None,
        }
    }
}

impl SolverConfig {
    /// A configuration with learning disabled (ablation C in DESIGN.md).
    pub fn without_learning() -> Self {
        SolverConfig {
            learning: false,
            ..SolverConfig::default()
        }
    }

    /// A configuration with learned-clause deletion disabled.
    pub fn without_deletion() -> Self {
        SolverConfig {
            clause_deletion: false,
            ..SolverConfig::default()
        }
    }

    /// A configuration with restarts disabled.
    pub fn without_restarts() -> Self {
        SolverConfig {
            restarts: false,
            ..SolverConfig::default()
        }
    }

    /// A configuration with learned-clause minimization disabled.
    pub fn without_minimization() -> Self {
        SolverConfig {
            minimize_learned: false,
            ..SolverConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_enable_modern_features() {
        let cfg = SolverConfig::default();
        assert!(cfg.learning);
        assert!(cfg.clause_deletion);
        assert!(cfg.restarts);
        assert!(cfg.phase_saving);
        assert!(cfg.conflict_limit.is_none());
        assert!(cfg.var_decay > 0.0 && cfg.var_decay < 1.0);
    }

    #[test]
    fn ablation_constructors_flip_one_switch() {
        assert!(!SolverConfig::without_learning().learning);
        assert!(SolverConfig::without_learning().clause_deletion);
        assert!(!SolverConfig::without_deletion().clause_deletion);
        assert!(!SolverConfig::without_restarts().restarts);
        assert!(!SolverConfig::without_minimization().minimize_learned);
        assert!(SolverConfig::default().minimize_learned);
    }
}
