//! Indexed max-heap ordering variables by VSIDS activity.

use rescheck_cnf::Var;

/// A binary max-heap over variables keyed by an external activity array,
/// with an index for O(log n) activity bumps.
///
/// This is the decision-ordering structure of VSIDS (Chaff): the solver
/// pops the most active unassigned variable, re-inserts variables on
/// backtracking, and sifts a variable up when its activity is bumped.
#[derive(Clone, Debug, Default)]
pub(crate) struct VarOrderHeap {
    /// Heap array of variable indices.
    heap: Vec<u32>,
    /// `position[v]` = index of `v` in `heap`, or `NONE`.
    position: Vec<u32>,
}

const NONE: u32 = u32::MAX;

impl VarOrderHeap {
    pub(crate) fn new() -> Self {
        VarOrderHeap::default()
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.heap.len()
    }

    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    pub(crate) fn contains(&self, var: Var) -> bool {
        self.position.get(var.index()).is_some_and(|&p| p != NONE)
    }

    fn grow(&mut self, var: Var) {
        if self.position.len() <= var.index() {
            self.position.resize(var.index() + 1, NONE);
        }
    }

    /// Inserts `var` if absent.
    pub(crate) fn insert(&mut self, var: Var, activity: &[f64]) {
        self.grow(var);
        if self.contains(var) {
            return;
        }
        self.position[var.index()] = self.heap.len() as u32;
        self.heap.push(var.index() as u32);
        self.sift_up(self.heap.len() - 1, activity);
    }

    /// Removes and returns the most active variable.
    pub(crate) fn pop_max(&mut self, activity: &[f64]) -> Option<Var> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().expect("non-empty");
        self.position[top as usize] = NONE;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.position[last as usize] = 0;
            self.sift_down(0, activity);
        }
        Some(Var::new(top as usize))
    }

    /// Restores heap order after `var`'s activity increased.
    pub(crate) fn bumped(&mut self, var: Var, activity: &[f64]) {
        if let Some(&p) = self.position.get(var.index()) {
            if p != NONE {
                self.sift_up(p as usize, activity);
            }
        }
    }

    fn sift_up(&mut self, mut i: usize, activity: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if activity[self.heap[i] as usize] <= activity[self.heap[parent] as usize] {
                break;
            }
            self.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize, activity: &[f64]) {
        loop {
            let left = 2 * i + 1;
            let right = 2 * i + 2;
            let mut best = i;
            if left < self.heap.len()
                && activity[self.heap[left] as usize] > activity[self.heap[best] as usize]
            {
                best = left;
            }
            if right < self.heap.len()
                && activity[self.heap[right] as usize] > activity[self.heap[best] as usize]
            {
                best = right;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.position[self.heap[a] as usize] = a as u32;
        self.position[self.heap[b] as usize] = b as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> Var {
        Var::new(i)
    }

    #[test]
    fn pops_in_activity_order() {
        let activity = vec![0.5, 3.0, 1.0, 2.0];
        let mut heap = VarOrderHeap::new();
        for i in 0..4 {
            heap.insert(v(i), &activity);
        }
        assert_eq!(heap.len(), 4);
        let order: Vec<usize> = std::iter::from_fn(|| heap.pop_max(&activity))
            .map(|var| var.index())
            .collect();
        assert_eq!(order, vec![1, 3, 2, 0]);
        assert!(heap.is_empty());
    }

    #[test]
    fn insert_is_idempotent() {
        let activity = vec![1.0, 2.0];
        let mut heap = VarOrderHeap::new();
        heap.insert(v(0), &activity);
        heap.insert(v(0), &activity);
        assert_eq!(heap.len(), 1);
        assert!(heap.contains(v(0)));
        assert!(!heap.contains(v(1)));
    }

    #[test]
    fn bump_reorders() {
        let mut activity = vec![1.0, 2.0, 3.0];
        let mut heap = VarOrderHeap::new();
        for i in 0..3 {
            heap.insert(v(i), &activity);
        }
        activity[0] = 10.0;
        heap.bumped(v(0), &activity);
        assert_eq!(heap.pop_max(&activity), Some(v(0)));
    }

    #[test]
    fn bump_on_absent_var_is_harmless() {
        let activity = vec![1.0, 2.0];
        let mut heap = VarOrderHeap::new();
        heap.insert(v(0), &activity);
        heap.bumped(v(1), &activity);
        heap.bumped(v(0), &activity);
        assert_eq!(heap.pop_max(&activity), Some(v(0)));
        assert_eq!(heap.pop_max(&activity), None);
    }

    #[test]
    fn reinsertion_after_pop() {
        let activity = vec![1.0, 2.0];
        let mut heap = VarOrderHeap::new();
        heap.insert(v(0), &activity);
        heap.insert(v(1), &activity);
        let first = heap.pop_max(&activity).unwrap();
        assert_eq!(first, v(1));
        heap.insert(first, &activity);
        assert_eq!(heap.pop_max(&activity), Some(v(1)));
        assert_eq!(heap.pop_max(&activity), Some(v(0)));
    }

    #[test]
    fn many_random_operations_maintain_heap_property() {
        // Deterministic pseudo-random workout.
        let n = 64;
        let mut activity: Vec<f64> = (0..n).map(|i| (i * 37 % 101) as f64).collect();
        let mut heap = VarOrderHeap::new();
        for i in 0..n {
            heap.insert(v(i), &activity);
        }
        let mut state = 0x1234_5678u64;
        for _ in 0..500 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let var = (state >> 33) as usize % n;
            activity[var] += ((state >> 20) % 100) as f64;
            heap.bumped(v(var), &activity);
        }
        // Popping everything yields non-increasing activities.
        let mut last = f64::INFINITY;
        while let Some(var) = heap.pop_max(&activity) {
            assert!(activity[var.index()] <= last);
            last = activity[var.index()];
        }
    }
}
