//! Hierarchical spans and the phase timer built on them.
//!
//! A [`Span`] is a named, monotonic start/stop interval with a parent:
//! starting a span while another is open on the same thread makes the
//! open one its parent, so a check decomposes into a tree like
//! `check > check:df > check:pass1` with self/child time attribution.
//! Parentage is tracked in a thread-local stack of span ids; ids come
//! from a process-global counter so spans from worker threads merge
//! into one registry without collisions (ids are therefore *not*
//! stable across runs — consumers that need determinism, like the
//! flight recorder, renumber at dump time).
//!
//! Dropping a span without stopping it (the error-`?` path) unwinds the
//! stack entry without emitting a finish event, so later spans don't
//! get parented under a dead interval.

use crate::observer::{Event, Observer};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// Allocates a fresh process-unique span id (also used when registries
/// are reconstructed from JSON, so restored spans cannot collide with
/// live ones).
pub(crate) fn alloc_span_id() -> u64 {
    NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed)
}

thread_local! {
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// A hierarchical timer: emits [`Event::SpanStarted`] on start and
/// [`Event::SpanFinished`] on stop, with the enclosing span (same
/// thread) as parent.
///
/// # Examples
///
/// ```
/// use rescheck_obs::{NullObserver, Span};
///
/// let mut obs = NullObserver;
/// let mut outer = Span::start("check", &mut obs);
/// let inner = Span::start("check:pass1", &mut obs); // child of "check"
/// inner.finish(&mut obs);
/// outer.stop(&mut obs);
/// ```
#[must_use = "a Span only records when stopped"]
#[derive(Debug)]
pub struct Span {
    id: u64,
    name: &'static str,
    started: Instant,
    finished: bool,
}

impl Span {
    /// Starts a span as a child of the innermost open span on this
    /// thread (or as a root if none is open).
    pub fn start(name: &'static str, obs: &mut dyn Observer) -> Span {
        let id = alloc_span_id();
        let parent = SPAN_STACK
            .try_with(|stack| {
                let mut stack = stack.borrow_mut();
                let parent = stack.last().copied();
                stack.push(id);
                parent
            })
            .unwrap_or(None);
        obs.observe(&Event::SpanStarted { id, parent, name });
        Span {
            id,
            name,
            started: Instant::now(),
            finished: false,
        }
    }

    /// This span's process-unique id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The span's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Stops the span, emitting [`Event::SpanFinished`] with the
    /// elapsed wall-clock. Idempotent: a second stop is a debug
    /// assertion failure and, in release builds, a no-op returning
    /// [`Duration::ZERO`] without emitting anything.
    pub fn stop(&mut self, obs: &mut dyn Observer) -> Duration {
        if self.finished {
            debug_assert!(false, "span {:?} stopped twice", self.name);
            return Duration::ZERO;
        }
        self.finished = true;
        let wall = self.started.elapsed();
        Self::unwind(self.id);
        obs.observe(&Event::SpanFinished {
            id: self.id,
            name: self.name,
            wall,
        });
        wall
    }

    /// Consuming form of [`stop`](Self::stop).
    pub fn finish(mut self, obs: &mut dyn Observer) -> Duration {
        self.stop(obs)
    }

    fn unwind(id: u64) {
        let _ = SPAN_STACK.try_with(|stack| {
            let mut stack = stack.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|&open| open == id) {
                stack.remove(pos);
            }
        });
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        // Error paths (`?`) drop spans unstopped; unwind the stack so
        // later spans aren't parented under the abandoned interval,
        // but emit nothing — the registry shows it as unfinished.
        if !self.finished {
            Self::unwind(self.id);
        }
    }
}

/// A scoped phase timer — a [`Span`] with the original flat-timer API.
///
/// Historically `Phase` emitted flat `PhaseStarted`/`PhaseFinished`
/// events; it is now a thin wrapper over [`Span`], so phases slot into
/// the span tree for free. [`MetricsSink`](crate::MetricsSink) records
/// a phase timing from every span finish, which keeps the v1 `phases`
/// metric keys populated.
///
/// # Examples
///
/// ```
/// use rescheck_obs::{NullObserver, Phase};
///
/// let mut obs = NullObserver;
/// let phase = Phase::start("solve", &mut obs);
/// // … work …
/// let wall = phase.finish(&mut obs);
/// assert!(wall.as_nanos() > 0 || wall.is_zero());
/// ```
#[must_use = "a Phase only records when finished"]
#[derive(Debug)]
pub struct Phase {
    span: Span,
}

impl Phase {
    /// Starts a phase timer (a span under the hood).
    pub fn start(name: &'static str, obs: &mut dyn Observer) -> Phase {
        Phase {
            span: Span::start(name, obs),
        }
    }

    /// Stops the phase in place. Stopping twice is a debug assertion
    /// failure and a release no-op — never a double accumulation.
    pub fn stop(&mut self, obs: &mut dyn Observer) -> Duration {
        self.span.stop(obs)
    }

    /// Consuming form of [`stop`](Self::stop).
    pub fn finish(mut self, obs: &mut dyn Observer) -> Duration {
        self.span.stop(obs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Collector {
        started: Vec<(u64, Option<u64>, String)>,
        finished: Vec<(u64, String)>,
    }

    impl Observer for Collector {
        fn observe(&mut self, event: &Event<'_>) {
            match *event {
                Event::SpanStarted { id, parent, name } => {
                    self.started.push((id, parent, name.to_string()));
                }
                Event::SpanFinished { id, name, .. } => {
                    self.finished.push((id, name.to_string()));
                }
                _ => {}
            }
        }
    }

    #[test]
    fn nesting_tracks_parent_ids() {
        let mut obs = Collector::default();
        let mut root = Span::start("root", &mut obs);
        let mut child = Span::start("child", &mut obs);
        let grandchild = Span::start("grandchild", &mut obs);
        grandchild.finish(&mut obs);
        child.stop(&mut obs);
        let sibling = Span::start("sibling", &mut obs);
        sibling.finish(&mut obs);
        root.stop(&mut obs);

        let root_id = obs.started[0].0;
        let child_id = obs.started[1].0;
        assert_eq!(obs.started[0].1, None);
        assert_eq!(obs.started[1].1, Some(root_id));
        assert_eq!(obs.started[2].1, Some(child_id));
        assert_eq!(obs.started[3].1, Some(root_id)); // sibling, after child closed
        assert_eq!(
            obs.finished
                .iter()
                .map(|(_, n)| n.as_str())
                .collect::<Vec<_>>(),
            vec!["grandchild", "child", "sibling", "root"]
        );
    }

    #[test]
    fn dropped_span_unwinds_without_emitting() {
        let mut obs = Collector::default();
        let mut root = Span::start("root", &mut obs);
        let abandoned = Span::start("abandoned", &mut obs);
        drop(abandoned); // the `?` path: no finish event…
        let next = Span::start("next", &mut obs);
        next.finish(&mut obs);
        root.stop(&mut obs);
        // …and "next" is parented under root, not the dead span.
        let root_id = obs.started[0].0;
        assert_eq!(obs.started[2].1, Some(root_id));
        assert!(!obs.finished.iter().any(|(_, n)| n == "abandoned"));
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "stopped twice"))]
    fn double_stop_asserts_in_debug_and_is_idempotent_in_release() {
        let mut obs = Collector::default();
        let mut phase = Phase::start("p", &mut obs);
        let first = phase.stop(&mut obs);
        // Debug builds panic here; release builds must not re-accumulate.
        let second = phase.stop(&mut obs);
        assert_eq!(second, Duration::ZERO);
        assert!(first >= second);
        assert_eq!(obs.finished.len(), 1);
    }

    #[test]
    fn threads_have_independent_stacks() {
        let mut obs = Collector::default();
        let mut root = Span::start("main-root", &mut obs);
        let worker_parent = std::thread::spawn(|| {
            let mut obs = Collector::default();
            let s = Span::start("worker", &mut obs);
            s.finish(&mut obs);
            obs.started[0].1
        })
        .join()
        .unwrap();
        root.stop(&mut obs);
        assert_eq!(worker_parent, None);
    }
}
