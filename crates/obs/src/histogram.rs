//! Log-bucketed histograms with a zero-alloc record path.
//!
//! Each histogram is a fixed `[u64; 64]` bucket array plus count / sum /
//! min / max. Bucket `0` holds the value `0`; bucket `i` (for `i ≥ 1`)
//! holds values in `[2^(i-1), 2^i)`, with the last bucket absorbing
//! everything from `2^62` up. Recording is an index computation and a
//! handful of integer updates — no allocation, no branching on size —
//! so histograms are safe to feed from checker and solver hot loops.
//!
//! Snapshots merge bucket-wise, which is how per-worker histograms from
//! the parallel checker aggregate into one distribution while the
//! prefixed per-worker copies (`check.worker.N.*`) keep the breakdown.

use crate::json::Json;

/// Number of buckets; enough for the full `u64` range at log2 spacing.
pub const BUCKETS: usize = 64;

/// A log2-bucketed histogram of `u64` samples.
///
/// # Examples
///
/// ```
/// use rescheck_obs::Histogram;
///
/// let mut h = Histogram::new();
/// h.record(0);
/// h.record(3);
/// h.record(100);
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.min(), Some(0));
/// assert_eq!(h.max(), Some(100));
/// assert_eq!(h.sum(), 103);
/// ```
#[derive(Clone, Debug)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// The bucket a value lands in: `0 → 0`, otherwise `⌊log2(v)⌋ + 1`,
/// clamped to the last bucket.
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (64 - value.leading_zeros() as usize).min(BUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `i`, or `None` for the unbounded
/// last bucket.
pub fn bucket_upper_bound(i: usize) -> Option<u64> {
    if i + 1 >= BUCKETS {
        None
    } else {
        Some((1u64 << i) - 1)
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }

    /// Records one sample. Never allocates.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[bucket_index(value)] += 1;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample, if any.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample, if any.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of the samples, if any.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// The raw bucket counts.
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// Merges another histogram into this one, bucket-wise.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
    }

    /// The histogram as a JSON object. The bucket array is truncated
    /// after the last non-zero bucket so empty tails don't bloat files.
    pub fn to_json(&self) -> Json {
        let last = self
            .buckets
            .iter()
            .rposition(|&c| c > 0)
            .map_or(0, |i| i + 1);
        let mut root = Json::object();
        root.set("count", self.count)
            .set("sum", self.sum)
            .set("min", self.min().unwrap_or(0))
            .set("max", self.max().unwrap_or(0))
            .set(
                "buckets",
                Json::Array(
                    self.buckets[..last]
                        .iter()
                        .map(|&c| Json::UInt(c))
                        .collect(),
                ),
            );
        root
    }

    /// Reads a histogram back from its [`to_json`](Self::to_json) form.
    /// Returns `None` on a malformed document.
    pub fn from_json(json: &Json) -> Option<Histogram> {
        let count = json.get("count")?.as_u64()?;
        let sum = json.get("sum")?.as_u64()?;
        let min = json.get("min")?.as_u64()?;
        let max = json.get("max")?.as_u64()?;
        let Some(Json::Array(items)) = json.get("buckets") else {
            return None;
        };
        if items.len() > BUCKETS {
            return None;
        }
        let mut buckets = [0u64; BUCKETS];
        for (slot, item) in buckets.iter_mut().zip(items.iter()) {
            *slot = item.as_u64()?;
        }
        Some(Histogram {
            count,
            sum,
            min: if count == 0 { u64::MAX } else { min },
            max,
            buckets,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        // Bucket i (i >= 1) covers [2^(i-1), 2^i).
        for i in 1..20usize {
            let lo = 1u64 << (i - 1);
            assert_eq!(bucket_index(lo), i);
            assert_eq!(bucket_index(2 * lo - 1), i);
        }
    }

    #[test]
    fn upper_bounds_match_bucket_index() {
        assert_eq!(bucket_upper_bound(0), Some(0));
        assert_eq!(bucket_upper_bound(1), Some(1));
        assert_eq!(bucket_upper_bound(2), Some(3));
        assert_eq!(bucket_upper_bound(3), Some(7));
        assert_eq!(bucket_upper_bound(BUCKETS - 1), None);
        for i in 0..BUCKETS - 1 {
            let ub = bucket_upper_bound(i).unwrap();
            assert_eq!(bucket_index(ub), i);
            assert_eq!(bucket_index(ub + 1), i + 1);
        }
    }

    #[test]
    fn records_track_count_sum_min_max() {
        let mut h = Histogram::new();
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        h.record(5);
        h.record(10);
        h.record(0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 15);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(10));
        assert_eq!(h.mean(), Some(5.0));
    }

    #[test]
    fn merge_is_bucket_wise() {
        let mut a = Histogram::new();
        a.record(1);
        a.record(100);
        let mut b = Histogram::new();
        b.record(1);
        b.record(3);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.buckets()[bucket_index(1)], 2);
        assert_eq!(a.buckets()[bucket_index(3)], 1);
        assert_eq!(a.min(), Some(1));
        assert_eq!(a.max(), Some(100));

        // Merging an empty histogram is a no-op.
        let before = a.clone();
        a.merge(&Histogram::new());
        assert_eq!(a.count(), before.count());
        assert_eq!(a.min(), before.min());
    }

    #[test]
    fn json_round_trips_and_truncates_tail() {
        let mut h = Histogram::new();
        h.record(3);
        h.record(9);
        let json = h.to_json();
        let Some(Json::Array(items)) = json.get("buckets") else {
            panic!("buckets must be an array");
        };
        assert_eq!(items.len(), bucket_index(9) + 1);
        let back = Histogram::from_json(&json).expect("round trip");
        assert_eq!(back.count(), 2);
        assert_eq!(back.sum(), 12);
        assert_eq!(back.min(), Some(3));
        assert_eq!(back.max(), Some(9));
        assert_eq!(back.buckets(), h.buckets());
    }

    #[test]
    fn empty_histogram_round_trips() {
        let h = Histogram::new();
        let back = Histogram::from_json(&h.to_json()).expect("round trip");
        assert_eq!(back.count(), 0);
        assert_eq!(back.min(), None);
        let mut merged = back;
        merged.record(2);
        assert_eq!(merged.min(), Some(2));
    }

    #[test]
    fn from_json_rejects_malformed() {
        assert!(Histogram::from_json(&Json::Null).is_none());
        assert!(Histogram::from_json(&Json::object()).is_none());
        let mut bad = Histogram::new().to_json();
        bad.set("buckets", Json::Str("nope".to_string()));
        assert!(Histogram::from_json(&bad).is_none());
    }
}
