//! The [`Observer`] trait and the structured events flowing through it.

use crate::metrics::Registry;
use std::time::Duration;

/// Severity of a [`Event::Message`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Something failed.
    Error,
    /// Something looks wrong but the run continues.
    Warn,
    /// High-level progress (the `--progress` default).
    Info,
    /// Per-phase and per-restart detail.
    Debug,
    /// Everything, including per-clause events.
    Trace,
}

impl Level {
    /// The lowercase label (`"error"`, `"warn"`, …).
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

/// A structured event emitted by an instrumented component.
///
/// Events borrow their string fields, so emitting one is allocation-free;
/// observers that need to keep data copy it out.
#[derive(Clone, Debug, PartialEq)]
pub enum Event<'a> {
    /// A named phase began (`parse`, `solve`, `trace-encode`,
    /// `check:pass1`, `check:resolve`, `final-phase`, …).
    ///
    /// [`Phase`](crate::Phase) no longer emits this (it emits span
    /// events); the variant remains for manual constructions and
    /// buffered replays of older streams.
    PhaseStarted {
        /// The phase name.
        phase: &'a str,
    },
    /// A named phase finished.
    PhaseFinished {
        /// The phase name.
        phase: &'a str,
        /// Wall-clock duration of the phase.
        wall: Duration,
    },
    /// A hierarchical span opened (see [`Span`](crate::Span)).
    SpanStarted {
        /// Process-unique span id.
        id: u64,
        /// The enclosing span on the same thread, if any.
        parent: Option<u64>,
        /// The span name.
        name: &'a str,
    },
    /// A hierarchical span closed.
    SpanFinished {
        /// The span's id.
        id: u64,
        /// The span name (repeated so sinks need no id→name map).
        name: &'a str,
        /// Wall-clock duration of the span.
        wall: Duration,
    },
    /// A monotonic counter increased.
    CounterAdd {
        /// Dotted counter name.
        name: &'a str,
        /// Amount added.
        delta: u64,
    },
    /// A gauge took an absolute value.
    GaugeSet {
        /// Dotted gauge name.
        name: &'a str,
        /// The new value.
        value: f64,
    },
    /// One sample for a log-bucketed histogram.
    HistRecord {
        /// Dotted histogram name.
        name: &'a str,
        /// The sample.
        value: u64,
    },
    /// A periodic heartbeat from a long-running phase.
    Progress {
        /// The phase reporting progress.
        phase: &'a str,
        /// Work completed so far, in `unit`s.
        done: u64,
        /// What `done` counts (`"conflicts"`, `"clauses"`, `"events"`).
        unit: &'a str,
        /// Optional preformatted detail for humans.
        detail: Option<&'a str>,
    },
    /// The solver made a branching decision.
    Decision {
        /// 1-based decision number.
        number: u64,
    },
    /// The solver hit a conflict.
    Conflict {
        /// 1-based conflict number.
        number: u64,
        /// Decision level at which the conflict occurred.
        decision_level: u32,
    },
    /// The solver restarted.
    Restart {
        /// 1-based restart number.
        number: u64,
        /// Conflicts since the previous restart.
        conflicts_since: u64,
    },
    /// The solver learned a clause.
    ClauseLearned {
        /// The clause's trace ID.
        id: u64,
        /// Number of literals in the learned clause.
        literals: u64,
    },
    /// The solver reduced its learned-clause database.
    DbReduced {
        /// Learned clauses kept.
        kept: u64,
        /// Learned clauses deleted.
        deleted: u64,
    },
    /// A freeform message.
    Message {
        /// Severity.
        level: Level,
        /// The text.
        text: &'a str,
    },
}

/// A consumer of structured events.
///
/// Implementations must be cheap for events they ignore: the solver emits
/// one event per decision and per conflict on instrumented runs.
pub trait Observer {
    /// Receives one event.
    fn observe(&mut self, event: &Event<'_>);
}

/// An observer that discards everything (the uninstrumented default).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NullObserver;

impl Observer for NullObserver {
    fn observe(&mut self, _event: &Event<'_>) {}
}

/// Fans every event out to two observers.
///
/// # Examples
///
/// ```
/// use rescheck_obs::{Event, MetricsSink, NullObserver, Observer, Tee};
///
/// let mut metrics = MetricsSink::new();
/// let mut null = NullObserver;
/// let mut tee = Tee::new(&mut metrics, &mut null);
/// tee.observe(&Event::CounterAdd { name: "x", delta: 2 });
/// assert_eq!(metrics.registry().counter("x"), Some(2));
/// ```
pub struct Tee<'a> {
    first: &'a mut dyn Observer,
    second: &'a mut dyn Observer,
}

impl<'a> Tee<'a> {
    /// Combines two observers.
    pub fn new(first: &'a mut dyn Observer, second: &'a mut dyn Observer) -> Self {
        Tee { first, second }
    }
}

impl Observer for Tee<'_> {
    fn observe(&mut self, event: &Event<'_>) {
        self.first.observe(event);
        self.second.observe(event);
    }
}

/// An observer that accumulates phases, counters, gauges, histograms and
/// span trees into a [`Registry`] for JSON emission.
///
/// Discrete solver events ([`Event::Decision`], [`Event::Conflict`], …)
/// are intentionally *not* counted here: the authoritative totals arrive
/// as [`Event::CounterAdd`] flushes from the component's own statistics,
/// and counting both would double-report. [`Event::ClauseLearned`] *is*
/// sampled into the `solver.learned_len` histogram — a distribution the
/// flushed totals cannot reconstruct, and histograms have no
/// double-reporting hazard.
///
/// Span finishes record both the span tree node and a phase timing under
/// the span's name, which keeps the v1 `phases` keys populated now that
/// [`Phase`](crate::Phase) is span-backed.
#[derive(Clone, Debug, Default)]
pub struct MetricsSink {
    registry: Registry,
}

impl MetricsSink {
    /// An empty sink.
    pub fn new() -> Self {
        MetricsSink::default()
    }

    /// The accumulated registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Mutable access, for callers that record directly.
    pub fn registry_mut(&mut self) -> &mut Registry {
        &mut self.registry
    }

    /// Consumes the sink and returns the registry.
    pub fn into_registry(self) -> Registry {
        self.registry
    }
}

impl Observer for MetricsSink {
    fn observe(&mut self, event: &Event<'_>) {
        match event {
            Event::PhaseFinished { phase, wall } => self.registry.record_phase(phase, *wall),
            Event::SpanStarted { id, parent, name } => {
                self.registry.record_span_start(*id, *parent, name);
            }
            Event::SpanFinished { id, name, wall } => {
                self.registry.record_span_finish(*id, name, *wall);
                self.registry.record_phase(name, *wall);
            }
            Event::CounterAdd { name, delta } => self.registry.inc(name, *delta),
            Event::GaugeSet { name, value } => self.registry.set_gauge(name, *value),
            Event::HistRecord { name, value } => self.registry.record_hist(name, *value),
            Event::ClauseLearned { literals, .. } => {
                self.registry.record_hist("solver.learned_len", *literals);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_sink_accumulates_the_right_events() {
        let mut sink = MetricsSink::new();
        sink.observe(&Event::CounterAdd {
            name: "c",
            delta: 2,
        });
        sink.observe(&Event::CounterAdd {
            name: "c",
            delta: 3,
        });
        sink.observe(&Event::GaugeSet {
            name: "g",
            value: 1.5,
        });
        sink.observe(&Event::PhaseFinished {
            phase: "solve",
            wall: Duration::from_millis(20),
        });
        sink.observe(&Event::HistRecord {
            name: "h",
            value: 9,
        });
        // Ignored kinds:
        sink.observe(&Event::Decision { number: 1 });
        sink.observe(&Event::Conflict {
            number: 1,
            decision_level: 3,
        });
        sink.observe(&Event::Progress {
            phase: "solve",
            done: 10,
            unit: "conflicts",
            detail: None,
        });
        let reg = sink.registry();
        assert_eq!(reg.counter("c"), Some(5));
        assert_eq!(reg.gauge("g"), Some(1.5));
        assert_eq!(reg.phase_names(), vec!["solve"]);
        assert_eq!(reg.histogram("h").map(|h| h.count()), Some(1));
        assert_eq!(reg.counter("events.decisions"), None);
    }

    #[test]
    fn span_finish_records_both_tree_node_and_phase() {
        let mut sink = MetricsSink::new();
        sink.observe(&Event::SpanStarted {
            id: 7,
            parent: None,
            name: "check",
        });
        sink.observe(&Event::SpanStarted {
            id: 8,
            parent: Some(7),
            name: "check:pass1",
        });
        sink.observe(&Event::SpanFinished {
            id: 8,
            name: "check:pass1",
            wall: Duration::from_millis(5),
        });
        sink.observe(&Event::SpanFinished {
            id: 7,
            name: "check",
            wall: Duration::from_millis(9),
        });
        let reg = sink.registry();
        assert_eq!(reg.phase_names(), vec!["check:pass1", "check"]);
        let spans = reg.to_json();
        let roots = spans.get("spans").unwrap();
        let crate::json::Json::Array(roots) = roots else {
            panic!("spans must be an array");
        };
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].get("name").unwrap().as_str(), Some("check"));
    }

    #[test]
    fn clause_learned_feeds_the_length_histogram() {
        let mut sink = MetricsSink::new();
        sink.observe(&Event::ClauseLearned { id: 5, literals: 3 });
        sink.observe(&Event::ClauseLearned { id: 6, literals: 7 });
        let h = sink.registry().histogram("solver.learned_len").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), Some(7));
    }

    #[test]
    fn tee_duplicates() {
        let mut a = MetricsSink::new();
        let mut b = MetricsSink::new();
        let mut tee = Tee::new(&mut a, &mut b);
        tee.observe(&Event::CounterAdd {
            name: "n",
            delta: 1,
        });
        assert_eq!(a.registry().counter("n"), Some(1));
        assert_eq!(b.registry().counter("n"), Some(1));
    }

    #[test]
    fn levels_order() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Info < Level::Debug);
        assert!(Level::Debug < Level::Trace);
        assert_eq!(Level::Warn.as_str(), "warn");
    }

    #[test]
    fn null_observer_is_a_no_op() {
        let mut null = NullObserver;
        null.observe(&Event::Restart {
            number: 1,
            conflicts_since: 128,
        });
    }
}
