//! Rate-limited stderr progress reporting, filtered by `RESCHECK_LOG`.

use crate::observer::{Event, Level, Observer};
use std::collections::BTreeMap;
use std::io::Write;
use std::time::{Duration, Instant};

/// Parsed form of the `RESCHECK_LOG` environment variable.
///
/// The value is a comma-separated list: a level name (`off`, `error`,
/// `warn`, `info`, `debug`, `trace`) plus `key=value` options.
/// Recognised options:
///
/// - `heartbeat-conflicts=N` — emit solver progress every N conflicts
///   (default 4096)
/// - `heartbeat-events=M` — emit trace/checker progress every M events
///   or clauses (default 65536)
/// - `interval-ms=T` — minimum milliseconds between printed lines
///   (default 250)
///
/// Unknown tokens are ignored so the filter degrades gracefully.
///
/// # Examples
///
/// ```
/// use rescheck_obs::LogConfig;
///
/// let cfg = LogConfig::parse("debug,heartbeat-conflicts=100,interval-ms=0");
/// assert_eq!(cfg.heartbeat_conflicts, 100);
/// assert_eq!(cfg.interval, std::time::Duration::ZERO);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogConfig {
    /// Highest severity printed; `None` silences everything.
    pub level: Option<Level>,
    /// Conflicts between solver heartbeats.
    pub heartbeat_conflicts: u64,
    /// Trace events / clauses between checker and codec heartbeats.
    pub heartbeat_events: u64,
    /// Minimum wall-clock between printed progress lines.
    pub interval: Duration,
}

impl Default for LogConfig {
    fn default() -> Self {
        LogConfig {
            level: Some(Level::Info),
            heartbeat_conflicts: 4096,
            heartbeat_events: 65536,
            interval: Duration::from_millis(250),
        }
    }
}

impl LogConfig {
    /// Reads `RESCHECK_LOG` from the environment; unset means defaults.
    pub fn from_env() -> Self {
        match std::env::var("RESCHECK_LOG") {
            Ok(value) => LogConfig::parse(&value),
            Err(_) => LogConfig::default(),
        }
    }

    /// Parses a `RESCHECK_LOG`-style string.
    pub fn parse(value: &str) -> Self {
        let mut cfg = LogConfig::default();
        for token in value.split(',') {
            let token = token.trim();
            if token.is_empty() {
                continue;
            }
            if let Some((key, val)) = token.split_once('=') {
                let parsed = val.trim().parse::<u64>().ok();
                match (key.trim(), parsed) {
                    ("heartbeat-conflicts", Some(n)) if n > 0 => cfg.heartbeat_conflicts = n,
                    ("heartbeat-events", Some(n)) if n > 0 => cfg.heartbeat_events = n,
                    ("interval-ms", Some(n)) => cfg.interval = Duration::from_millis(n),
                    _ => {}
                }
            } else {
                match token.to_ascii_lowercase().as_str() {
                    "off" | "none" | "0" => cfg.level = None,
                    "error" => cfg.level = Some(Level::Error),
                    "warn" => cfg.level = Some(Level::Warn),
                    "info" => cfg.level = Some(Level::Info),
                    "debug" => cfg.level = Some(Level::Debug),
                    "trace" => cfg.level = Some(Level::Trace),
                    _ => {}
                }
            }
        }
        cfg
    }

    /// `true` if a message at `level` passes the filter.
    pub fn enabled(&self, level: Level) -> bool {
        match self.level {
            Some(max) => level <= max,
            None => false,
        }
    }
}

/// An [`Observer`] that prints human-readable progress lines.
///
/// Writes to any [`Write`] sink (stderr in the CLI, a buffer in tests).
/// Progress heartbeats are rate-limited to [`LogConfig::interval`];
/// phase boundaries and messages at or above the configured level are
/// always printed. Formatting failures are swallowed — observability
/// must never take down the run.
pub struct ProgressReporter<W: Write> {
    out: W,
    cfg: LogConfig,
    last_progress: Option<Instant>,
    last_conflict_heartbeat: u64,
    last_done: BTreeMap<String, u64>,
}

impl ProgressReporter<std::io::Stderr> {
    /// A reporter on stderr with the given configuration.
    pub fn stderr(cfg: LogConfig) -> Self {
        ProgressReporter::new(std::io::stderr(), cfg)
    }
}

impl<W: Write> ProgressReporter<W> {
    /// A reporter on an arbitrary sink.
    pub fn new(out: W, cfg: LogConfig) -> Self {
        ProgressReporter {
            out,
            cfg,
            last_progress: None,
            last_conflict_heartbeat: 0,
            last_done: BTreeMap::new(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &LogConfig {
        &self.cfg
    }

    /// Consumes the reporter and returns its sink (for tests).
    pub fn into_inner(self) -> W {
        self.out
    }

    fn line(&mut self, text: &str) {
        let _ = writeln!(self.out, "rescheck: {text}");
    }

    fn progress_allowed(&mut self) -> bool {
        let now = Instant::now();
        match self.last_progress {
            Some(last) if now.duration_since(last) < self.cfg.interval => false,
            _ => {
                self.last_progress = Some(now);
                true
            }
        }
    }
}

impl<W: Write> Observer for ProgressReporter<W> {
    fn observe(&mut self, event: &Event<'_>) {
        match event {
            Event::PhaseStarted { phase } => {
                if self.cfg.enabled(Level::Debug) {
                    self.line(&format!("[{phase}] started"));
                }
            }
            Event::PhaseFinished { phase, wall } => {
                if self.cfg.enabled(Level::Info) {
                    self.line(&format!("[{phase}] finished in {:.3}s", wall.as_secs_f64()));
                }
            }
            // Spans print exactly like phases (Phase is span-backed now);
            // the tree structure lives in the metrics document, not here.
            Event::SpanStarted { name, .. } => {
                if self.cfg.enabled(Level::Debug) {
                    self.line(&format!("[{name}] started"));
                }
            }
            Event::SpanFinished { name, wall, .. } => {
                if self.cfg.enabled(Level::Info) {
                    self.line(&format!("[{name}] finished in {:.3}s", wall.as_secs_f64()));
                }
            }
            Event::Progress {
                phase,
                done,
                unit,
                detail,
            } => {
                // Heartbeat every `heartbeat_events` units of work per
                // phase, further rate-limited in wall-clock.
                let last = self.last_done.get(*phase).copied().unwrap_or(0);
                if self.cfg.enabled(Level::Info)
                    && done.saturating_sub(last) >= self.cfg.heartbeat_events
                    && self.progress_allowed()
                {
                    self.last_done.insert((*phase).to_string(), *done);
                    match detail {
                        Some(detail) => self.line(&format!("[{phase}] {done} {unit} · {detail}")),
                        None => self.line(&format!("[{phase}] {done} {unit}")),
                    }
                }
            }
            Event::Conflict { number, .. } => {
                // Heartbeat every `heartbeat_conflicts` conflicts.
                if self.cfg.enabled(Level::Info)
                    && number.saturating_sub(self.last_conflict_heartbeat)
                        >= self.cfg.heartbeat_conflicts
                    && self.progress_allowed()
                {
                    self.last_conflict_heartbeat = *number;
                    self.line(&format!("[solve] {number} conflicts"));
                }
            }
            Event::Restart {
                number,
                conflicts_since,
            } => {
                if self.cfg.enabled(Level::Debug) {
                    self.line(&format!(
                        "[solve] restart #{number} after {conflicts_since} conflicts"
                    ));
                }
            }
            Event::DbReduced { kept, deleted } => {
                if self.cfg.enabled(Level::Debug) {
                    self.line(&format!(
                        "[solve] reduced db: kept {kept}, deleted {deleted}"
                    ));
                }
            }
            Event::Message { level, text } => {
                if self.cfg.enabled(*level) {
                    self.line(text);
                }
            }
            // Per-decision / per-clause events are too hot to print
            // individually even at trace level; counters and the
            // heartbeats summarise them.
            Event::Decision { .. }
            | Event::ClauseLearned { .. }
            | Event::CounterAdd { .. }
            | Event::GaugeSet { .. }
            | Event::HistRecord { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reported(cfg: LogConfig, events: &[Event<'_>]) -> String {
        let mut rep = ProgressReporter::new(Vec::new(), cfg);
        for event in events {
            rep.observe(event);
        }
        String::from_utf8(rep.into_inner()).unwrap()
    }

    #[test]
    fn parse_level_and_options() {
        let cfg = LogConfig::parse("trace,heartbeat-conflicts=7,heartbeat-events=9,interval-ms=3");
        assert_eq!(cfg.level, Some(Level::Trace));
        assert_eq!(cfg.heartbeat_conflicts, 7);
        assert_eq!(cfg.heartbeat_events, 9);
        assert_eq!(cfg.interval, Duration::from_millis(3));
    }

    #[test]
    fn parse_ignores_junk_and_zero_heartbeats() {
        let cfg = LogConfig::parse("bogus,heartbeat-conflicts=0,what=ever");
        assert_eq!(cfg, LogConfig::default());
    }

    #[test]
    fn off_silences_everything() {
        let cfg = LogConfig::parse("off");
        assert!(!cfg.enabled(Level::Error));
        let out = reported(
            cfg,
            &[Event::Message {
                level: Level::Error,
                text: "boom",
            }],
        );
        assert!(out.is_empty());
    }

    #[test]
    fn info_prints_phases_but_not_restarts() {
        let cfg = LogConfig::parse("info,interval-ms=0");
        let out = reported(
            cfg,
            &[
                Event::PhaseFinished {
                    phase: "solve",
                    wall: Duration::from_millis(1500),
                },
                Event::Restart {
                    number: 1,
                    conflicts_since: 64,
                },
            ],
        );
        assert!(out.contains("[solve] finished in 1.500s"), "got: {out}");
        assert!(!out.contains("restart"));
    }

    #[test]
    fn debug_prints_restarts_and_phase_starts() {
        let cfg = LogConfig::parse("debug,interval-ms=0");
        let out = reported(
            cfg,
            &[
                Event::PhaseStarted {
                    phase: "check:pass1",
                },
                Event::Restart {
                    number: 2,
                    conflicts_since: 100,
                },
            ],
        );
        assert!(out.contains("[check:pass1] started"));
        assert!(out.contains("restart #2 after 100 conflicts"));
    }

    #[test]
    fn progress_is_rate_limited_in_time() {
        let cfg = LogConfig::parse("info,interval-ms=60000,heartbeat-events=1");
        let ticks: Vec<Event<'_>> = (1..=3)
            .map(|i| Event::Progress {
                phase: "solve",
                done: i,
                unit: "conflicts",
                detail: None,
            })
            .collect();
        let out = reported(cfg, &ticks);
        assert_eq!(out.lines().count(), 1, "got: {out}");
    }

    #[test]
    fn progress_respects_event_heartbeat() {
        // heartbeat-events=100: done=50 is below threshold, 150 prints,
        // 200 is only 50 past the last print.
        let cfg = LogConfig::parse("info,interval-ms=0,heartbeat-events=100");
        let tick = |done| Event::Progress {
            phase: "check:resolve",
            done,
            unit: "clauses",
            detail: None,
        };
        let out = reported(cfg, &[tick(50), tick(150), tick(200)]);
        assert_eq!(out.lines().count(), 1, "got: {out}");
        assert!(out.contains("[check:resolve] 150 clauses"));
    }

    #[test]
    fn conflicts_heartbeat_at_configured_interval() {
        let cfg = LogConfig::parse("info,interval-ms=0,heartbeat-conflicts=10");
        let conflict = |number| Event::Conflict {
            number,
            decision_level: 1,
        };
        let out = reported(
            cfg,
            &[conflict(5), conflict(10), conflict(15), conflict(20)],
        );
        assert_eq!(out.lines().count(), 2, "got: {out}");
        assert!(out.contains("[solve] 10 conflicts"));
        assert!(out.contains("[solve] 20 conflicts"));
    }

    #[test]
    fn spans_print_like_phases() {
        let cfg = LogConfig::parse("debug,interval-ms=0");
        let out = reported(
            cfg,
            &[
                Event::SpanStarted {
                    id: 1,
                    parent: None,
                    name: "check",
                },
                Event::SpanFinished {
                    id: 1,
                    name: "check",
                    wall: Duration::from_millis(2500),
                },
                Event::HistRecord {
                    name: "quiet.hist",
                    value: 3,
                },
            ],
        );
        assert!(out.contains("[check] started"));
        assert!(out.contains("[check] finished in 2.500s"));
        assert!(
            !out.contains("quiet.hist"),
            "hist records are silent: {out}"
        );
    }

    #[test]
    fn progress_detail_is_appended() {
        let cfg = LogConfig::parse("info,interval-ms=0,heartbeat-events=1");
        let out = reported(
            cfg,
            &[Event::Progress {
                phase: "check:resolve",
                done: 500,
                unit: "clauses",
                detail: Some("12 MB peak"),
            }],
        );
        assert!(out.contains("[check:resolve] 500 clauses · 12 MB peak"));
    }
}
