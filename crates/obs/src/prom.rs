//! Prometheus text-exposition rendering of a [`Registry`].
//!
//! `rescheck … --metrics-format prom` emits this format so CI and
//! future `rescheck serve` clients scrape metrics instead of parsing
//! stdout. The output follows the text exposition conventions: one
//! `# TYPE` comment per family, `_bucket{le="…"}` cumulative buckets
//! with a closing `+Inf` for histograms, and dotted rescheck names
//! mapped into the `rescheck_` namespace with invalid characters
//! replaced by underscores.

use crate::histogram::{bucket_upper_bound, Histogram, BUCKETS};
use crate::metrics::Registry;
use std::fmt::Write;

/// Renders the registry in Prometheus text exposition format.
///
/// Counters and gauges become `rescheck_<name>` families; phase
/// timings become `rescheck_phase_seconds{phase="…"}`; histograms
/// become cumulative `_bucket`/`_sum`/`_count` families.
///
/// # Examples
///
/// ```
/// use rescheck_obs::{prom, Registry};
///
/// let mut reg = Registry::new();
/// reg.inc("check.resolutions", 42);
/// let text = prom::render(&reg);
/// assert!(text.contains("rescheck_check_resolutions 42"));
/// ```
pub fn render(reg: &Registry) -> String {
    let mut out = String::new();
    for (name, value) in reg.to_json().get("counters").map_or(vec![], object_entries) {
        let metric = metric_name(&name);
        let _ = writeln!(out, "# TYPE {metric} counter");
        let _ = writeln!(out, "{metric} {value}");
    }
    for (name, value) in reg.to_json().get("gauges").map_or(vec![], object_entries) {
        let metric = metric_name(&name);
        let _ = writeln!(out, "# TYPE {metric} gauge");
        let _ = writeln!(out, "{metric} {value}");
    }
    if !reg.phase_names().is_empty() {
        let _ = writeln!(out, "# TYPE rescheck_phase_seconds gauge");
        for phase in reg.phase_names() {
            let seconds = reg.phase_seconds(phase).unwrap_or(0.0);
            let _ = writeln!(
                out,
                "rescheck_phase_seconds{{phase=\"{}\"}} {seconds}",
                escape_label(phase)
            );
        }
    }
    for (name, hist) in reg.histograms() {
        render_histogram(&mut out, &metric_name(name), hist);
    }
    out
}

fn render_histogram(out: &mut String, metric: &str, hist: &Histogram) {
    let _ = writeln!(out, "# TYPE {metric} histogram");
    let buckets = hist.buckets();
    let last = buckets.iter().rposition(|&c| c > 0).map_or(0, |i| i + 1);
    let mut cumulative = 0u64;
    for (i, &count) in buckets.iter().enumerate().take(last) {
        cumulative += count;
        match bucket_upper_bound(i) {
            Some(le) => {
                let _ = writeln!(out, "{metric}_bucket{{le=\"{le}\"}} {cumulative}");
            }
            None => break, // the unbounded bucket is the +Inf line below
        }
    }
    let _ = writeln!(
        out,
        "{metric}_bucket{{le=\"+Inf\"}} {count}",
        count = hist.count()
    );
    let _ = writeln!(out, "{metric}_sum {}", hist.sum());
    let _ = writeln!(out, "{metric}_count {}", hist.count());
    debug_assert!(last <= BUCKETS);
}

/// Maps a dotted rescheck name into the Prometheus namespace:
/// `check.pass1.shard0.events` → `rescheck_check_pass1_shard0_events`.
fn metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 9);
    out.push_str("rescheck_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn object_entries(json: &crate::json::Json) -> Vec<(String, String)> {
    match json {
        crate::json::Json::Object(fields) => fields
            .iter()
            .map(|(k, v)| (k.clone(), v.to_string()))
            .collect(),
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn counters_gauges_and_phases_render() {
        let mut reg = Registry::new();
        reg.inc("check.resolutions", 7);
        reg.set_gauge("check.peak_memory_bytes", 1024.0);
        reg.record_phase("check:pass1", Duration::from_millis(250));
        let text = render(&reg);
        assert!(text.contains("# TYPE rescheck_check_resolutions counter"));
        assert!(text.contains("rescheck_check_resolutions 7"));
        assert!(text.contains("# TYPE rescheck_check_peak_memory_bytes gauge"));
        assert!(text.contains("rescheck_check_peak_memory_bytes 1024"));
        assert!(text.contains("rescheck_phase_seconds{phase=\"check:pass1\"} 0.25"));
    }

    #[test]
    fn histograms_render_cumulative_buckets() {
        let mut reg = Registry::new();
        reg.record_hist("check.resolve.chain_len", 1);
        reg.record_hist("check.resolve.chain_len", 3);
        reg.record_hist("check.resolve.chain_len", 3);
        let text = render(&reg);
        assert!(text.contains("# TYPE rescheck_check_resolve_chain_len histogram"));
        // value 1 → bucket 1 (le=1), values 3 → bucket 2 (le=3).
        assert!(text.contains("rescheck_check_resolve_chain_len_bucket{le=\"1\"} 1"));
        assert!(text.contains("rescheck_check_resolve_chain_len_bucket{le=\"3\"} 3"));
        assert!(text.contains("rescheck_check_resolve_chain_len_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("rescheck_check_resolve_chain_len_sum 7"));
        assert!(text.contains("rescheck_check_resolve_chain_len_count 3"));
    }

    #[test]
    fn every_line_is_comment_or_sample() {
        let mut reg = Registry::new();
        reg.inc("a.b", 1);
        reg.set_gauge("g", 0.5);
        reg.record_hist("h", 9);
        reg.record_phase("p", Duration::from_secs(1));
        for line in render(&reg).lines() {
            if line.starts_with('#') {
                assert!(line.starts_with("# TYPE ") || line.starts_with("# HELP "));
                continue;
            }
            let (name, value) = line.rsplit_once(' ').expect("sample has a value");
            assert!(!name.is_empty());
            assert!(value.parse::<f64>().is_ok(), "unparsable value in {line:?}");
            let bare = name.split('{').next().unwrap();
            assert!(
                bare.chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "bad metric name in {line:?}"
            );
        }
    }

    #[test]
    fn label_values_escape() {
        let mut reg = Registry::new();
        reg.record_phase("odd\"phase", Duration::from_secs(1));
        let text = render(&reg);
        assert!(text.contains("phase=\"odd\\\"phase\""));
    }
}
