//! The crash flight recorder: a bounded ring of recent events.
//!
//! A [`FlightRecorder`] keeps the last `capacity` events (default 4096)
//! it observed, each stamped with a sequence number and the time since
//! the recorder started. When a check fails, a fuzz oracle disagrees or
//! a resource limit trips, the ring is dumped as a `*.flight.json`
//! document — a "last 4k events before death" black box that rides
//! along with the repro bundle.
//!
//! Unlike [`EventBuffer`](crate::EventBuffer), the recorder captures
//! *everything*, including per-decision solver events, via
//! [`OwnedEvent::from_event_full`]; it is meant for the check/fuzz
//! paths, not the solver's uninstrumented hot loop.
//!
//! Span ids are process-global and therefore differ between runs; the
//! dump renumbers them densely in order of first appearance so that two
//! identical runs produce byte-identical dumps. `deterministic()` mode
//! additionally drops timestamps and zeroes durations, which is what
//! the fuzzer's reproducible repro bundles use.

use crate::buffer::OwnedEvent;
use crate::json::Json;
use crate::observer::{Event, Observer};
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Default ring capacity: the "last 4k events" of the post-mortem.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 4096;

/// Schema tag of the dump document.
pub const FLIGHT_SCHEMA: &str = "rescheck-flight-v1";

/// A fixed-capacity ring buffer of recent events, dumpable as JSON.
///
/// # Examples
///
/// ```
/// use rescheck_obs::{Event, FlightRecorder, Observer};
///
/// let mut flight = FlightRecorder::with_capacity(2);
/// flight.observe(&Event::Decision { number: 1 });
/// flight.observe(&Event::Decision { number: 2 });
/// flight.observe(&Event::Decision { number: 3 }); // evicts #1
/// assert_eq!(flight.len(), 2);
/// assert_eq!(flight.dropped(), 1);
/// let dump = flight.to_json();
/// assert_eq!(dump.get("schema").unwrap().as_str(), Some("rescheck-flight-v1"));
/// ```
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    next_seq: u64,
    dropped: u64,
    started: Instant,
    deterministic: bool,
    events: VecDeque<(u64, Duration, OwnedEvent)>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new()
    }
}

impl FlightRecorder {
    /// A recorder with the default capacity.
    pub fn new() -> Self {
        FlightRecorder::with_capacity(DEFAULT_FLIGHT_CAPACITY)
    }

    /// A recorder keeping at most `capacity` events (minimum 1).
    pub fn with_capacity(capacity: usize) -> Self {
        FlightRecorder {
            capacity: capacity.max(1),
            next_seq: 0,
            dropped: 0,
            started: Instant::now(),
            deterministic: false,
            events: VecDeque::new(),
        }
    }

    /// Switches the dump to deterministic form: no timestamps, zeroed
    /// durations. Two identical event streams then produce
    /// byte-identical dumps, which the fuzzer's reproducible repro
    /// bundles require.
    pub fn deterministic(mut self) -> Self {
        self.deterministic = true;
        self
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if nothing was recorded (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted from the ring so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The dump document: schema, capacity, drop count and the retained
    /// events oldest-first.
    pub fn to_json(&self) -> Json {
        // Renumber span ids densely by first appearance so dumps are
        // stable across runs (live ids come from a process counter).
        let mut span_ids: BTreeMap<u64, u64> = BTreeMap::new();
        for (_, _, event) in &self.events {
            if let OwnedEvent::SpanStarted { id, .. } | OwnedEvent::SpanFinished { id, .. } = event
            {
                let next = span_ids.len() as u64 + 1;
                span_ids.entry(*id).or_insert(next);
            }
        }
        let mut items = Vec::with_capacity(self.events.len());
        for (seq, t, event) in &self.events {
            items.push(self.event_json(*seq, *t, event, &span_ids));
        }
        let mut root = Json::object();
        root.set("schema", FLIGHT_SCHEMA)
            .set("capacity", self.capacity)
            .set("dropped", self.dropped)
            .set("events", Json::Array(items));
        root
    }

    fn event_json(
        &self,
        seq: u64,
        t: Duration,
        event: &OwnedEvent,
        span_ids: &BTreeMap<u64, u64>,
    ) -> Json {
        let mut node = Json::object();
        node.set("seq", seq);
        if !self.deterministic {
            node.set("t_us", t.as_micros() as u64);
        }
        let wall_of = |wall: &Duration| {
            if self.deterministic {
                0.0
            } else {
                wall.as_secs_f64()
            }
        };
        let span_of = |id: &u64| span_ids.get(id).copied().unwrap_or(0);
        match event {
            OwnedEvent::PhaseStarted { phase } => {
                node.set("kind", "phase-started")
                    .set("phase", phase.as_str());
            }
            OwnedEvent::PhaseFinished { phase, wall } => {
                node.set("kind", "phase-finished")
                    .set("phase", phase.as_str())
                    .set("wall_seconds", wall_of(wall));
            }
            OwnedEvent::SpanStarted { id, parent, name } => {
                node.set("kind", "span-started")
                    .set("id", span_of(id))
                    .set(
                        "parent",
                        match parent.map(|p| span_ids.get(&p).copied()) {
                            Some(Some(p)) => Json::UInt(p),
                            // A parent whose start fell off the ring (or
                            // was never seen) is reported as a root.
                            _ => Json::Null,
                        },
                    )
                    .set("name", name.as_str());
            }
            OwnedEvent::SpanFinished { id, name, wall } => {
                node.set("kind", "span-finished")
                    .set("id", span_of(id))
                    .set("name", name.as_str())
                    .set("wall_seconds", wall_of(wall));
            }
            OwnedEvent::CounterAdd { name, delta } => {
                node.set("kind", "counter-add")
                    .set("name", name.as_str())
                    .set("delta", *delta);
            }
            OwnedEvent::GaugeSet { name, value } => {
                node.set("kind", "gauge-set")
                    .set("name", name.as_str())
                    .set("value", *value);
            }
            OwnedEvent::HistRecord { name, value } => {
                node.set("kind", "hist-record")
                    .set("name", name.as_str())
                    .set("value", *value);
            }
            OwnedEvent::Progress {
                phase,
                done,
                unit,
                detail,
            } => {
                node.set("kind", "progress")
                    .set("phase", phase.as_str())
                    .set("done", *done)
                    .set("unit", unit.as_str());
                if let Some(detail) = detail {
                    node.set("detail", detail.as_str());
                }
            }
            OwnedEvent::Decision { number } => {
                node.set("kind", "decision").set("number", *number);
            }
            OwnedEvent::Conflict {
                number,
                decision_level,
            } => {
                node.set("kind", "conflict")
                    .set("number", *number)
                    .set("decision_level", u64::from(*decision_level));
            }
            OwnedEvent::Restart {
                number,
                conflicts_since,
            } => {
                node.set("kind", "restart")
                    .set("number", *number)
                    .set("conflicts_since", *conflicts_since);
            }
            OwnedEvent::ClauseLearned { id, literals } => {
                node.set("kind", "clause-learned")
                    .set("id", *id)
                    .set("literals", *literals);
            }
            OwnedEvent::DbReduced { kept, deleted } => {
                node.set("kind", "db-reduced")
                    .set("kept", *kept)
                    .set("deleted", *deleted);
            }
            OwnedEvent::Message { level, text } => {
                node.set("kind", "message")
                    .set("level", level.as_str())
                    .set("text", text.as_str());
            }
        }
        node
    }
}

impl Observer for FlightRecorder {
    fn observe(&mut self, event: &Event<'_>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let t = if self.deterministic {
            Duration::ZERO
        } else {
            self.started.elapsed()
        };
        self.events
            .push_back((seq, t, OwnedEvent::from_event_full(event)));
        if self.events.len() > self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_the_newest_events() {
        let mut flight = FlightRecorder::with_capacity(3);
        for i in 0..5 {
            flight.observe(&Event::Decision { number: i });
        }
        assert_eq!(flight.len(), 3);
        assert_eq!(flight.dropped(), 2);
        let dump = flight.to_json();
        let Some(Json::Array(events)) = dump.get("events") else {
            panic!("events must be an array");
        };
        let seqs: Vec<u64> = events
            .iter()
            .map(|e| e.get("seq").unwrap().as_u64().unwrap())
            .collect();
        assert_eq!(seqs, vec![2, 3, 4]);
        assert_eq!(
            events[0].get("number").unwrap().as_u64(),
            Some(2),
            "oldest retained decision"
        );
    }

    #[test]
    fn captures_every_event_kind() {
        let mut flight = FlightRecorder::new();
        flight.observe(&Event::SpanStarted {
            id: 900,
            parent: None,
            name: "check",
        });
        flight.observe(&Event::Conflict {
            number: 1,
            decision_level: 4,
        });
        flight.observe(&Event::ClauseLearned {
            id: 10,
            literals: 3,
        });
        flight.observe(&Event::SpanFinished {
            id: 900,
            name: "check",
            wall: Duration::from_millis(7),
        });
        assert_eq!(flight.len(), 4);
        let dump = flight.to_json();
        let Some(Json::Array(events)) = dump.get("events") else {
            panic!("events must be an array");
        };
        assert_eq!(events[1].get("kind").unwrap().as_str(), Some("conflict"));
        assert_eq!(
            events[2].get("kind").unwrap().as_str(),
            Some("clause-learned")
        );
    }

    #[test]
    fn span_ids_renumber_densely() {
        let mut flight = FlightRecorder::new();
        flight.observe(&Event::SpanStarted {
            id: 7001,
            parent: None,
            name: "a",
        });
        flight.observe(&Event::SpanStarted {
            id: 9003,
            parent: Some(7001),
            name: "b",
        });
        flight.observe(&Event::SpanFinished {
            id: 9003,
            name: "b",
            wall: Duration::ZERO,
        });
        let dump = flight.to_json();
        let Some(Json::Array(events)) = dump.get("events") else {
            panic!("events must be an array");
        };
        assert_eq!(events[0].get("id").unwrap().as_u64(), Some(1));
        assert_eq!(events[1].get("id").unwrap().as_u64(), Some(2));
        assert_eq!(events[1].get("parent").unwrap().as_u64(), Some(1));
        assert_eq!(events[2].get("id").unwrap().as_u64(), Some(2));
        // A parent outside the ring window reports as a root.
        let mut tail = FlightRecorder::with_capacity(1);
        tail.observe(&Event::SpanStarted {
            id: 50,
            parent: Some(49),
            name: "child",
        });
        let dump = tail.to_json();
        let Some(Json::Array(events)) = dump.get("events") else {
            panic!("events must be an array");
        };
        assert_eq!(events[0].get("parent"), Some(&Json::Null));
    }

    #[test]
    fn deterministic_dumps_are_reproducible() {
        let run = || {
            let mut flight = FlightRecorder::with_capacity(8).deterministic();
            flight.observe(&Event::SpanStarted {
                id: crate::span::alloc_span_id(),
                parent: None,
                name: "check",
            });
            flight.observe(&Event::PhaseFinished {
                phase: "p",
                wall: Duration::from_millis(3),
            });
            flight.to_json().to_pretty_string()
        };
        let a = run();
        let b = run(); // different live span ids, same dump
        assert_eq!(a, b);
        assert!(!a.contains("t_us"));
        assert!(a.contains("\"wall_seconds\": 0.0"));
    }

    #[test]
    fn dump_has_schema_and_capacity() {
        let flight = FlightRecorder::with_capacity(16);
        let dump = flight.to_json();
        assert_eq!(dump.get("schema").unwrap().as_str(), Some(FLIGHT_SCHEMA));
        assert_eq!(dump.get("capacity").unwrap().as_u64(), Some(16));
        assert_eq!(dump.get("dropped").unwrap().as_u64(), Some(0));
        assert!(flight.is_empty());
    }
}
