//! Dependency-free observability for the rescheck workspace.
//!
//! The paper's evaluation is all measurement — trace-generation overhead,
//! checker runtime, peak memory, fraction of learned clauses rebuilt — so
//! this crate gives every layer a shared instrumentation vocabulary
//! without pulling in `tracing` or `serde` (the build environment is
//! offline):
//!
//! - [`Observer`] / [`Event`]: a structured event stream with borrowed,
//!   allocation-free payloads; [`NullObserver`] is the zero-cost default
//!   and [`Tee`] fans out to two observers.
//! - [`Phase`]: a wall-clock phase timer (`parse`, `solve`,
//!   `trace-encode`, `check:pass1`, `check:resolve`, `final-phase`).
//! - [`Registry`] / [`MetricsSink`]: monotonic counters, gauges and
//!   accumulated phase timings, serialisable as JSON.
//! - [`Json`]: a hand-rolled JSON value with a stable emitter and a
//!   parser used by the schema tests.
//! - [`ProgressReporter`] / [`LogConfig`]: a rate-limited stderr
//!   heartbeat controlled by the `RESCHECK_LOG` env filter.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buffer;
pub mod json;
pub mod metrics;
pub mod observer;
pub mod progress;

pub use buffer::{EventBuffer, OwnedEvent};
pub use json::{Json, ParseError};
pub use metrics::Registry;
pub use observer::{Event, Level, MetricsSink, NullObserver, Observer, Phase, Tee};
pub use progress::{LogConfig, ProgressReporter};
