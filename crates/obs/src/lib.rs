//! Dependency-free observability for the rescheck workspace.
//!
//! The paper's evaluation is all measurement — trace-generation overhead,
//! checker runtime, peak memory, fraction of learned clauses rebuilt — so
//! this crate gives every layer a shared instrumentation vocabulary
//! without pulling in `tracing` or `serde` (the build environment is
//! offline):
//!
//! - [`Observer`] / [`Event`]: a structured event stream with borrowed,
//!   allocation-free payloads; [`NullObserver`] is the zero-cost default
//!   and [`Tee`] fans out to two observers.
//! - [`Span`] / [`Phase`]: hierarchical wall-clock timers — spans nest
//!   (`check > check:df > check:pass1`) via a thread-local parent stack,
//!   and the classic phase timer is a span under the hood.
//! - [`Registry`] / [`MetricsSink`]: monotonic counters, gauges,
//!   accumulated phase timings, log-bucketed [`Histogram`]s and span
//!   trees, serialisable as JSON (and re-readable via
//!   [`Registry::from_json`]).
//! - [`FlightRecorder`]: a bounded ring of recent events dumped as a
//!   `*.flight.json` post-mortem when a check fails.
//! - [`prom`]: Prometheus text-exposition rendering for `--metrics-format
//!   prom`.
//! - [`Json`]: a hand-rolled JSON value with a stable emitter and a
//!   parser used by the schema tests.
//! - [`ProgressReporter`] / [`LogConfig`]: a rate-limited stderr
//!   heartbeat controlled by the `RESCHECK_LOG` env filter.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buffer;
pub mod flight;
pub mod histogram;
pub mod json;
pub mod metrics;
pub mod observer;
pub mod progress;
pub mod prom;
pub mod span;

pub use buffer::{EventBuffer, OwnedEvent};
pub use flight::{FlightRecorder, DEFAULT_FLIGHT_CAPACITY, FLIGHT_SCHEMA};
pub use histogram::Histogram;
pub use json::{Json, ParseError};
pub use metrics::{Registry, SpanRec};
pub use observer::{Event, Level, MetricsSink, NullObserver, Observer, Tee};
pub use progress::{LogConfig, ProgressReporter};
pub use span::{Phase, Span};
