//! A minimal JSON representation with a hand-rolled emitter and parser.
//!
//! The build environment is offline and the workspace is dependency-free
//! by policy, so metrics files are produced (and, in tests, re-read) by
//! this module instead of `serde`. Only what the metrics schema needs is
//! supported: objects preserve insertion order, numbers distinguish
//! integers from floats so `u64` counters round-trip exactly, and strings
//! are escaped per RFC 8259.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer, kept exact (no `f64` round-trip).
    Int(i64),
    /// An unsigned integer, kept exact.
    UInt(u64),
    /// A floating-point number. Non-finite values emit as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object. Insertion order is preserved on output.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Builds an empty object.
    pub fn object() -> Json {
        Json::Object(Vec::new())
    }

    /// Inserts (or replaces) a key in an object; panics on non-objects.
    pub fn set(&mut self, key: &str, value: impl Into<Json>) -> &mut Json {
        let Json::Object(fields) = self else {
            panic!("Json::set on a non-object");
        };
        match fields.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = value.into(),
            None => fields.push((key.to_string(), value.into())),
        }
        self
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Follows a `.`-separated path of object keys.
    pub fn path(&self, path: &str) -> Option<&Json> {
        path.split('.').try_fold(self, |v, key| v.get(key))
    }

    /// The value as an unsigned integer, if it is a non-negative number.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::UInt(u) => Some(u),
            Json::Int(i) => u64::try_from(i).ok(),
            _ => None,
        }
    }

    /// The value as a float (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Float(f) => Some(f),
            Json::Int(i) => Some(i as f64),
            Json::UInt(u) => Some(u as f64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Object keys, in insertion order (empty for non-objects).
    pub fn keys(&self) -> Vec<&str> {
        match self {
            Json::Object(fields) => fields.iter().map(|(k, _)| k.as_str()).collect(),
            _ => Vec::new(),
        }
    }

    /// Serializes with two-space indentation and a trailing newline,
    /// ready to write to a metrics file.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Array(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Object(fields) if !fields.is_empty() => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{i}"));
            }
            Json::UInt(u) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{u}"));
            }
            Json::Float(f) if f.is_finite() => {
                // Always include a decimal point so floats re-parse as
                // floats; `{:?}` gives the shortest round-trip form.
                let _ = fmt::Write::write_fmt(out, format_args!("{f:?}"));
            }
            Json::Float(_) => out.push_str("null"),
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    value.write_compact(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write_compact(&mut out);
        f.write_str(&out)
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<u64> for Json {
    fn from(u: u64) -> Json {
        Json::UInt(u)
    }
}

impl From<usize> for Json {
    fn from(u: usize) -> Json {
        Json::UInt(u as u64)
    }
}

impl From<i64> for Json {
    fn from(i: i64) -> Json {
        Json::Int(i)
    }
}

impl From<f64> for Json {
    fn from(f: f64) -> Json {
        Json::Float(f)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Array(items)
    }
}

impl<V: Into<Json> + Clone> From<&BTreeMap<String, V>> for Json {
    fn from(map: &BTreeMap<String, V>) -> Json {
        Json::Object(
            map.iter()
                .map(|(k, v)| (k.clone(), v.clone().into()))
                .collect(),
        )
    }
}

/// A parse failure with a byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document.
///
/// Intended for validating metrics files in tests; it accepts exactly the
/// subset [`Json`] emits (which is standard JSON without exponent-heavy
/// number edge cases beyond what `f64` parsing handles).
///
/// # Errors
///
/// Returns a [`ParseError`] with a byte offset on malformed input or
/// trailing garbage.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected {:?}", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&byte) = rest.first() else {
                return Err(self.error("unterminated string"));
            };
            match byte {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.error("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogates are not emitted by this crate;
                            // map them to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                _ => {
                    // Copy a full UTF-8 scalar.
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    let c = s.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.error("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_builder_preserves_order_and_replaces() {
        let mut obj = Json::object();
        obj.set("b", 1u64).set("a", 2u64).set("b", 3u64);
        assert_eq!(obj.keys(), vec!["b", "a"]);
        assert_eq!(obj.get("b").unwrap().as_u64(), Some(3));
        assert_eq!(obj.to_string(), r#"{"b":3,"a":2}"#);
    }

    #[test]
    fn escaping_round_trips() {
        let original = Json::Str("a\"b\\c\nd\te\u{1}é".to_string());
        let text = original.to_string();
        assert_eq!(parse(&text).unwrap(), original);
    }

    #[test]
    fn numbers_round_trip_exactly() {
        let mut obj = Json::object();
        obj.set("big", u64::MAX)
            .set("neg", -42i64)
            .set("pi", 3.25f64)
            .set("zero", 0u64);
        let parsed = parse(&obj.to_pretty_string()).unwrap();
        assert_eq!(parsed.get("big").unwrap(), &Json::UInt(u64::MAX));
        assert_eq!(parsed.get("neg").unwrap(), &Json::Int(-42));
        assert_eq!(parsed.get("pi").unwrap(), &Json::Float(3.25));
        assert_eq!(parsed.get("zero").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn floats_always_reparse_as_floats() {
        let text = Json::Float(2.0).to_string();
        assert_eq!(text, "2.0");
        assert_eq!(parse(&text).unwrap(), Json::Float(2.0));
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Float(f64::NAN).to_string(), "null");
        assert_eq!(Json::Float(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn nested_pretty_output_parses() {
        let mut inner = Json::object();
        inner.set("x", 1u64);
        let mut root = Json::object();
        root.set("name", "solve").set(
            "items",
            Json::Array(vec![Json::Null, Json::Bool(true), inner]),
        );
        let pretty = root.to_pretty_string();
        assert!(pretty.ends_with('\n'));
        assert_eq!(parse(&pretty).unwrap(), root);
    }

    #[test]
    fn path_navigation() {
        let doc = parse(r#"{"a":{"b":{"c":7}},"arr":[1,2]}"#).unwrap();
        assert_eq!(doc.path("a.b.c").unwrap().as_u64(), Some(7));
        assert!(doc.path("a.b.missing").is_none());
        assert!(doc.path("arr.c").is_none());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse(r#"{"a":1} extra"#).is_err());
        assert!(parse("nul").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("[]").unwrap(), Json::Array(vec![]));
        assert_eq!(parse("{}").unwrap(), Json::object());
        assert_eq!(Json::Array(vec![]).to_pretty_string(), "[]\n");
    }
}
