//! Cross-thread event buffering for parallel components.
//!
//! [`Event`] borrows its string fields, so it cannot be sent between
//! threads or stored beyond the `observe` call. Parallel code (the
//! checking portfolio, the sharded breadth-first passes) instead gives
//! each worker its own [`EventBuffer`] — an owned, `Send` recording of
//! everything the worker emitted — and replays the buffers into the real
//! observer on the coordinating thread once the workers are joined,
//! tagging every replayed event with the worker's id so downstream
//! consumers can tell the streams apart.

use crate::observer::{Event, Level, Observer};
use std::time::Duration;

/// An owned counterpart of [`Event`], safe to move across threads.
#[derive(Clone, Debug, PartialEq)]
pub enum OwnedEvent {
    /// See [`Event::PhaseStarted`].
    PhaseStarted {
        /// The phase name.
        phase: String,
    },
    /// See [`Event::PhaseFinished`].
    PhaseFinished {
        /// The phase name.
        phase: String,
        /// Wall-clock duration of the phase.
        wall: Duration,
    },
    /// See [`Event::CounterAdd`].
    CounterAdd {
        /// Dotted counter name.
        name: String,
        /// Amount added.
        delta: u64,
    },
    /// See [`Event::GaugeSet`].
    GaugeSet {
        /// Dotted gauge name.
        name: String,
        /// The new value.
        value: f64,
    },
    /// See [`Event::Progress`].
    Progress {
        /// The phase reporting progress.
        phase: String,
        /// Work completed so far, in `unit`s.
        done: u64,
        /// What `done` counts.
        unit: String,
        /// Optional preformatted detail.
        detail: Option<String>,
    },
    /// See [`Event::Message`].
    Message {
        /// Severity.
        level: Level,
        /// The text.
        text: String,
    },
}

impl OwnedEvent {
    /// Copies a borrowed event into its owned form.
    ///
    /// Discrete solver events ([`Event::Decision`], [`Event::Conflict`],
    /// …) are not buffered: workers in the checking subsystem never emit
    /// them, and buffering one per conflict would defeat the
    /// allocation-free design of the hot path. Returns `None` for those.
    pub fn from_event(event: &Event<'_>) -> Option<OwnedEvent> {
        Some(match event {
            Event::PhaseStarted { phase } => OwnedEvent::PhaseStarted {
                phase: (*phase).to_string(),
            },
            Event::PhaseFinished { phase, wall } => OwnedEvent::PhaseFinished {
                phase: (*phase).to_string(),
                wall: *wall,
            },
            Event::CounterAdd { name, delta } => OwnedEvent::CounterAdd {
                name: (*name).to_string(),
                delta: *delta,
            },
            Event::GaugeSet { name, value } => OwnedEvent::GaugeSet {
                name: (*name).to_string(),
                value: *value,
            },
            Event::Progress {
                phase,
                done,
                unit,
                detail,
            } => OwnedEvent::Progress {
                phase: (*phase).to_string(),
                done: *done,
                unit: (*unit).to_string(),
                detail: detail.map(str::to_string),
            },
            Event::Message { level, text } => OwnedEvent::Message {
                level: *level,
                text: (*text).to_string(),
            },
            _ => return None,
        })
    }
}

/// A `Send` observer that records owned copies of the events it sees,
/// for later replay on another thread.
///
/// # Examples
///
/// ```
/// use rescheck_obs::{Event, EventBuffer, MetricsSink, Observer};
///
/// // A worker thread records into its own buffer…
/// let mut buffer = EventBuffer::new();
/// buffer.observe(&Event::GaugeSet { name: "check.resolutions", value: 42.0 });
///
/// // …and the coordinator replays it, tagged with the worker id.
/// let mut sink = MetricsSink::new();
/// buffer.replay_tagged("bf", &mut sink);
/// assert_eq!(sink.registry().gauge("bf:check.resolutions"), Some(42.0));
/// ```
#[derive(Clone, Debug, Default)]
pub struct EventBuffer {
    events: Vec<OwnedEvent>,
}

impl EventBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        EventBuffer::default()
    }

    /// The recorded events, in emission order.
    pub fn events(&self) -> &[OwnedEvent] {
        &self.events
    }

    /// Returns `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Replays every buffered event into `obs` unchanged.
    pub fn replay(&self, obs: &mut dyn Observer) {
        self.replay_inner(None, obs);
    }

    /// Replays every buffered event into `obs`, prefixing phase, counter
    /// and gauge names with `"{tag}:"` so events from different workers
    /// stay distinguishable.
    pub fn replay_tagged(&self, tag: &str, obs: &mut dyn Observer) {
        self.replay_inner(Some(tag), obs);
    }

    fn replay_inner(&self, tag: Option<&str>, obs: &mut dyn Observer) {
        let tagged = |name: &str| match tag {
            Some(t) => format!("{t}:{name}"),
            None => name.to_string(),
        };
        for event in &self.events {
            match event {
                OwnedEvent::PhaseStarted { phase } => {
                    obs.observe(&Event::PhaseStarted {
                        phase: &tagged(phase),
                    });
                }
                OwnedEvent::PhaseFinished { phase, wall } => {
                    obs.observe(&Event::PhaseFinished {
                        phase: &tagged(phase),
                        wall: *wall,
                    });
                }
                OwnedEvent::CounterAdd { name, delta } => {
                    obs.observe(&Event::CounterAdd {
                        name: &tagged(name),
                        delta: *delta,
                    });
                }
                OwnedEvent::GaugeSet { name, value } => {
                    obs.observe(&Event::GaugeSet {
                        name: &tagged(name),
                        value: *value,
                    });
                }
                OwnedEvent::Progress {
                    phase,
                    done,
                    unit,
                    detail,
                } => {
                    obs.observe(&Event::Progress {
                        phase: &tagged(phase),
                        done: *done,
                        unit,
                        detail: detail.as_deref(),
                    });
                }
                OwnedEvent::Message { level, text } => {
                    obs.observe(&Event::Message {
                        level: *level,
                        text,
                    });
                }
            }
        }
    }
}

impl Observer for EventBuffer {
    fn observe(&mut self, event: &Event<'_>) {
        if let Some(owned) = OwnedEvent::from_event(event) {
            self.events.push(owned);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsSink;

    #[test]
    fn buffers_and_replays_everything_replayable() {
        let mut buf = EventBuffer::new();
        buf.observe(&Event::PhaseStarted { phase: "p" });
        buf.observe(&Event::PhaseFinished {
            phase: "p",
            wall: Duration::from_millis(5),
        });
        buf.observe(&Event::CounterAdd {
            name: "c",
            delta: 3,
        });
        buf.observe(&Event::GaugeSet {
            name: "g",
            value: 2.0,
        });
        buf.observe(&Event::Progress {
            phase: "p",
            done: 10,
            unit: "clauses",
            detail: Some("d"),
        });
        buf.observe(&Event::Message {
            level: Level::Info,
            text: "hi",
        });
        // Discrete solver events are intentionally dropped.
        buf.observe(&Event::Decision { number: 1 });
        assert_eq!(buf.events().len(), 6);
        assert!(!buf.is_empty());

        let mut sink = MetricsSink::new();
        buf.replay(&mut sink);
        assert_eq!(sink.registry().counter("c"), Some(3));
        assert_eq!(sink.registry().gauge("g"), Some(2.0));
        assert!(sink.registry().phase_seconds("p").is_some());
    }

    #[test]
    fn tagging_prefixes_names() {
        let mut buf = EventBuffer::new();
        buf.observe(&Event::CounterAdd {
            name: "c",
            delta: 1,
        });
        buf.observe(&Event::PhaseFinished {
            phase: "check:pass1",
            wall: Duration::from_millis(1),
        });
        let mut sink = MetricsSink::new();
        buf.replay_tagged("w0", &mut sink);
        assert_eq!(sink.registry().counter("w0:c"), Some(1));
        assert!(sink.registry().phase_seconds("w0:check:pass1").is_some());
        assert_eq!(sink.registry().counter("c"), None);
    }

    #[test]
    fn buffer_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<EventBuffer>();
        assert_send::<OwnedEvent>();
    }
}
