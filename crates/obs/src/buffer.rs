//! Cross-thread event buffering for parallel components.
//!
//! [`Event`] borrows its string fields, so it cannot be sent between
//! threads or stored beyond the `observe` call. Parallel code (the
//! checking portfolio, the sharded breadth-first passes) instead gives
//! each worker its own [`EventBuffer`] — an owned, `Send` recording of
//! everything the worker emitted — and replays the buffers into the real
//! observer on the coordinating thread once the workers are joined,
//! tagging every replayed event with the worker's id so downstream
//! consumers can tell the streams apart.

use crate::observer::{Event, Level, Observer};
use std::time::Duration;

/// An owned counterpart of [`Event`], safe to move across threads.
#[derive(Clone, Debug, PartialEq)]
pub enum OwnedEvent {
    /// See [`Event::PhaseStarted`].
    PhaseStarted {
        /// The phase name.
        phase: String,
    },
    /// See [`Event::PhaseFinished`].
    PhaseFinished {
        /// The phase name.
        phase: String,
        /// Wall-clock duration of the phase.
        wall: Duration,
    },
    /// See [`Event::SpanStarted`].
    SpanStarted {
        /// Process-unique span id.
        id: u64,
        /// Parent span id, if nested.
        parent: Option<u64>,
        /// The span name.
        name: String,
    },
    /// See [`Event::SpanFinished`].
    SpanFinished {
        /// The span's id.
        id: u64,
        /// The span name.
        name: String,
        /// Wall-clock duration of the span.
        wall: Duration,
    },
    /// See [`Event::CounterAdd`].
    CounterAdd {
        /// Dotted counter name.
        name: String,
        /// Amount added.
        delta: u64,
    },
    /// See [`Event::GaugeSet`].
    GaugeSet {
        /// Dotted gauge name.
        name: String,
        /// The new value.
        value: f64,
    },
    /// See [`Event::HistRecord`].
    HistRecord {
        /// Dotted histogram name.
        name: String,
        /// The sample.
        value: u64,
    },
    /// See [`Event::Progress`].
    Progress {
        /// The phase reporting progress.
        phase: String,
        /// Work completed so far, in `unit`s.
        done: u64,
        /// What `done` counts.
        unit: String,
        /// Optional preformatted detail.
        detail: Option<String>,
    },
    /// See [`Event::Decision`]. Captured only by
    /// [`from_event_full`](OwnedEvent::from_event_full).
    Decision {
        /// 1-based decision number.
        number: u64,
    },
    /// See [`Event::Conflict`]. Captured only by `from_event_full`.
    Conflict {
        /// 1-based conflict number.
        number: u64,
        /// Decision level at which the conflict occurred.
        decision_level: u32,
    },
    /// See [`Event::Restart`]. Captured only by `from_event_full`.
    Restart {
        /// 1-based restart number.
        number: u64,
        /// Conflicts since the previous restart.
        conflicts_since: u64,
    },
    /// See [`Event::ClauseLearned`]. Captured only by `from_event_full`.
    ClauseLearned {
        /// The clause's trace ID.
        id: u64,
        /// Number of literals in the learned clause.
        literals: u64,
    },
    /// See [`Event::DbReduced`]. Captured only by `from_event_full`.
    DbReduced {
        /// Learned clauses kept.
        kept: u64,
        /// Learned clauses deleted.
        deleted: u64,
    },
    /// See [`Event::Message`].
    Message {
        /// Severity.
        level: Level,
        /// The text.
        text: String,
    },
}

impl OwnedEvent {
    /// Copies a borrowed event into its owned form.
    ///
    /// Discrete solver events ([`Event::Decision`], [`Event::Conflict`],
    /// …) are not buffered: workers in the checking subsystem never emit
    /// them, and buffering one per conflict would defeat the
    /// allocation-free design of the hot path. Returns `None` for those.
    /// The flight recorder, which *wants* per-decision granularity, uses
    /// [`from_event_full`](Self::from_event_full) instead.
    pub fn from_event(event: &Event<'_>) -> Option<OwnedEvent> {
        Some(match event {
            Event::PhaseStarted { phase } => OwnedEvent::PhaseStarted {
                phase: (*phase).to_string(),
            },
            Event::PhaseFinished { phase, wall } => OwnedEvent::PhaseFinished {
                phase: (*phase).to_string(),
                wall: *wall,
            },
            Event::SpanStarted { id, parent, name } => OwnedEvent::SpanStarted {
                id: *id,
                parent: *parent,
                name: (*name).to_string(),
            },
            Event::SpanFinished { id, name, wall } => OwnedEvent::SpanFinished {
                id: *id,
                name: (*name).to_string(),
                wall: *wall,
            },
            Event::CounterAdd { name, delta } => OwnedEvent::CounterAdd {
                name: (*name).to_string(),
                delta: *delta,
            },
            Event::GaugeSet { name, value } => OwnedEvent::GaugeSet {
                name: (*name).to_string(),
                value: *value,
            },
            Event::HistRecord { name, value } => OwnedEvent::HistRecord {
                name: (*name).to_string(),
                value: *value,
            },
            Event::Progress {
                phase,
                done,
                unit,
                detail,
            } => OwnedEvent::Progress {
                phase: (*phase).to_string(),
                done: *done,
                unit: (*unit).to_string(),
                detail: detail.map(str::to_string),
            },
            Event::Message { level, text } => OwnedEvent::Message {
                level: *level,
                text: (*text).to_string(),
            },
            _ => return None,
        })
    }

    /// Copies *any* borrowed event into its owned form, including the
    /// discrete solver events [`from_event`](Self::from_event) drops.
    /// This is the flight recorder's capture path.
    pub fn from_event_full(event: &Event<'_>) -> OwnedEvent {
        if let Some(owned) = Self::from_event(event) {
            return owned;
        }
        match event {
            Event::Decision { number } => OwnedEvent::Decision { number: *number },
            Event::Conflict {
                number,
                decision_level,
            } => OwnedEvent::Conflict {
                number: *number,
                decision_level: *decision_level,
            },
            Event::Restart {
                number,
                conflicts_since,
            } => OwnedEvent::Restart {
                number: *number,
                conflicts_since: *conflicts_since,
            },
            Event::ClauseLearned { id, literals } => OwnedEvent::ClauseLearned {
                id: *id,
                literals: *literals,
            },
            Event::DbReduced { kept, deleted } => OwnedEvent::DbReduced {
                kept: *kept,
                deleted: *deleted,
            },
            _ => unreachable!("from_event covers every replayable variant"),
        }
    }
}

/// How replayed names are rewritten.
enum Naming<'t> {
    /// Names pass through unchanged.
    Plain,
    /// `"{tag}:{name}"`.
    Tagged(&'t str),
    /// `"{prefix}{name}"` — the caller supplies its own separator.
    Prefixed(&'t str),
}

impl Naming<'_> {
    fn apply(&self, name: &str) -> String {
        match self {
            Naming::Plain => name.to_string(),
            Naming::Tagged(tag) => format!("{tag}:{name}"),
            Naming::Prefixed(prefix) => format!("{prefix}{name}"),
        }
    }
}

/// A `Send` observer that records owned copies of the events it sees,
/// for later replay on another thread.
///
/// # Examples
///
/// ```
/// use rescheck_obs::{Event, EventBuffer, MetricsSink, Observer};
///
/// // A worker thread records into its own buffer…
/// let mut buffer = EventBuffer::new();
/// buffer.observe(&Event::GaugeSet { name: "check.resolutions", value: 42.0 });
///
/// // …and the coordinator replays it, tagged with the worker id.
/// let mut sink = MetricsSink::new();
/// buffer.replay_tagged("bf", &mut sink);
/// assert_eq!(sink.registry().gauge("bf:check.resolutions"), Some(42.0));
/// ```
#[derive(Clone, Debug, Default)]
pub struct EventBuffer {
    events: Vec<OwnedEvent>,
}

impl EventBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        EventBuffer::default()
    }

    /// The recorded events, in emission order.
    pub fn events(&self) -> &[OwnedEvent] {
        &self.events
    }

    /// Returns `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Replays every buffered event into `obs` unchanged.
    pub fn replay(&self, obs: &mut dyn Observer) {
        self.replay_inner(&Naming::Plain, obs);
    }

    /// Replays every buffered event into `obs`, prefixing phase,
    /// counter, gauge, histogram and span names with `"{tag}:"` so
    /// events from different workers stay distinguishable.
    pub fn replay_tagged(&self, tag: &str, obs: &mut dyn Observer) {
        self.replay_inner(&Naming::Tagged(tag), obs);
    }

    /// Replays with a literal name prefix (the caller includes its own
    /// separator): `replay_prefixed("check.worker.0.", obs)` turns a
    /// buffered `pass1.events` into `check.worker.0.pass1.events` —
    /// the dotted per-worker attribution namespace.
    pub fn replay_prefixed(&self, prefix: &str, obs: &mut dyn Observer) {
        self.replay_inner(&Naming::Prefixed(prefix), obs);
    }

    fn replay_inner(&self, naming: &Naming<'_>, obs: &mut dyn Observer) {
        for event in &self.events {
            match event {
                OwnedEvent::PhaseStarted { phase } => {
                    obs.observe(&Event::PhaseStarted {
                        phase: &naming.apply(phase),
                    });
                }
                OwnedEvent::PhaseFinished { phase, wall } => {
                    obs.observe(&Event::PhaseFinished {
                        phase: &naming.apply(phase),
                        wall: *wall,
                    });
                }
                OwnedEvent::SpanStarted { id, parent, name } => {
                    obs.observe(&Event::SpanStarted {
                        id: *id,
                        parent: *parent,
                        name: &naming.apply(name),
                    });
                }
                OwnedEvent::SpanFinished { id, name, wall } => {
                    obs.observe(&Event::SpanFinished {
                        id: *id,
                        name: &naming.apply(name),
                        wall: *wall,
                    });
                }
                OwnedEvent::CounterAdd { name, delta } => {
                    obs.observe(&Event::CounterAdd {
                        name: &naming.apply(name),
                        delta: *delta,
                    });
                }
                OwnedEvent::GaugeSet { name, value } => {
                    obs.observe(&Event::GaugeSet {
                        name: &naming.apply(name),
                        value: *value,
                    });
                }
                OwnedEvent::HistRecord { name, value } => {
                    obs.observe(&Event::HistRecord {
                        name: &naming.apply(name),
                        value: *value,
                    });
                }
                OwnedEvent::Progress {
                    phase,
                    done,
                    unit,
                    detail,
                } => {
                    obs.observe(&Event::Progress {
                        phase: &naming.apply(phase),
                        done: *done,
                        unit,
                        detail: detail.as_deref(),
                    });
                }
                OwnedEvent::Decision { number } => {
                    obs.observe(&Event::Decision { number: *number });
                }
                OwnedEvent::Conflict {
                    number,
                    decision_level,
                } => {
                    obs.observe(&Event::Conflict {
                        number: *number,
                        decision_level: *decision_level,
                    });
                }
                OwnedEvent::Restart {
                    number,
                    conflicts_since,
                } => {
                    obs.observe(&Event::Restart {
                        number: *number,
                        conflicts_since: *conflicts_since,
                    });
                }
                OwnedEvent::ClauseLearned { id, literals } => {
                    obs.observe(&Event::ClauseLearned {
                        id: *id,
                        literals: *literals,
                    });
                }
                OwnedEvent::DbReduced { kept, deleted } => {
                    obs.observe(&Event::DbReduced {
                        kept: *kept,
                        deleted: *deleted,
                    });
                }
                OwnedEvent::Message { level, text } => {
                    obs.observe(&Event::Message {
                        level: *level,
                        text,
                    });
                }
            }
        }
    }
}

impl Observer for EventBuffer {
    fn observe(&mut self, event: &Event<'_>) {
        if let Some(owned) = OwnedEvent::from_event(event) {
            self.events.push(owned);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsSink;

    #[test]
    fn buffers_and_replays_everything_replayable() {
        let mut buf = EventBuffer::new();
        buf.observe(&Event::PhaseStarted { phase: "p" });
        buf.observe(&Event::PhaseFinished {
            phase: "p",
            wall: Duration::from_millis(5),
        });
        buf.observe(&Event::CounterAdd {
            name: "c",
            delta: 3,
        });
        buf.observe(&Event::GaugeSet {
            name: "g",
            value: 2.0,
        });
        buf.observe(&Event::HistRecord {
            name: "h",
            value: 12,
        });
        buf.observe(&Event::SpanStarted {
            id: 91,
            parent: None,
            name: "s",
        });
        buf.observe(&Event::SpanFinished {
            id: 91,
            name: "s",
            wall: Duration::from_millis(1),
        });
        buf.observe(&Event::Progress {
            phase: "p",
            done: 10,
            unit: "clauses",
            detail: Some("d"),
        });
        buf.observe(&Event::Message {
            level: Level::Info,
            text: "hi",
        });
        // Discrete solver events are intentionally dropped.
        buf.observe(&Event::Decision { number: 1 });
        assert_eq!(buf.events().len(), 9);
        assert!(!buf.is_empty());

        let mut sink = MetricsSink::new();
        buf.replay(&mut sink);
        assert_eq!(sink.registry().counter("c"), Some(3));
        assert_eq!(sink.registry().gauge("g"), Some(2.0));
        assert_eq!(sink.registry().histogram("h").map(|h| h.count()), Some(1));
        assert_eq!(sink.registry().spans().len(), 1);
        assert!(sink.registry().phase_seconds("p").is_some());
    }

    #[test]
    fn from_event_full_captures_discrete_solver_events() {
        let owned = OwnedEvent::from_event_full(&Event::Conflict {
            number: 3,
            decision_level: 2,
        });
        assert_eq!(
            owned,
            OwnedEvent::Conflict {
                number: 3,
                decision_level: 2
            }
        );
        assert_eq!(
            OwnedEvent::from_event_full(&Event::Decision { number: 1 }),
            OwnedEvent::Decision { number: 1 }
        );
        // …and still agrees with from_event on replayable kinds.
        assert_eq!(
            OwnedEvent::from_event_full(&Event::CounterAdd {
                name: "c",
                delta: 1
            }),
            OwnedEvent::CounterAdd {
                name: "c".to_string(),
                delta: 1
            }
        );
    }

    #[test]
    fn tagging_prefixes_names() {
        let mut buf = EventBuffer::new();
        buf.observe(&Event::CounterAdd {
            name: "c",
            delta: 1,
        });
        buf.observe(&Event::PhaseFinished {
            phase: "check:pass1",
            wall: Duration::from_millis(1),
        });
        let mut sink = MetricsSink::new();
        buf.replay_tagged("w0", &mut sink);
        assert_eq!(sink.registry().counter("w0:c"), Some(1));
        assert!(sink.registry().phase_seconds("w0:check:pass1").is_some());
        assert_eq!(sink.registry().counter("c"), None);
    }

    #[test]
    fn prefixing_uses_caller_separator() {
        let mut buf = EventBuffer::new();
        buf.observe(&Event::GaugeSet {
            name: "pass1.events",
            value: 5.0,
        });
        buf.observe(&Event::HistRecord {
            name: "pass1.batch_events",
            value: 256,
        });
        let mut sink = MetricsSink::new();
        buf.replay_prefixed("check.worker.0.", &mut sink);
        assert_eq!(
            sink.registry().gauge("check.worker.0.pass1.events"),
            Some(5.0)
        );
        assert_eq!(
            sink.registry()
                .histogram("check.worker.0.pass1.batch_events")
                .map(|h| h.count()),
            Some(1)
        );
    }

    #[test]
    fn buffer_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<EventBuffer>();
        assert_send::<OwnedEvent>();
    }
}
