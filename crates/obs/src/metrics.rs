//! Labeled counters, gauges and phase timers.

use crate::json::Json;
use std::collections::BTreeMap;
use std::time::Duration;

/// A registry of monotonic counters, gauges and phase timings.
///
/// Names are dotted paths (`"solver.conflicts"`, `"check.resolutions"`);
/// the JSON form groups them under `counters`, `gauges` and `phases`.
/// Phase durations accumulate: timing the same phase twice sums the
/// wall-clock, which is what iterated flows (core minimization) want.
///
/// # Examples
///
/// ```
/// use rescheck_obs::Registry;
/// use std::time::Duration;
///
/// let mut reg = Registry::new();
/// reg.inc("solver.conflicts", 10);
/// reg.inc("solver.conflicts", 5);
/// reg.set_gauge("check.peak_memory_bytes", 4096.0);
/// reg.record_phase("solve", Duration::from_millis(250));
/// assert_eq!(reg.counter("solver.conflicts"), Some(15));
/// assert!(reg.to_json().path("phases.solve").is_some());
/// ```
#[derive(Clone, Debug, Default)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    phases: Vec<(String, Duration)>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Adds to a monotonic counter, creating it at zero first.
    pub fn inc(&mut self, name: &str, delta: u64) {
        if let Some(slot) = self.counters.get_mut(name) {
            *slot = slot.saturating_add(delta);
        } else {
            self.counters.insert(name.to_string(), delta);
        }
    }

    /// Sets a gauge to an absolute value.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Records one timing of a phase; repeats accumulate.
    pub fn record_phase(&mut self, name: &str, wall: Duration) {
        if let Some((_, total)) = self.phases.iter_mut().find(|(n, _)| n == name) {
            *total += wall;
        } else {
            self.phases.push((name.to_string(), wall));
        }
    }

    /// Reads a counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Reads a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Total recorded wall-clock of a phase, in seconds.
    pub fn phase_seconds(&self, name: &str) -> Option<f64> {
        self.phases
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, d)| d.as_secs_f64())
    }

    /// Phase names in first-recorded order.
    pub fn phase_names(&self) -> Vec<&str> {
        self.phases.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.phases.is_empty()
    }

    /// Merges another registry into this one (counters add, gauges take
    /// the other's value, phases accumulate).
    pub fn merge(&mut self, other: &Registry) {
        for (name, value) in &other.counters {
            self.inc(name, *value);
        }
        for (name, value) in &other.gauges {
            self.set_gauge(name, *value);
        }
        for (name, wall) in &other.phases {
            self.record_phase(name, *wall);
        }
    }

    /// The registry as a JSON object:
    /// `{"phases": {name: seconds…}, "counters": {…}, "gauges": {…}}`.
    pub fn to_json(&self) -> Json {
        let mut phases = Json::object();
        for (name, wall) in &self.phases {
            phases.set(name, wall.as_secs_f64());
        }
        let mut counters = Json::object();
        for (name, value) in &self.counters {
            counters.set(name, *value);
        }
        let mut gauges = Json::object();
        for (name, value) in &self.gauges {
            gauges.set(name, *value);
        }
        let mut root = Json::object();
        root.set("phases", phases)
            .set("counters", counters)
            .set("gauges", gauges);
        root
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_saturate() {
        let mut reg = Registry::new();
        reg.inc("a", u64::MAX - 1);
        reg.inc("a", 10);
        assert_eq!(reg.counter("a"), Some(u64::MAX));
        assert_eq!(reg.counter("missing"), None);
    }

    #[test]
    fn gauges_overwrite() {
        let mut reg = Registry::new();
        reg.set_gauge("g", 1.0);
        reg.set_gauge("g", 2.5);
        assert_eq!(reg.gauge("g"), Some(2.5));
    }

    #[test]
    fn phases_accumulate_in_order() {
        let mut reg = Registry::new();
        reg.record_phase("parse", Duration::from_millis(10));
        reg.record_phase("solve", Duration::from_millis(100));
        reg.record_phase("parse", Duration::from_millis(5));
        assert_eq!(reg.phase_names(), vec!["parse", "solve"]);
        assert!((reg.phase_seconds("parse").unwrap() - 0.015).abs() < 1e-9);
    }

    #[test]
    fn merge_combines_everything() {
        let mut a = Registry::new();
        a.inc("c", 1);
        a.record_phase("p", Duration::from_secs(1));
        let mut b = Registry::new();
        b.inc("c", 2);
        b.set_gauge("g", 7.0);
        b.record_phase("p", Duration::from_secs(2));
        a.merge(&b);
        assert_eq!(a.counter("c"), Some(3));
        assert_eq!(a.gauge("g"), Some(7.0));
        assert_eq!(a.phase_seconds("p"), Some(3.0));
    }

    #[test]
    fn json_shape_is_stable() {
        let mut reg = Registry::new();
        reg.inc("solver.conflicts", 3);
        reg.set_gauge("check.peak_memory_bytes", 64.0);
        reg.record_phase("solve", Duration::from_millis(1));
        let json = reg.to_json();
        assert_eq!(json.keys(), vec!["phases", "counters", "gauges"]);
        assert_eq!(
            json.path("counters.solver.conflicts"),
            None, // dotted names are single keys, not nesting
        );
        assert_eq!(
            json.get("counters")
                .unwrap()
                .get("solver.conflicts")
                .unwrap()
                .as_u64(),
            Some(3)
        );
        assert!(reg
            .to_json()
            .to_pretty_string()
            .contains("peak_memory_bytes"));
    }

    #[test]
    fn empty_registry_reports_empty() {
        let reg = Registry::new();
        assert!(reg.is_empty());
        assert_eq!(
            reg.to_json().to_string(),
            r#"{"phases":{},"counters":{},"gauges":{}}"#
        );
    }
}
