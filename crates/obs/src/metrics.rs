//! Labeled counters, gauges, phase timers, histograms and span trees.

use crate::histogram::Histogram;
use crate::json::Json;
use std::collections::BTreeMap;
use std::time::Duration;

/// One recorded span: identity, parentage, and wall-clock once finished.
///
/// Spans whose finish never arrived (error paths) keep `wall: None` and
/// serialize with a zero wall-clock.
#[derive(Clone, Debug)]
pub struct SpanRec {
    /// Process-unique span id.
    pub id: u64,
    /// Parent span id, if the span was nested.
    pub parent: Option<u64>,
    /// The span name.
    pub name: String,
    /// Wall-clock duration, once finished.
    pub wall: Option<Duration>,
}

/// A registry of monotonic counters, gauges, phase timings, log-bucketed
/// histograms and hierarchical span records.
///
/// Names are dotted paths (`"solver.conflicts"`, `"check.resolutions"`);
/// the JSON form groups them under `counters`, `gauges`, `phases`,
/// `histograms` and `spans`. Phase durations accumulate: timing the same
/// phase twice sums the wall-clock, which is what iterated flows (core
/// minimization) want.
///
/// # Examples
///
/// ```
/// use rescheck_obs::Registry;
/// use std::time::Duration;
///
/// let mut reg = Registry::new();
/// reg.inc("solver.conflicts", 10);
/// reg.inc("solver.conflicts", 5);
/// reg.set_gauge("check.peak_memory_bytes", 4096.0);
/// reg.record_phase("solve", Duration::from_millis(250));
/// reg.record_hist("check.resolve.chain_len", 12);
/// assert_eq!(reg.counter("solver.conflicts"), Some(15));
/// assert!(reg.to_json().path("phases.solve").is_some());
/// assert_eq!(reg.histogram("check.resolve.chain_len").unwrap().count(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    phases: Vec<(String, Duration)>,
    hists: BTreeMap<String, Histogram>,
    spans: Vec<SpanRec>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Adds to a monotonic counter, creating it at zero first.
    pub fn inc(&mut self, name: &str, delta: u64) {
        if let Some(slot) = self.counters.get_mut(name) {
            *slot = slot.saturating_add(delta);
        } else {
            self.counters.insert(name.to_string(), delta);
        }
    }

    /// Sets a gauge to an absolute value.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Records one timing of a phase; repeats accumulate.
    pub fn record_phase(&mut self, name: &str, wall: Duration) {
        if let Some((_, total)) = self.phases.iter_mut().find(|(n, _)| n == name) {
            *total += wall;
        } else {
            self.phases.push((name.to_string(), wall));
        }
    }

    /// Records one sample into a named histogram, creating it on first
    /// use. The sample path allocates only on that first use.
    pub fn record_hist(&mut self, name: &str, value: u64) {
        if let Some(h) = self.hists.get_mut(name) {
            h.record(value);
        } else {
            let mut h = Histogram::new();
            h.record(value);
            self.hists.insert(name.to_string(), h);
        }
    }

    /// Registers the opening of a span.
    pub fn record_span_start(&mut self, id: u64, parent: Option<u64>, name: &str) {
        self.spans.push(SpanRec {
            id,
            parent,
            name: name.to_string(),
            wall: None,
        });
    }

    /// Registers the close of a span. A finish with no matching start
    /// (a filtered replay) registers the span as a root.
    pub fn record_span_finish(&mut self, id: u64, name: &str, wall: Duration) {
        match self
            .spans
            .iter_mut()
            .rev()
            .find(|r| r.id == id && r.wall.is_none())
        {
            Some(rec) => rec.wall = Some(wall),
            None => self.spans.push(SpanRec {
                id,
                parent: None,
                name: name.to_string(),
                wall: Some(wall),
            }),
        }
    }

    /// Reads a counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Reads a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Reads a histogram.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.hists.get(name)
    }

    /// Histogram names and contents, in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.hists.iter().map(|(n, h)| (n.as_str(), h))
    }

    /// All recorded spans, in start order.
    pub fn spans(&self) -> &[SpanRec] {
        &self.spans
    }

    /// Total recorded wall-clock of a phase, in seconds.
    pub fn phase_seconds(&self, name: &str) -> Option<f64> {
        self.phases
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, d)| d.as_secs_f64())
    }

    /// Phase names in first-recorded order.
    pub fn phase_names(&self) -> Vec<&str> {
        self.phases.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.phases.is_empty()
            && self.hists.is_empty()
            && self.spans.is_empty()
    }

    /// Merges another registry into this one (counters add, gauges take
    /// the other's value, phases accumulate, histograms merge
    /// bucket-wise, spans append — ids are process-unique, so trees
    /// from worker registries coexist).
    pub fn merge(&mut self, other: &Registry) {
        for (name, value) in &other.counters {
            self.inc(name, *value);
        }
        for (name, value) in &other.gauges {
            self.set_gauge(name, *value);
        }
        for (name, wall) in &other.phases {
            self.record_phase(name, *wall);
        }
        for (name, hist) in &other.hists {
            if let Some(mine) = self.hists.get_mut(name) {
                mine.merge(hist);
            } else {
                self.hists.insert(name.clone(), hist.clone());
            }
        }
        self.spans.extend(other.spans.iter().cloned());
    }

    /// The registry as a JSON object:
    /// `{"phases": {name: seconds…}, "counters": {…}, "gauges": {…},
    /// "histograms": {…}, "spans": [tree…]}`.
    ///
    /// `spans` nests children under their parents; each node carries
    /// `wall_seconds` and `self_seconds` (wall minus finished children,
    /// clamped at zero). Unfinished spans serialize with a zero wall.
    pub fn to_json(&self) -> Json {
        let mut phases = Json::object();
        for (name, wall) in &self.phases {
            phases.set(name, wall.as_secs_f64());
        }
        let mut counters = Json::object();
        for (name, value) in &self.counters {
            counters.set(name, *value);
        }
        let mut gauges = Json::object();
        for (name, value) in &self.gauges {
            gauges.set(name, *value);
        }
        let mut hists = Json::object();
        for (name, hist) in &self.hists {
            hists.set(name, hist.to_json());
        }
        let mut root = Json::object();
        root.set("phases", phases)
            .set("counters", counters)
            .set("gauges", gauges)
            .set("histograms", hists)
            .set("spans", self.spans_json());
        root
    }

    fn spans_json(&self) -> Json {
        let index_of: BTreeMap<u64, usize> = self
            .spans
            .iter()
            .enumerate()
            .map(|(i, r)| (r.id, i))
            .collect();
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); self.spans.len()];
        let mut roots: Vec<usize> = Vec::new();
        for (i, rec) in self.spans.iter().enumerate() {
            match rec.parent.and_then(|p| index_of.get(&p)) {
                Some(&pi) if pi != i => children[pi].push(i),
                _ => roots.push(i),
            }
        }
        Json::Array(
            roots
                .iter()
                .map(|&i| self.span_node(i, &children))
                .collect(),
        )
    }

    fn span_node(&self, i: usize, children: &[Vec<usize>]) -> Json {
        let rec = &self.spans[i];
        let wall = rec.wall.map_or(0.0, |d| d.as_secs_f64());
        let mut kids = Vec::with_capacity(children[i].len());
        let mut child_total = 0.0;
        for &c in &children[i] {
            child_total += self.spans[c].wall.map_or(0.0, |d| d.as_secs_f64());
            kids.push(self.span_node(c, children));
        }
        let mut node = Json::object();
        node.set("name", rec.name.as_str())
            .set("wall_seconds", wall)
            .set("self_seconds", (wall - child_total).max(0.0))
            .set("children", Json::Array(kids));
        node
    }

    /// Reads a registry back from its [`to_json`](Self::to_json) form.
    ///
    /// Accepts both the v1 shape (`phases`/`counters`/`gauges` only) and
    /// the v2 shape with `histograms` and `spans`. Span ids are
    /// reallocated on read (they are process-local), and spans that were
    /// serialized unfinished come back as finished with a zero wall.
    /// Returns `None` on a malformed document.
    pub fn from_json(json: &Json) -> Option<Registry> {
        let mut reg = Registry::new();
        let Json::Object(phases) = json.get("phases")? else {
            return None;
        };
        for (name, value) in phases {
            let secs = value.as_f64()?;
            if !secs.is_finite() || secs < 0.0 {
                return None;
            }
            reg.record_phase(name, Duration::from_secs_f64(secs));
        }
        let Json::Object(counters) = json.get("counters")? else {
            return None;
        };
        for (name, value) in counters {
            reg.inc(name, value.as_u64()?);
        }
        let Json::Object(gauges) = json.get("gauges")? else {
            return None;
        };
        for (name, value) in gauges {
            reg.set_gauge(name, value.as_f64()?);
        }
        if let Some(hists) = json.get("histograms") {
            let Json::Object(hists) = hists else {
                return None;
            };
            for (name, value) in hists {
                reg.hists.insert(name.clone(), Histogram::from_json(value)?);
            }
        }
        if let Some(spans) = json.get("spans") {
            let Json::Array(roots) = spans else {
                return None;
            };
            for node in roots {
                restore_span(&mut reg, node, None)?;
            }
        }
        Some(reg)
    }
}

fn restore_span(reg: &mut Registry, node: &Json, parent: Option<u64>) -> Option<()> {
    let name = node.get("name")?.as_str()?;
    let wall = node.get("wall_seconds")?.as_f64()?;
    if !wall.is_finite() || wall < 0.0 {
        return None;
    }
    let id = crate::span::alloc_span_id();
    reg.record_span_start(id, parent, name);
    reg.record_span_finish(id, name, Duration::from_secs_f64(wall));
    if let Some(Json::Array(kids)) = node.get("children") {
        for kid in kids {
            restore_span(reg, kid, Some(id))?;
        }
    }
    Some(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_saturate() {
        let mut reg = Registry::new();
        reg.inc("a", u64::MAX - 1);
        reg.inc("a", 10);
        assert_eq!(reg.counter("a"), Some(u64::MAX));
        assert_eq!(reg.counter("missing"), None);
    }

    #[test]
    fn gauges_overwrite() {
        let mut reg = Registry::new();
        reg.set_gauge("g", 1.0);
        reg.set_gauge("g", 2.5);
        assert_eq!(reg.gauge("g"), Some(2.5));
    }

    #[test]
    fn phases_accumulate_in_order() {
        let mut reg = Registry::new();
        reg.record_phase("parse", Duration::from_millis(10));
        reg.record_phase("solve", Duration::from_millis(100));
        reg.record_phase("parse", Duration::from_millis(5));
        assert_eq!(reg.phase_names(), vec!["parse", "solve"]);
        assert!((reg.phase_seconds("parse").unwrap() - 0.015).abs() < 1e-9);
    }

    #[test]
    fn histograms_record_and_merge() {
        let mut a = Registry::new();
        a.record_hist("h", 2);
        a.record_hist("h", 1000);
        let mut b = Registry::new();
        b.record_hist("h", 3);
        b.record_hist("other", 1);
        a.merge(&b);
        let h = a.histogram("h").unwrap();
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), Some(1000));
        assert_eq!(a.histogram("other").unwrap().count(), 1);
        assert_eq!(a.histograms().count(), 2);
    }

    #[test]
    fn merge_combines_everything() {
        let mut a = Registry::new();
        a.inc("c", 1);
        a.record_phase("p", Duration::from_secs(1));
        a.record_span_start(1, None, "left");
        a.record_span_finish(1, "left", Duration::from_secs(1));
        let mut b = Registry::new();
        b.inc("c", 2);
        b.set_gauge("g", 7.0);
        b.record_phase("p", Duration::from_secs(2));
        b.record_span_start(2, None, "right");
        b.record_span_finish(2, "right", Duration::from_secs(2));
        a.merge(&b);
        assert_eq!(a.counter("c"), Some(3));
        assert_eq!(a.gauge("g"), Some(7.0));
        assert_eq!(a.phase_seconds("p"), Some(3.0));
        assert_eq!(a.spans().len(), 2);
    }

    #[test]
    fn span_tree_nests_and_computes_self_time() {
        let mut reg = Registry::new();
        reg.record_span_start(10, None, "check");
        reg.record_span_start(11, Some(10), "check:pass1");
        reg.record_span_start(12, Some(10), "check:resolve");
        reg.record_span_finish(11, "check:pass1", Duration::from_secs(1));
        reg.record_span_finish(12, "check:resolve", Duration::from_secs(2));
        reg.record_span_finish(10, "check", Duration::from_secs(4));
        let json = reg.to_json();
        let Json::Array(roots) = json.get("spans").unwrap() else {
            panic!("spans must be an array");
        };
        assert_eq!(roots.len(), 1);
        let root = &roots[0];
        assert_eq!(root.get("name").unwrap().as_str(), Some("check"));
        assert_eq!(root.get("wall_seconds").unwrap().as_f64(), Some(4.0));
        assert_eq!(root.get("self_seconds").unwrap().as_f64(), Some(1.0));
        let Json::Array(kids) = root.get("children").unwrap() else {
            panic!("children must be an array");
        };
        assert_eq!(kids.len(), 2);
        assert_eq!(kids[0].get("name").unwrap().as_str(), Some("check:pass1"));
    }

    #[test]
    fn unfinished_spans_serialize_with_zero_wall() {
        let mut reg = Registry::new();
        reg.record_span_start(1, None, "abandoned");
        let json = reg.to_json();
        let Json::Array(roots) = json.get("spans").unwrap() else {
            panic!("spans must be an array");
        };
        assert_eq!(roots[0].get("wall_seconds").unwrap().as_f64(), Some(0.0));
    }

    #[test]
    fn json_shape_is_stable() {
        let mut reg = Registry::new();
        reg.inc("solver.conflicts", 3);
        reg.set_gauge("check.peak_memory_bytes", 64.0);
        reg.record_phase("solve", Duration::from_millis(1));
        let json = reg.to_json();
        assert_eq!(
            json.keys(),
            vec!["phases", "counters", "gauges", "histograms", "spans"]
        );
        assert_eq!(
            json.path("counters.solver.conflicts"),
            None, // dotted names are single keys, not nesting
        );
        assert_eq!(
            json.get("counters")
                .unwrap()
                .get("solver.conflicts")
                .unwrap()
                .as_u64(),
            Some(3)
        );
        assert!(reg
            .to_json()
            .to_pretty_string()
            .contains("peak_memory_bytes"));
    }

    #[test]
    fn empty_registry_reports_empty() {
        let reg = Registry::new();
        assert!(reg.is_empty());
        assert_eq!(
            reg.to_json().to_string(),
            r#"{"phases":{},"counters":{},"gauges":{},"histograms":{},"spans":[]}"#
        );
    }

    #[test]
    fn from_json_round_trips_v2() {
        let mut reg = Registry::new();
        reg.inc("c", 9);
        reg.set_gauge("g", 0.5);
        reg.record_phase("p", Duration::from_millis(30));
        reg.record_hist("h", 17);
        reg.record_span_start(1, None, "root");
        reg.record_span_start(2, Some(1), "child");
        reg.record_span_finish(2, "child", Duration::from_secs(1));
        reg.record_span_finish(1, "root", Duration::from_secs(2));
        let back = Registry::from_json(&reg.to_json()).expect("round trip");
        assert_eq!(back.counter("c"), Some(9));
        assert_eq!(back.gauge("g"), Some(0.5));
        assert_eq!(back.phase_seconds("p"), reg.phase_seconds("p"));
        assert_eq!(back.histogram("h").unwrap().count(), 1);
        assert_eq!(back.spans().len(), 2);
        // Shape (not ids) survives the trip.
        assert_eq!(back.to_json().get("spans"), reg.to_json().get("spans"));
    }

    #[test]
    fn from_json_accepts_v1_documents() {
        let v1 = crate::json::parse(
            r#"{"phases":{"solve":0.25},"counters":{"solver.conflicts":7},"gauges":{"g":1.5}}"#,
        )
        .unwrap();
        let reg = Registry::from_json(&v1).expect("v1 parses");
        assert_eq!(reg.counter("solver.conflicts"), Some(7));
        assert_eq!(reg.phase_seconds("solve"), Some(0.25));
        assert!(reg.histograms().next().is_none());
        assert!(reg.spans().is_empty());
    }

    #[test]
    fn from_json_rejects_malformed() {
        assert!(Registry::from_json(&Json::Null).is_none());
        let bad = crate::json::parse(r#"{"phases":{"p":"oops"},"counters":{},"gauges":{}}"#);
        assert!(Registry::from_json(&bad.unwrap()).is_none());
    }
}
