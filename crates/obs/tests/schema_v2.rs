//! End-to-end schema tests for the v2 metrics documents and flight
//! dumps: everything `obs::json` emits must re-parse to the same value,
//! and the v1 (PR 1–era) document shape must still be readable.

use rescheck_obs::{json, Event, FlightRecorder, MetricsSink, Observer, Phase, Registry, Span};

/// Drives a realistic event stream — spans, phases, histograms,
/// counters — through a `MetricsSink` and returns the registry.
fn populated_registry() -> Registry {
    let mut sink = MetricsSink::new();
    let mut root = Span::start("check", &mut sink);
    {
        let pass1 = Phase::start("check:pass1", &mut sink);
        sink.observe(&Event::CounterAdd {
            name: "check.clauses_built",
            delta: 12,
        });
        pass1.finish(&mut sink);
        let resolve = Phase::start("check:resolve", &mut sink);
        for len in [2u64, 5, 9, 40] {
            sink.observe(&Event::HistRecord {
                name: "check.resolve.chain_len",
                value: len,
            });
        }
        resolve.finish(&mut sink);
    }
    sink.observe(&Event::GaugeSet {
        name: "check.peak_memory_bytes",
        value: 8192.0,
    });
    root.stop(&mut sink);
    sink.into_registry()
}

#[test]
fn v2_document_round_trips_through_text() {
    let reg = populated_registry();
    let doc = reg.to_json();
    assert_eq!(
        doc.keys(),
        vec!["phases", "counters", "gauges", "histograms", "spans"]
    );

    // Emit → parse → compare values.
    let text = doc.to_pretty_string();
    let parsed = json::parse(&text).expect("v2 emits valid JSON");
    assert_eq!(parsed, doc);

    // Parse → Registry → emit again: same document.
    let back = Registry::from_json(&parsed).expect("v2 re-reads");
    assert_eq!(back.to_json(), doc);
    assert_eq!(back.counter("check.clauses_built"), Some(12));
    assert_eq!(
        back.histogram("check.resolve.chain_len").map(|h| h.count()),
        Some(4)
    );
}

#[test]
fn v2_span_tree_nests_phases_under_the_root() {
    let reg = populated_registry();
    let doc = reg.to_json();
    let rescheck_obs::Json::Array(roots) = doc.get("spans").unwrap() else {
        panic!("spans must be an array");
    };
    assert_eq!(roots.len(), 1);
    let root = &roots[0];
    assert_eq!(root.get("name").unwrap().as_str(), Some("check"));
    let rescheck_obs::Json::Array(children) = root.get("children").unwrap() else {
        panic!("children must be an array");
    };
    let names: Vec<&str> = children
        .iter()
        .map(|c| c.get("name").unwrap().as_str().unwrap())
        .collect();
    assert_eq!(names, vec!["check:pass1", "check:resolve"]);
    // Span finishes also feed the flat phase map (v1 compatibility).
    assert!(reg.phase_seconds("check:pass1").is_some());
    assert!(reg.phase_seconds("check").is_some());
}

#[test]
fn v1_documents_still_parse() {
    // The exact shape PR 1's `--metrics` wrote: no histograms, no spans.
    let v1_text = r#"{
  "schema": "rescheck-metrics-v1",
  "command": "check",
  "phases": {
    "parse": 0.004,
    "check:pass1": 0.125,
    "check:resolve": 1.5,
    "final-phase": 0.01
  },
  "counters": {
    "check.clauses_built": 480
  },
  "gauges": {
    "check.peak_memory_bytes": 1048576.0
  }
}
"#;
    let doc = json::parse(v1_text).expect("v1 text parses");
    assert_eq!(
        doc.get("schema").unwrap().as_str(),
        Some("rescheck-metrics-v1")
    );
    let reg = Registry::from_json(&doc).expect("v1 shape re-reads");
    assert_eq!(reg.counter("check.clauses_built"), Some(480));
    assert_eq!(reg.phase_seconds("check:resolve"), Some(1.5));
    assert_eq!(reg.gauge("check.peak_memory_bytes"), Some(1048576.0));
    assert!(reg.spans().is_empty());
    assert!(reg.histograms().next().is_none());
}

#[test]
fn flight_dump_round_trips_through_text() {
    let mut flight = FlightRecorder::with_capacity(64);
    let mut span = Span::start("check", &mut flight);
    flight.observe(&Event::Conflict {
        number: 1,
        decision_level: 2,
    });
    flight.observe(&Event::Progress {
        phase: "check:resolve",
        done: 1024,
        unit: "clauses",
        detail: Some("4 MB peak"),
    });
    flight.observe(&Event::Message {
        level: rescheck_obs::Level::Error,
        text: "INVALID proof: clause #9 unresolvable",
    });
    span.stop(&mut flight);
    let dump = flight.to_json();
    let parsed = json::parse(&dump.to_pretty_string()).expect("dump is valid JSON");
    assert_eq!(parsed, dump);
    assert_eq!(
        parsed.get("schema").unwrap().as_str(),
        Some(rescheck_obs::FLIGHT_SCHEMA)
    );
    let rescheck_obs::Json::Array(events) = parsed.get("events").unwrap() else {
        panic!("events must be an array");
    };
    assert_eq!(events.len(), 5);
    let kinds: Vec<&str> = events
        .iter()
        .map(|e| e.get("kind").unwrap().as_str().unwrap())
        .collect();
    assert_eq!(
        kinds,
        vec![
            "span-started",
            "conflict",
            "progress",
            "message",
            "span-finished"
        ]
    );
    // Ids renumber densely regardless of the live process counter.
    assert_eq!(events[0].get("id").unwrap().as_u64(), Some(1));
}

#[test]
fn merged_worker_registries_keep_per_worker_and_aggregate_views() {
    let mut coordinator = MetricsSink::new();
    for worker in 0..3u64 {
        // Each worker records into its own buffer on its own thread…
        let buffer = std::thread::spawn(move || {
            let mut buf = rescheck_obs::EventBuffer::new();
            buf.observe(&Event::HistRecord {
                name: "pass1.batch_events",
                value: 100 + worker,
            });
            buf.observe(&Event::GaugeSet {
                name: "pass1.events",
                value: worker as f64,
            });
            buf
        })
        .join()
        .unwrap();
        // …and the coordinator replays it under the worker namespace
        // plus an aggregate histogram.
        buffer.replay_prefixed(&format!("check.worker.{worker}."), &mut coordinator);
        coordinator.observe(&Event::HistRecord {
            name: "check.pass1.batch_events",
            value: 100 + worker,
        });
    }
    let reg = coordinator.registry();
    for worker in 0..3 {
        let name = format!("check.worker.{worker}.pass1.batch_events");
        assert_eq!(reg.histogram(&name).map(|h| h.count()), Some(1));
        assert_eq!(
            reg.gauge(&format!("check.worker.{worker}.pass1.events")),
            Some(worker as f64)
        );
    }
    let agg = reg.histogram("check.pass1.batch_events").unwrap();
    assert_eq!(agg.count(), 3);
    assert_eq!(agg.min(), Some(100));
    assert_eq!(agg.max(), Some(102));
}
