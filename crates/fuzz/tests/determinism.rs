//! End-to-end determinism of the fuzzer: same seed, same campaign,
//! same shrunk repro — byte for byte.

use rescheck_fuzz::{run_campaign, CampaignConfig, CampaignOutcome, InjectedBug, OracleConfig};
use rescheck_obs::NullObserver;
use std::fs;
use std::path::{Path, PathBuf};

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rescheck-fuzz-det-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn campaign(seed: u64, iterations: u64, inject: Option<InjectedBug>) -> CampaignConfig {
    CampaignConfig {
        seed,
        iterations,
        oracle: OracleConfig {
            max_vars: 14,
            inject,
            ..OracleConfig::default()
        },
        ..CampaignConfig::default()
    }
}

/// Every file under `root`, as (relative path, contents), sorted.
fn snapshot(root: &Path) -> Vec<(String, Vec<u8>)> {
    fn walk(dir: &Path, root: &Path, out: &mut Vec<(String, Vec<u8>)>) {
        let mut entries: Vec<_> = fs::read_dir(dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        entries.sort();
        for path in entries {
            if path.is_dir() {
                walk(&path, root, out);
            } else {
                let rel = path.strip_prefix(root).unwrap().display().to_string();
                out.push((rel, fs::read(&path).unwrap()));
            }
        }
    }
    let mut out = Vec::new();
    walk(root, root, &mut out);
    out
}

#[test]
fn same_seed_reproduces_the_campaign_byte_for_byte() {
    let a = run_campaign(&campaign(0xA11CE, 30, None), &mut NullObserver).unwrap();
    let b = run_campaign(&campaign(0xA11CE, 30, None), &mut NullObserver).unwrap();
    assert_eq!(a.log, b.log);
    assert_eq!(a.summary(), b.summary());
    assert_eq!(a.digest(), b.digest());
    assert!(
        a.clean(),
        "clean checker produced findings:\n{}",
        a.summary()
    );
}

#[test]
fn injected_bug_shrinks_to_identical_repro_artifacts() {
    let run = |dir: &Path| -> CampaignOutcome {
        let mut cfg = campaign(0x51CC, 300, Some(InjectedBug::RejectValid));
        cfg.artifact_dir = Some(dir.to_path_buf());
        run_campaign(&cfg, &mut NullObserver).unwrap()
    };

    let dir_a = tmp_dir("a");
    let dir_b = tmp_dir("b");
    let a = run(&dir_a);
    let b = run(&dir_b);

    assert_eq!(a.findings.len(), 1, "summary:\n{}", a.summary());
    assert_eq!(a.log, b.log);
    assert_eq!(a.digest(), b.digest());

    // The injected failure reproduces on any UNSAT instance, so ddmin
    // must have made real progress toward a minimal formula.
    let f = &a.findings[0];
    assert_eq!(f.kind, "strategy-disagreement");
    assert!(f.shrink.to <= f.shrink.from);
    assert!(f.shrink.tests > 0, "shrinker never ran");

    // And the on-disk bundles are identical byte-for-byte.
    let snap_a = snapshot(&dir_a);
    let snap_b = snapshot(&dir_b);
    assert!(!snap_a.is_empty(), "no artifacts written");
    assert_eq!(snap_a, snap_b);
    let names: Vec<&str> = snap_a
        .iter()
        .map(|(n, _)| n.rsplit('/').next().unwrap())
        .collect();
    assert!(names.contains(&"input.cnf"));
    assert!(names.contains(&"repro.json"));

    let _ = fs::remove_dir_all(&dir_a);
    let _ = fs::remove_dir_all(&dir_b);
}

#[test]
fn mutant_injection_produces_trace_level_repro() {
    let dir = tmp_dir("mut");
    let mut cfg = campaign(0x7EA5, 300, Some(InjectedBug::AcceptMutants));
    cfg.artifact_dir = Some(dir.clone());
    let outcome = run_campaign(&cfg, &mut NullObserver).unwrap();
    assert_eq!(outcome.findings.len(), 1, "summary:\n{}", outcome.summary());
    let f = &outcome.findings[0];
    assert!(f.kind.starts_with("mutant-"), "kind: {}", f.kind);
    assert_eq!(f.shrink.unit, "events");
    let case = f.case_dir.as_ref().unwrap();
    assert!(case.join("input.cnf").is_file());
    assert!(case.join("trace.rt").is_file());
    assert!(case.join("repro.json").is_file());
    let json = fs::read_to_string(case.join("repro.json")).unwrap();
    assert!(json.contains("rescheck-repro-v1"));
    assert!(json.contains("injected bug"));
    let _ = fs::remove_dir_all(&dir);
}
