//! DDMIN delta debugging: shrinking a finding to a minimal repro.
//!
//! The reducer is Zeller's classic `ddmin` specialised to the
//! complement-removal phase (the variant used by practical reducers):
//! partition the input into `n` chunks, try dropping each chunk, and on
//! success restart with the reduced input; otherwise double the
//! granularity. The result is 1-minimal with respect to chunk removal
//! under the given test function.
//!
//! Two instantiations matter here:
//!
//! * **instance-level** — the items are the formula's clauses, the test
//!   function re-runs the full oracle (solve → trace → six-strategy
//!   matrix) on the reduced formula;
//! * **trace-level** — the items are trace events, the test function
//!   re-runs the strategy matrix on the reduced event list.
//!
//! Both test functions are deterministic, so the shrink itself is
//! deterministic — the same finding always reduces to the same repro.

use crate::oracle::{instance_failure_reproduces, trace_failure_reproduces, FindingKind};
use crate::oracle::{Finding, OracleConfig};
use rescheck_cnf::Cnf;
use rescheck_trace::TraceEvent;

/// What a shrink run did, for logs and `repro.json`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShrinkStats {
    /// Item count before reduction.
    pub from: usize,
    /// Item count after reduction.
    pub to: usize,
    /// Test-function evaluations spent.
    pub tests: usize,
    /// What the items were ("clauses" or "events").
    pub unit: &'static str,
}

/// Complement-only ddmin over `items`.
///
/// `reproduces` must hold for the full input; the reduction keeps only
/// subsets for which it still holds, spending at most `budget`
/// evaluations. Deterministic for deterministic test functions.
pub fn ddmin<T: Clone>(
    items: &[T],
    budget: usize,
    mut reproduces: impl FnMut(&[T]) -> bool,
) -> (Vec<T>, usize) {
    let mut current: Vec<T> = items.to_vec();
    let mut tests = 0usize;
    let mut n = 2usize;
    while current.len() >= 2 && tests < budget {
        let chunk = current.len().div_ceil(n);
        let mut reduced = false;
        for i in 0..n {
            let lo = (i * chunk).min(current.len());
            let hi = ((i + 1) * chunk).min(current.len());
            if lo >= hi {
                continue;
            }
            let mut complement = Vec::with_capacity(current.len() - (hi - lo));
            complement.extend_from_slice(&current[..lo]);
            complement.extend_from_slice(&current[hi..]);
            if complement.is_empty() {
                continue;
            }
            tests += 1;
            if reproduces(&complement) {
                current = complement;
                reduced = true;
                break;
            }
            if tests >= budget {
                break;
            }
        }
        if reduced {
            n = (n - 1).max(2);
        } else {
            if n >= current.len() {
                break;
            }
            n = (n * 2).min(current.len());
        }
    }
    (current, tests)
}

/// Rebuilds a CNF over the original variable space from a clause subset
/// (DIMACS literals), so subset formulas stay well-formed during ddmin.
fn cnf_from_clauses(num_vars: usize, clauses: &[Vec<i64>]) -> Cnf {
    let mut cnf = Cnf::with_vars(num_vars);
    for c in clauses {
        cnf.add_dimacs_clause(c);
    }
    cnf
}

/// Renames variables densely (0..k) so a shrunk formula doesn't carry
/// unused variable indices. Purely an isomorphic renaming.
pub fn compact_vars(cnf: &Cnf) -> Cnf {
    let mut used: Vec<usize> = cnf
        .clauses()
        .flat_map(|c| c.iter().map(|l| l.var().index()))
        .collect();
    used.sort_unstable();
    used.dedup();
    let mut map = vec![usize::MAX; cnf.num_vars()];
    for (new, &old) in used.iter().enumerate() {
        map[old] = new;
    }
    let mut out = Cnf::with_vars(used.len());
    for clause in cnf.clauses() {
        let lits: Vec<i64> = clause
            .iter()
            .map(|l| {
                let d = (map[l.var().index()] + 1) as i64;
                if l.is_positive() {
                    d
                } else {
                    -d
                }
            })
            .collect();
        out.add_dimacs_clause(&lits);
    }
    out
}

/// The shrunk form of a finding.
#[derive(Debug)]
pub struct ShrunkFinding {
    /// Reduced formula (instance-level kinds) or the original formula
    /// (trace-level kinds, where the trace shrinks instead).
    pub cnf: Cnf,
    /// Reduced trace events for trace-level kinds.
    pub events: Option<Vec<TraceEvent>>,
    /// Reduction statistics.
    pub stats: ShrinkStats,
}

/// Shrinks `finding` with at most `budget` oracle evaluations.
///
/// Instance-level findings ([`FindingKind::SatModelInvalid`],
/// [`FindingKind::GroundTruthMismatch`],
/// [`FindingKind::StrategyDisagreement`]) ddmin the clause list, then
/// compact variables (kept only if the failure survives the renaming,
/// since heuristics are index-sensitive). Trace-level findings
/// ([`FindingKind::MutantOracle`]) ddmin the event list against the
/// original formula.
pub fn shrink_finding(finding: &Finding, cfg: &OracleConfig, budget: usize) -> ShrunkFinding {
    match &finding.kind {
        FindingKind::MutantOracle(_) => {
            let events = finding
                .events
                .as_deref()
                .expect("mutant findings carry trace evidence");
            let cnf = &finding.cnf;
            if !trace_failure_reproduces(cnf, events, cfg) {
                // Defensive: if the failure somehow doesn't replay, ship
                // the unshrunk evidence rather than a bogus reduction.
                return ShrunkFinding {
                    cnf: cnf.clone(),
                    events: Some(events.to_vec()),
                    stats: ShrinkStats {
                        from: events.len(),
                        to: events.len(),
                        tests: 0,
                        unit: "events",
                    },
                };
            }
            let (reduced, tests) = ddmin(events, budget, |sub| {
                trace_failure_reproduces(cnf, sub, cfg)
            });
            ShrunkFinding {
                cnf: cnf.clone(),
                events: Some(reduced.clone()),
                stats: ShrinkStats {
                    from: events.len(),
                    to: reduced.len(),
                    tests,
                    unit: "events",
                },
            }
        }
        kind => {
            let num_vars = finding.cnf.num_vars();
            let clauses: Vec<Vec<i64>> = finding
                .cnf
                .clauses()
                .map(|c| c.iter().map(|l| l.to_dimacs()).collect())
                .collect();
            let choices = finding.choices;
            if !instance_failure_reproduces(kind, &finding.cnf, choices, cfg) {
                return ShrunkFinding {
                    cnf: finding.cnf.clone(),
                    events: None,
                    stats: ShrinkStats {
                        from: clauses.len(),
                        to: clauses.len(),
                        tests: 0,
                        unit: "clauses",
                    },
                };
            }
            let (reduced, mut tests) = ddmin(&clauses, budget, |sub| {
                instance_failure_reproduces(kind, &cnf_from_clauses(num_vars, sub), choices, cfg)
            });
            let mut cnf = cnf_from_clauses(num_vars, &reduced);
            let compacted = compact_vars(&cnf);
            if compacted.num_vars() < cnf.num_vars() {
                tests += 1;
                if instance_failure_reproduces(kind, &compacted, choices, cfg) {
                    cnf = compacted;
                }
            }
            ShrunkFinding {
                cnf,
                events: None,
                stats: ShrinkStats {
                    from: clauses.len(),
                    to: reduced.len(),
                    tests,
                    unit: "clauses",
                },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddmin_finds_single_culprit() {
        // Failure: the set contains 13.
        let items: Vec<u32> = (0..40).collect();
        let (reduced, _tests) = ddmin(&items, 1000, |sub| sub.contains(&13));
        assert_eq!(reduced, vec![13]);
    }

    #[test]
    fn ddmin_finds_a_pair() {
        let items: Vec<u32> = (0..32).collect();
        let (reduced, _) = ddmin(&items, 1000, |sub| sub.contains(&3) && sub.contains(&29));
        assert_eq!(reduced, vec![3, 29]);
    }

    #[test]
    fn ddmin_respects_budget() {
        let items: Vec<u32> = (0..64).collect();
        let mut calls = 0usize;
        let (_, tests) = ddmin(&items, 5, |sub| {
            calls += 1;
            sub.contains(&63)
        });
        assert!(tests <= 5);
        assert_eq!(calls, tests);
    }

    #[test]
    fn ddmin_is_deterministic() {
        let items: Vec<u32> = (0..50).collect();
        let run = || {
            ddmin(&items, 1000, |sub| {
                sub.iter().filter(|&&x| x % 7 == 0).count() >= 3
            })
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn compact_vars_renames_densely() {
        let mut cnf = Cnf::with_vars(10);
        cnf.add_dimacs_clause(&[3, -7]);
        cnf.add_dimacs_clause(&[7, 10]);
        let compact = compact_vars(&cnf);
        assert_eq!(compact.num_vars(), 3);
        assert_eq!(compact.num_clauses(), 2);
        let rendered: Vec<Vec<i64>> = compact
            .clauses()
            .map(|c| c.iter().map(|l| l.to_dimacs()).collect())
            .collect();
        assert_eq!(rendered, vec![vec![1, -2], vec![2, 3]]);
    }
}
