//! Repro artifacts: what a finding leaves on disk.
//!
//! Each finding becomes a `case-<iteration>-<kind>/` directory holding
//! everything needed to replay it without the fuzzer:
//!
//! * `input.cnf` — the (shrunk) formula in DIMACS;
//! * `trace.rt` — the (shrunk) binary resolve trace, for trace-level
//!   findings;
//! * `repro.json` — machine-readable metadata: campaign seed, iteration,
//!   per-iteration seed, oracle kind, detail, generator recipe, solver
//!   knobs, shrink statistics, and a replay hint;
//! * `flight.json` — a deterministic flight recording of the shrunk
//!   finding being replayed (the events leading up to the disagreement),
//!   in the `rescheck-flight-v1` ring format.
//!
//! Every byte written is a pure function of the finding, so nightly CI
//! can diff artifacts across runs and identical seeds upload identical
//! repro bundles. The flight recorder runs in deterministic mode (span
//! ids renumbered, timestamps scrubbed) to keep that property.

use crate::oracle::Finding;
use crate::shrink::ShrunkFinding;
use rescheck_checker::{check_unsat_claim_observed, CheckConfig, Strategy};
use rescheck_obs::{FlightRecorder, Json};
use rescheck_solver::{SolveResult, Solver};
use rescheck_trace::{BinaryWriter, MemorySink, TraceEvent, TraceSink};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Where a finding's artifact landed.
#[derive(Clone, Debug)]
pub struct ArtifactPaths {
    /// The case directory.
    pub dir: PathBuf,
    /// `input.cnf` inside it.
    pub cnf: PathBuf,
    /// `trace.rt`, when the finding has trace evidence.
    pub trace: Option<PathBuf>,
    /// `repro.json` inside it.
    pub repro: PathBuf,
    /// `flight.json` inside it.
    pub flight: PathBuf,
}

/// Replays the shrunk finding into a deterministic [`FlightRecorder`]:
/// trace-level findings re-run the breadth-first checker over the shrunk
/// trace; instance-level findings re-solve the shrunk formula with the
/// finding's solver knobs and, if it is UNSAT, check the fresh proof.
/// Failures during the replay are exactly what the recording is for, so
/// check errors are recorded, not propagated.
fn flight_recording(finding: &Finding, shrunk: &ShrunkFinding) -> Json {
    let mut flight = FlightRecorder::new().deterministic();
    match &shrunk.events {
        Some(events) => {
            let sink = MemorySink::from(events.clone());
            let _ = check_unsat_claim_observed(
                &shrunk.cnf,
                &sink,
                Strategy::BreadthFirst,
                &CheckConfig::default(),
                &mut flight,
            );
        }
        None => {
            let mut solver = Solver::from_cnf(&shrunk.cnf, finding.choices.to_config(u64::MAX));
            let mut sink = MemorySink::new();
            let solved = solver.solve_observed(&mut sink, &mut flight);
            if matches!(solved, Ok(SolveResult::Unsatisfiable)) {
                let _ = check_unsat_claim_observed(
                    &shrunk.cnf,
                    &sink,
                    Strategy::DepthFirst,
                    &CheckConfig::default(),
                    &mut flight,
                );
            }
        }
    }
    flight.to_json()
}

fn write_binary_trace(path: &Path, events: &[TraceEvent]) -> io::Result<()> {
    let file = fs::File::create(path)?;
    let mut w = BinaryWriter::new(io::BufWriter::new(file))?;
    for e in events {
        w.event(e)?;
    }
    w.flush()
}

/// Writes the repro bundle for `finding` (as reduced to `shrunk`) under
/// `root`, returning the paths. The case directory is
/// `case-<iteration>-<kind>`; an existing directory is overwritten so
/// re-running a campaign is idempotent.
pub fn write_repro(
    root: &Path,
    campaign_seed: u64,
    finding: &Finding,
    shrunk: &ShrunkFinding,
) -> io::Result<ArtifactPaths> {
    let dir = root.join(format!(
        "case-{:04}-{}",
        finding.iteration,
        finding.kind.label()
    ));
    fs::create_dir_all(&dir)?;

    let cnf_path = dir.join("input.cnf");
    rescheck_cnf::dimacs::write_file(&cnf_path, &shrunk.cnf)?;

    let trace_path = match &shrunk.events {
        Some(events) => {
            let p = dir.join("trace.rt");
            write_binary_trace(&p, events)?;
            Some(p)
        }
        None => None,
    };

    let mut shrink = Json::object();
    shrink
        .set("unit", shrunk.stats.unit)
        .set("from", shrunk.stats.from)
        .set("to", shrunk.stats.to)
        .set("tests", shrunk.stats.tests);

    let replay = match &trace_path {
        Some(_) => "rescheck check input.cnf trace.rt --strategy bf".to_string(),
        None => format!(
            "rescheck solve input.cnf --trace repro.rt && \
             rescheck check input.cnf repro.rt # solver knobs: {}",
            finding.choices.tag()
        ),
    };

    let mut doc = Json::object();
    doc.set("schema", "rescheck-repro-v1")
        .set("campaign_seed", finding_seed_hex(campaign_seed))
        .set("iteration", finding.iteration)
        .set("iter_seed", finding_seed_hex(finding.iter_seed))
        .set("kind", finding.kind.label())
        .set("detail", finding.detail.clone())
        .set("recipe", finding.recipe.to_json())
        .set("solver", finding.choices.to_json())
        .set("shrink", shrink)
        .set("replay", replay);

    let repro_path = dir.join("repro.json");
    fs::write(&repro_path, doc.to_pretty_string())?;

    let flight_path = dir.join("flight.json");
    fs::write(
        &flight_path,
        flight_recording(finding, shrunk).to_pretty_string(),
    )?;

    Ok(ArtifactPaths {
        dir,
        cnf: cnf_path,
        trace: trace_path,
        repro: repro_path,
        flight: flight_path,
    })
}

/// Seeds are rendered as fixed-width hex so artifacts diff cleanly and
/// never lose precision to a JSON number parser.
fn finding_seed_hex(seed: u64) -> String {
    format!("{seed:#018x}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::FindingKind;
    use crate::recipe::{Recipe, SolverChoices};
    use crate::shrink::ShrinkStats;
    use rescheck_cnf::Cnf;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rescheck-fuzz-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_finding(events: Option<Vec<TraceEvent>>) -> Finding {
        let mut cnf = Cnf::with_vars(2);
        cnf.add_dimacs_clause(&[1, 2]);
        cnf.add_dimacs_clause(&[-1]);
        cnf.add_dimacs_clause(&[-2]);
        Finding {
            kind: match events {
                Some(_) => FindingKind::MutantOracle(rescheck_trace::Mutation::BitFlip),
                None => FindingKind::StrategyDisagreement,
            },
            detail: "test detail".to_string(),
            iteration: 7,
            iter_seed: 0xABCD,
            recipe: Recipe::Pigeonhole { holes: 2 },
            choices: SolverChoices {
                learning: true,
                deletion: false,
                restarts: true,
                minimize: false,
                phase_saving: true,
            },
            cnf,
            events,
        }
    }

    #[test]
    fn writes_instance_bundle() {
        let root = tmp_dir("inst");
        let finding = sample_finding(None);
        let shrunk = ShrunkFinding {
            cnf: finding.cnf.clone(),
            events: None,
            stats: ShrinkStats {
                from: 3,
                to: 3,
                tests: 0,
                unit: "clauses",
            },
        };
        let paths = write_repro(&root, 42, &finding, &shrunk).unwrap();
        assert!(paths.cnf.is_file());
        assert!(paths.trace.is_none());
        let flight = fs::read_to_string(&paths.flight).unwrap();
        assert!(flight.contains("rescheck-flight-v1"));
        assert!(
            !flight.contains("t_us"),
            "deterministic recordings carry no timestamps"
        );
        let json = fs::read_to_string(&paths.repro).unwrap();
        assert!(json.contains("rescheck-repro-v1"));
        assert!(json.contains("strategy-disagreement"));
        assert!(json.contains("0x000000000000002a"));
        assert!(paths.dir.ends_with("case-0007-strategy-disagreement"));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn writes_trace_bundle_and_is_deterministic() {
        let root = tmp_dir("trace");
        let events = vec![
            TraceEvent::Learned {
                id: 3,
                sources: vec![0, 1],
            },
            TraceEvent::FinalConflict { id: 3 },
        ];
        let finding = sample_finding(Some(events.clone()));
        let shrunk = ShrunkFinding {
            cnf: finding.cnf.clone(),
            events: Some(events),
            stats: ShrinkStats {
                from: 2,
                to: 2,
                tests: 1,
                unit: "events",
            },
        };
        let a = write_repro(&root, 1, &finding, &shrunk).unwrap();
        let first = (
            fs::read(&a.cnf).unwrap(),
            fs::read(a.trace.as_ref().unwrap()).unwrap(),
            fs::read(&a.repro).unwrap(),
            fs::read(&a.flight).unwrap(),
        );
        let b = write_repro(&root, 1, &finding, &shrunk).unwrap();
        let second = (
            fs::read(&b.cnf).unwrap(),
            fs::read(b.trace.as_ref().unwrap()).unwrap(),
            fs::read(&b.repro).unwrap(),
            fs::read(&b.flight).unwrap(),
        );
        assert_eq!(first, second);
        let _ = fs::remove_dir_all(&root);
    }
}
