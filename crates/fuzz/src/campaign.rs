//! The campaign driver: a seeded loop of oracle iterations with
//! deterministic logging, shrinking, and artifact emission.
//!
//! Everything a campaign prints or writes is a pure function of its
//! [`CampaignConfig`] — no wall-clock, no global state, no platform
//! dependence — so `--seed S --iters N` replays byte-for-byte on any
//! machine. The [`CampaignOutcome::digest`] folds the log into a single
//! u64 that CI compares across runs to enforce exactly that.

use crate::artifact::write_repro;
use crate::oracle::{mix, run_iteration, IterationCounters, OracleConfig};
use crate::shrink::{shrink_finding, ShrinkStats};
use rescheck_obs::{Event, Observer};
use std::io;
use std::path::PathBuf;

/// Campaign-level knobs, layered over the per-iteration
/// [`OracleConfig`].
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// The campaign seed; every iteration seed derives from it.
    pub seed: u64,
    /// Iterations to run.
    pub iterations: u64,
    /// Per-iteration oracle knobs.
    pub oracle: OracleConfig,
    /// Evaluation budget per finding for the delta debugger.
    pub shrink_budget: usize,
    /// Where repro bundles go (`None` disables artifact writing).
    pub artifact_dir: Option<PathBuf>,
    /// Stop after this many findings.
    pub max_findings: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 1,
            iterations: 100,
            oracle: OracleConfig::default(),
            shrink_budget: 400,
            artifact_dir: None,
            max_findings: 1,
        }
    }
}

/// One shrunk, recorded finding.
#[derive(Debug)]
pub struct FindingReport {
    /// Oracle kind label (`strategy-disagreement`, `mutant-bit-flip`, …).
    pub kind: String,
    /// Human-readable description of the violation.
    pub detail: String,
    /// Iteration that found it.
    pub iteration: u64,
    /// Shrink statistics.
    pub shrink: ShrinkStats,
    /// Case directory, when artifacts were written.
    pub case_dir: Option<PathBuf>,
}

/// What a campaign did.
#[derive(Debug)]
pub struct CampaignOutcome {
    /// The campaign seed.
    pub seed: u64,
    /// Iterations actually run (may stop early on `max_findings`).
    pub iterations_run: u64,
    /// Aggregated counters.
    pub counters: IterationCounters,
    /// Shrunk findings, in discovery order.
    pub findings: Vec<FindingReport>,
    /// The deterministic campaign log, one line per iteration plus one
    /// per finding.
    pub log: Vec<String>,
}

impl CampaignOutcome {
    /// `true` when the campaign found no oracle violations.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// FNV-1a 64 over the log lines: the determinism fingerprint CI
    /// compares across runs of the same seed.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for line in &self.log {
            for b in line.bytes().chain(std::iter::once(b'\n')) {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
        h
    }

    /// A deterministic multi-line summary (no timings).
    pub fn summary(&self) -> String {
        let c = &self.counters;
        let mut s = String::new();
        s.push_str(&format!(
            "campaign seed={:#018x} iterations={}\n",
            self.seed, self.iterations_run
        ));
        s.push_str(&format!(
            "verdicts: sat={} unsat={} unknown={}\n",
            c.sat, c.unsat, c.unknown
        ));
        s.push_str(&format!("strategy matrices: {}\n", c.matrices));
        s.push_str(&format!(
            "mutants: tested={} rejected-decode={} rejected-check={} accepted={} inapplicable={}\n",
            c.mutants_tested,
            c.mutants_rejected_decode,
            c.mutants_rejected_check,
            c.mutants_accepted,
            c.mutants_inapplicable
        ));
        s.push_str(&format!(
            "findings: {} (digest {:#018x})\n",
            self.findings.len(),
            self.digest()
        ));
        for f in &self.findings {
            s.push_str(&format!(
                "  iter {:04} {}: {} [shrunk {} -> {} {} in {} tests]\n",
                f.iteration,
                f.kind,
                f.detail,
                f.shrink.from,
                f.shrink.to,
                f.shrink.unit,
                f.shrink.tests
            ));
        }
        s
    }
}

/// Runs a fuzzing campaign, streaming `fuzz.*` metrics through `obs`.
///
/// # Errors
///
/// Propagates I/O failures from artifact writing only — the oracle
/// itself is in-memory and infallible.
pub fn run_campaign(cfg: &CampaignConfig, obs: &mut dyn Observer) -> io::Result<CampaignOutcome> {
    let mut log = Vec::new();
    let mut counters = IterationCounters::default();
    let mut findings = Vec::new();
    let mut iterations_run = 0u64;

    for i in 0..cfg.iterations {
        let iter_seed = mix(cfg.seed, i);
        let report = run_iteration(i, iter_seed, &cfg.oracle);
        iterations_run += 1;
        counters.add(&report.counters);
        log.push(report.line);
        obs.observe(&Event::CounterAdd {
            name: "fuzz.iterations",
            delta: 1,
        });
        obs.observe(&Event::Progress {
            phase: "fuzz",
            done: iterations_run,
            unit: "iterations",
            detail: None,
        });

        if let Some(finding) = report.finding {
            let shrunk = shrink_finding(&finding, &cfg.oracle, cfg.shrink_budget);
            let case_dir = match &cfg.artifact_dir {
                Some(root) => Some(write_repro(root, cfg.seed, &finding, &shrunk)?.dir),
                None => None,
            };
            log.push(format!(
                "finding iter {:04} {}: {} [shrunk {} -> {} {} in {} tests]",
                finding.iteration,
                finding.kind.label(),
                finding.detail,
                shrunk.stats.from,
                shrunk.stats.to,
                shrunk.stats.unit,
                shrunk.stats.tests
            ));
            obs.observe(&Event::CounterAdd {
                name: "fuzz.findings",
                delta: 1,
            });
            findings.push(FindingReport {
                kind: finding.kind.label(),
                detail: finding.detail,
                iteration: finding.iteration,
                shrink: shrunk.stats,
                case_dir,
            });
            if findings.len() >= cfg.max_findings {
                break;
            }
        }
    }

    for (name, value) in [
        ("fuzz.sat", counters.sat),
        ("fuzz.unsat", counters.unsat),
        ("fuzz.unknown", counters.unknown),
        ("fuzz.matrices", counters.matrices),
        ("fuzz.mutants_tested", counters.mutants_tested),
        (
            "fuzz.mutants_rejected_decode",
            counters.mutants_rejected_decode,
        ),
        (
            "fuzz.mutants_rejected_check",
            counters.mutants_rejected_check,
        ),
        ("fuzz.mutants_accepted", counters.mutants_accepted),
        ("fuzz.mutants_inapplicable", counters.mutants_inapplicable),
    ] {
        obs.observe(&Event::CounterAdd { name, delta: value });
    }
    obs.observe(&Event::GaugeSet {
        name: "fuzz.findings_total",
        value: findings.len() as f64,
    });

    Ok(CampaignOutcome {
        seed: cfg.seed,
        iterations_run,
        counters,
        findings,
        log,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::InjectedBug;
    use rescheck_obs::{MetricsSink, NullObserver};

    fn small(seed: u64, iterations: u64) -> CampaignConfig {
        CampaignConfig {
            seed,
            iterations,
            oracle: OracleConfig {
                max_vars: 14,
                ..OracleConfig::default()
            },
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn clean_campaign_has_no_findings() {
        let outcome = run_campaign(&small(0x5EED, 25), &mut NullObserver).unwrap();
        assert!(outcome.clean(), "summary:\n{}", outcome.summary());
        assert_eq!(outcome.iterations_run, 25);
        assert_eq!(outcome.log.len(), 25);
    }

    #[test]
    fn campaigns_are_deterministic() {
        let a = run_campaign(&small(0xD00D, 20), &mut NullObserver).unwrap();
        let b = run_campaign(&small(0xD00D, 20), &mut NullObserver).unwrap();
        assert_eq!(a.log, b.log);
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.summary(), b.summary());
        assert_eq!(a.counters, b.counters);
    }

    #[test]
    fn different_seeds_diverge() {
        let a = run_campaign(&small(1, 20), &mut NullObserver).unwrap();
        let b = run_campaign(&small(2, 20), &mut NullObserver).unwrap();
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn injected_bug_stops_at_max_findings() {
        let mut cfg = small(0xFEED, 200);
        cfg.oracle.inject = Some(InjectedBug::RejectValid);
        cfg.max_findings = 1;
        let outcome = run_campaign(&cfg, &mut NullObserver).unwrap();
        assert_eq!(outcome.findings.len(), 1);
        assert!(outcome.iterations_run < 200);
        let f = &outcome.findings[0];
        assert_eq!(f.kind, "strategy-disagreement");
        assert!(f.shrink.to <= f.shrink.from);
        assert!(!outcome.clean());
    }

    #[test]
    fn metrics_flow_through_observer() {
        let mut sink = MetricsSink::new();
        let outcome = run_campaign(&small(0x0B5, 10), &mut sink).unwrap();
        assert_eq!(outcome.iterations_run, 10);
        let doc = sink.registry().to_json().to_pretty_string();
        assert!(doc.contains("fuzz.iterations"), "{doc}");
        assert!(doc.contains("fuzz.findings_total"), "{doc}");
    }
}
