//! The differential oracle: what one fuzz iteration runs and checks.
//!
//! Each iteration generates an instance from a seeded [`Recipe`], solves
//! it, and cross-validates the answer three ways:
//!
//! 1. **SAT answers** must satisfy every clause
//!    ([`rescheck_checker::check_sat_claim`]), and — on small instances —
//!    agree with brute-force ground truth and any status known by
//!    construction.
//! 2. **UNSAT answers** must be accepted by *all seven* checking
//!    strategies with class-identical statistics
//!    ([`rescheck_checker::agreement::verify_valid_agreement`]), again
//!    cross-checked against ground truth where available.
//! 3. **Corrupted traces** (the mutation corpus of
//!    [`rescheck_trace::mutate`]) must never panic any strategy, never be
//!    misclassified as an I/O or resource failure, and never break the
//!    cross-strategy implications
//!    ([`rescheck_checker::agreement::verify_cross_consistency`]).
//! 4. **Proof round-trips**: the trace exported to LRAT and re-ingested
//!    must re-derive the same resolvents and convince the matrix again;
//!    corrupted LRAT bytes must produce a clean verdict, and whatever
//!    still ingests must keep the cross-strategy implications intact.
//!
//! Any violation becomes a [`Finding`], which the campaign shrinks with
//! the delta debugger and writes out as a repro artifact.

use crate::recipe::{Recipe, SolverChoices};
use rescheck_checker::agreement::{
    run_all_strategies, verify_cross_consistency, verify_synthesized_trace, verify_valid_agreement,
};
use rescheck_checker::{check_sat_claim, CheckConfig};
use rescheck_cnf::{Cnf, SatStatus};
use rescheck_interop::{
    apply_proof, export_lrat, ingest_bytes, lrat, ProofFormat, ProofMutation, ALL_PROOF_MUTATIONS,
};
use rescheck_solver::{SolveResult, Solver};
use rescheck_trace::{mutate, BinaryReader, BinaryWriter, Mutation, TraceEvent};
use rescheck_trace::{MemorySink, TraceSink, ALL_MUTATIONS};
use std::fmt;
use std::io::Cursor;

/// The checker configuration the oracle matrix runs under: a fixed
/// worker count and no small-trace fallback, so the sharded pass-1 and
/// the parallel-dag executor are exercised even on the tiny traces
/// fuzzing produces.
fn oracle_config() -> CheckConfig {
    CheckConfig {
        jobs: 3,
        parallel_min_learned: 0,
        ..CheckConfig::default()
    }
}

/// Deliberate oracle sabotage, for validating the shrinker and the
/// artifact pipeline end to end (a fuzzer whose failure path is never
/// exercised is itself untested code).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InjectedBug {
    /// Treat every fully-agreeing valid trace as a disagreement. The
    /// delta debugger then shrinks the instance to a minimal formula
    /// whose proof still checks — exercising the whole failure path on
    /// a healthy checker.
    RejectValid,
    /// Treat every cleanly-rejected mutant as if the checker had
    /// wrongly accepted it, forcing a trace-level shrink.
    AcceptMutants,
}

impl InjectedBug {
    /// Parses the CLI spelling (`reject-valid` / `accept-mutants`).
    pub fn parse(s: &str) -> Option<InjectedBug> {
        match s {
            "reject-valid" => Some(InjectedBug::RejectValid),
            "accept-mutants" => Some(InjectedBug::AcceptMutants),
            _ => None,
        }
    }
}

impl fmt::Display for InjectedBug {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InjectedBug::RejectValid => f.write_str("reject-valid"),
            InjectedBug::AcceptMutants => f.write_str("accept-mutants"),
        }
    }
}

/// Which oracle a finding violated.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FindingKind {
    /// The solver claimed SAT with a model that does not satisfy the
    /// formula.
    SatModelInvalid,
    /// The solver's verdict contradicts ground truth (brute force on
    /// small instances, or a status known by construction).
    GroundTruthMismatch,
    /// The seven checking strategies disagreed on a pristine solver
    /// trace.
    StrategyDisagreement,
    /// A mutated trace broke a checker invariant (panic, misclassified
    /// failure, or cross-strategy inconsistency).
    MutantOracle(Mutation),
    /// The trace → LRAT → trace round trip lost the refutation: export
    /// failed, re-ingestion failed, the resolvents diverged, or the
    /// synthesized trace no longer convinced the matrix.
    RoundTrip,
    /// A corrupted LRAT proof that still ingested broke the
    /// cross-strategy implications on its synthesized trace.
    ProofMutantOracle(ProofMutation),
}

impl FindingKind {
    /// Short kebab-case label used in case-directory names and logs.
    pub fn label(&self) -> String {
        match self {
            FindingKind::SatModelInvalid => "sat-model-invalid".to_string(),
            FindingKind::GroundTruthMismatch => "ground-truth-mismatch".to_string(),
            FindingKind::StrategyDisagreement => "strategy-disagreement".to_string(),
            FindingKind::MutantOracle(m) => format!("mutant-{m}"),
            FindingKind::RoundTrip => "lrat-roundtrip".to_string(),
            FindingKind::ProofMutantOracle(m) => format!("proof-mutant-{m}"),
        }
    }
}

impl fmt::Display for FindingKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// A reproducible oracle violation, carrying everything the shrinker
/// and artifact writer need.
#[derive(Debug)]
pub struct Finding {
    /// Which oracle failed.
    pub kind: FindingKind,
    /// Human-readable description of the violation.
    pub detail: String,
    /// Campaign iteration that found it.
    pub iteration: u64,
    /// The derived per-iteration seed (replays the iteration alone).
    pub iter_seed: u64,
    /// The generating recipe.
    pub recipe: Recipe,
    /// The solver knobs in effect.
    pub choices: SolverChoices,
    /// The formula (pre-shrink).
    pub cnf: Cnf,
    /// Trace-level evidence for [`FindingKind::MutantOracle`] and
    /// [`FindingKind::StrategyDisagreement`] findings.
    pub events: Option<Vec<TraceEvent>>,
}

/// Knobs of the per-iteration oracle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OracleConfig {
    /// Conflict budget per solve; exhausted budgets count as `unknown`.
    pub conflict_limit: u64,
    /// Brute-force ground truth is consulted up to this variable count.
    pub brute_force_max_vars: usize,
    /// Mutants generated per UNSAT trace (cycling through
    /// [`ALL_MUTATIONS`]).
    pub mutants_per_trace: u32,
    /// Upper bound on generated variable counts.
    pub max_vars: usize,
    /// Optional deliberate oracle sabotage.
    pub inject: Option<InjectedBug>,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            conflict_limit: 20_000,
            brute_force_max_vars: 11,
            mutants_per_trace: 4,
            max_vars: 20,
            inject: None,
        }
    }
}

/// Counter deltas from one iteration.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IterationCounters {
    /// SAT verdicts.
    pub sat: u64,
    /// UNSAT verdicts.
    pub unsat: u64,
    /// Conflict budget exhausted.
    pub unknown: u64,
    /// Seven-strategy matrices run on pristine traces.
    pub matrices: u64,
    /// LRAT round trips (export → re-ingest → re-check) completed.
    pub roundtrips: u64,
    /// Corrupted LRAT proofs fed to the ingestion engine.
    pub proof_mutants_tested: u64,
    /// Corrupted LRAT proofs rejected with a clean verdict.
    pub proof_mutants_rejected: u64,
    /// Mutants generated and fed to the checker.
    pub mutants_tested: u64,
    /// Mutants rejected while decoding the binary stream.
    pub mutants_rejected_decode: u64,
    /// Mutants rejected by the checker with a proof defect.
    pub mutants_rejected_check: u64,
    /// Mutants the checker accepted (the mutation landed outside the
    /// needed proof, leaving a still-valid trace) — tracked, not a bug.
    pub mutants_accepted: u64,
    /// Mutations inapplicable to the trace (too small / no-op).
    pub mutants_inapplicable: u64,
}

impl IterationCounters {
    /// Accumulates another iteration's deltas.
    pub fn add(&mut self, other: &IterationCounters) {
        self.sat += other.sat;
        self.unsat += other.unsat;
        self.unknown += other.unknown;
        self.matrices += other.matrices;
        self.roundtrips += other.roundtrips;
        self.proof_mutants_tested += other.proof_mutants_tested;
        self.proof_mutants_rejected += other.proof_mutants_rejected;
        self.mutants_tested += other.mutants_tested;
        self.mutants_rejected_decode += other.mutants_rejected_decode;
        self.mutants_rejected_check += other.mutants_rejected_check;
        self.mutants_accepted += other.mutants_accepted;
        self.mutants_inapplicable += other.mutants_inapplicable;
    }
}

/// What one iteration did, in a deterministic, loggable form.
#[derive(Debug)]
pub struct IterationReport {
    /// The deterministic log line (no wall-clock anywhere).
    pub line: String,
    /// Counter deltas.
    pub counters: IterationCounters,
    /// The first oracle violation, if any.
    pub finding: Option<Finding>,
}

/// SplitMix64-style finalizer deriving independent per-iteration seeds
/// from the campaign seed.
pub fn mix(seed: u64, salt: u64) -> u64 {
    let mut z = seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Encodes events in the binary trace format (the mutation substrate
/// and the artifact format).
pub fn encode_binary(events: &[TraceEvent]) -> Vec<u8> {
    let mut w = BinaryWriter::new(Vec::new()).expect("writing to a Vec cannot fail");
    for e in events {
        w.event(e).expect("writing to a Vec cannot fail");
    }
    w.into_inner()
}

/// Decodes a binary trace, `Err` on any malformation.
pub fn decode_binary(bytes: &[u8]) -> std::io::Result<Vec<TraceEvent>> {
    BinaryReader::new(Cursor::new(bytes))?.collect()
}

/// Ground truth for `cnf` where we can know it: brute force on small
/// instances, otherwise the status the generator guarantees.
fn ground_truth(cnf: &Cnf, expected: Option<SatStatus>, cfg: &OracleConfig) -> Option<SatStatus> {
    if cnf.num_vars() <= cfg.brute_force_max_vars {
        Some(cnf.brute_force_status())
    } else {
        expected
    }
}

/// Runs one fuzz iteration: sample, solve, cross-validate, mutate.
pub fn run_iteration(iteration: u64, iter_seed: u64, cfg: &OracleConfig) -> IterationReport {
    let mut rng = rescheck_cnf::SplitMix64::new(iter_seed);
    let recipe = Recipe::sample(&mut rng, cfg.max_vars);
    let choices = SolverChoices::sample(&mut rng);
    let (cnf, expected) = recipe.build();

    let mut counters = IterationCounters::default();
    let mut solver = Solver::from_cnf(&cnf, choices.to_config(cfg.conflict_limit));
    let mut sink = MemorySink::new();
    let result = solver
        .solve_traced(&mut sink)
        .expect("in-memory trace sink cannot fail");

    let finding = |kind: FindingKind, detail: String, events: Option<Vec<TraceEvent>>| Finding {
        kind,
        detail,
        iteration,
        iter_seed,
        recipe: recipe.clone(),
        choices,
        cnf: cnf.clone(),
        events,
    };
    let prefix = format!("iter {iteration:04} [{recipe} cfg={}]", choices.tag());

    match result {
        SolveResult::Unknown => {
            counters.unknown = 1;
            IterationReport {
                line: format!("{prefix} unknown (conflict budget)"),
                counters,
                finding: None,
            }
        }
        SolveResult::Satisfiable(model) => {
            counters.sat = 1;
            let mut found = None;
            if let Err(e) = check_sat_claim(&cnf, &model) {
                found = Some(finding(
                    FindingKind::SatModelInvalid,
                    format!("solver claimed SAT but {e}"),
                    None,
                ));
            } else if let Some(truth) = ground_truth(&cnf, expected, cfg) {
                if truth != SatStatus::Satisfiable {
                    found = Some(finding(
                        FindingKind::GroundTruthMismatch,
                        format!("solver claimed SAT but ground truth is {truth}"),
                        None,
                    ));
                }
            }
            IterationReport {
                line: format!(
                    "{prefix} sat{}",
                    if found.is_some() { " FINDING" } else { "" }
                ),
                counters,
                finding: found,
            }
        }
        SolveResult::Unsatisfiable => {
            counters.unsat = 1;
            let events = sink.into_events();
            let mut found = None;

            if let Some(truth) = ground_truth(&cnf, expected, cfg) {
                if truth != SatStatus::Unsatisfiable {
                    found = Some(finding(
                        FindingKind::GroundTruthMismatch,
                        format!("solver claimed UNSAT but ground truth is {truth}"),
                        Some(events.clone()),
                    ));
                }
            }

            // Seven-way strategy matrix on the pristine trace.
            let mut matrix_note = String::new();
            if found.is_none() {
                counters.matrices = 1;
                let reports = run_all_strategies(&cnf, &events, &oracle_config());
                match verify_valid_agreement(&reports) {
                    Ok(summary) => {
                        matrix_note = format!(
                            " learned={} built={}",
                            summary.learned_in_trace, summary.needed_built
                        );
                        if cfg.inject == Some(InjectedBug::RejectValid) {
                            found = Some(finding(
                                FindingKind::StrategyDisagreement,
                                "injected bug: valid agreement reported as disagreement"
                                    .to_string(),
                                Some(events.clone()),
                            ));
                        }
                    }
                    Err(d) => {
                        found = Some(finding(
                            FindingKind::StrategyDisagreement,
                            d.to_string(),
                            Some(events.clone()),
                        ));
                    }
                }
            }

            // Mutation corpus over the binary encoding.
            let mut mutant_note = String::new();
            if found.is_none() {
                let bytes = encode_binary(&events);
                let (note, mutant_finding) =
                    run_mutants(&cnf, &events, &bytes, iter_seed, cfg, &mut counters);
                mutant_note = note;
                if let Some((kind, detail, mutant_events)) = mutant_finding {
                    found = Some(finding(kind, detail, mutant_events));
                }
            }

            // LRAT round trip plus the proof-corruption corpus.
            let mut roundtrip_note = String::new();
            if found.is_none() {
                let (note, rt_finding) = run_roundtrip(&cnf, &events, iter_seed, &mut counters);
                roundtrip_note = note;
                if let Some((kind, detail)) = rt_finding {
                    found = Some(finding(kind, detail, Some(events.clone())));
                }
            }

            IterationReport {
                line: format!(
                    "{prefix} unsat{matrix_note}{mutant_note}{roundtrip_note}{}",
                    if found.is_some() { " FINDING" } else { "" }
                ),
                counters,
                finding: found,
            }
        }
    }
}

type MutantFinding = (FindingKind, String, Option<Vec<TraceEvent>>);

/// Feeds `cfg.mutants_per_trace` corrupted variants of `bytes` to the
/// checker and enforces the mutation-corpus invariants.
fn run_mutants(
    cnf: &Cnf,
    original_events: &[TraceEvent],
    bytes: &[u8],
    iter_seed: u64,
    cfg: &OracleConfig,
    counters: &mut IterationCounters,
) -> (String, Option<MutantFinding>) {
    let mut rejected = 0u64;
    for m in 0..cfg.mutants_per_trace {
        let mutation = ALL_MUTATIONS[m as usize % ALL_MUTATIONS.len()];
        let mut rng = rescheck_cnf::SplitMix64::new(mix(iter_seed, 0x6d75_7400 + m as u64));
        let Some(mutated) = mutate::apply(bytes, mutation, &mut rng) else {
            counters.mutants_inapplicable += 1;
            continue;
        };
        counters.mutants_tested += 1;
        let mutant_events = match decode_binary(&mutated) {
            Err(_) => {
                // The decoder rejected the stream outright — the clean
                // rejection the corpus expects from truncations and
                // varint corruption.
                counters.mutants_rejected_decode += 1;
                rejected += 1;
                continue;
            }
            Ok(events) => events,
        };
        if mutant_events == original_events {
            // The mutation round-tripped to the same semantics (cannot
            // happen with the current operators, but guard anyway).
            counters.mutants_tested -= 1;
            counters.mutants_inapplicable += 1;
            continue;
        }
        let reports = run_all_strategies(cnf, &mutant_events, &oracle_config());
        if let Err(d) = verify_cross_consistency(&reports) {
            return (
                format!(" mutants={rejected}-then-FINDING"),
                Some((
                    FindingKind::MutantOracle(mutation),
                    d.to_string(),
                    Some(mutant_events),
                )),
            );
        }
        if reports.iter().any(|r| r.run.accepted()) {
            // Every accept passed cross-consistency, so the mutated
            // trace is genuinely still a valid proof (the corruption
            // landed outside the needed derivation). Track it — a
            // rising rate means the mutators lost their teeth.
            counters.mutants_accepted += 1;
        } else {
            counters.mutants_rejected_check += 1;
            rejected += 1;
            if cfg.inject == Some(InjectedBug::AcceptMutants) {
                return (
                    format!(" mutants={rejected}-then-FINDING"),
                    Some((
                        FindingKind::MutantOracle(mutation),
                        "injected bug: cleanly-rejected mutant treated as wrongly accepted"
                            .to_string(),
                        Some(mutant_events),
                    )),
                );
            }
        }
    }
    (
        format!(" mutants={rejected}/{} rejected", counters.mutants_tested),
        None,
    )
}

type RoundTripFinding = (FindingKind, String);

/// Exports the trace to LRAT, re-ingests it, re-checks the synthesized
/// trace, then feeds corrupted proof bytes through the ingestion engine.
///
/// The pristine trace already passed the full matrix, so export *must*
/// succeed, the round trip *must* preserve the resolvents, and the
/// re-checked matrix *must* agree — any deviation is a finding, not a
/// shrug.
fn run_roundtrip(
    cnf: &Cnf,
    events: &[TraceEvent],
    iter_seed: u64,
    counters: &mut IterationCounters,
) -> (String, Option<RoundTripFinding>) {
    let fail = |detail: String| {
        (
            " roundtrip=FINDING".to_string(),
            Some((FindingKind::RoundTrip, detail)),
        )
    };
    let exported = match export_lrat(cnf, events) {
        Ok(e) => e,
        Err(e) => return fail(format!("export of a matrix-valid trace failed: {e}")),
    };
    let mut text = Vec::new();
    lrat::write_text(&mut text, &exported.steps).expect("writing to a Vec cannot fail");
    let reingested = match ingest_bytes(cnf, &text, ProofFormat::Lrat) {
        Ok(r) => r,
        Err(e) => return fail(format!("re-ingesting the exported proof failed: {e}")),
    };
    if !reingested.resolution_checkable() {
        return fail("exported proof re-ingested with RAT steps".to_string());
    }
    let mut ours: Vec<&Vec<_>> = exported.resolvents.iter().map(|(_, l)| l).collect();
    let mut theirs: Vec<&Vec<_>> = reingested.resolvents.iter().map(|(_, l)| l).collect();
    ours.sort();
    theirs.sort();
    if ours != theirs {
        return fail(format!(
            "round trip changed the resolvent set ({} exported, {} re-derived)",
            ours.len(),
            theirs.len()
        ));
    }
    if let Err(d) = verify_synthesized_trace(cnf, &reingested.events, &oracle_config()) {
        return fail(format!("matrix rejected the round-tripped trace: {d}"));
    }
    counters.roundtrips += 1;

    // Corrupted proof bytes: every operator once per iteration. Any
    // verdict is acceptable; a mutant that still ingests resolution-
    // checkable must keep the cross-strategy implications intact.
    for (i, mutation) in ALL_PROOF_MUTATIONS.iter().enumerate() {
        let mut rng = rescheck_cnf::SplitMix64::new(mix(iter_seed, 0x7072_6600 + i as u64));
        let Some(mutated) = apply_proof(&text, *mutation, &mut rng) else {
            continue;
        };
        counters.proof_mutants_tested += 1;
        match ingest_bytes(cnf, &mutated, ProofFormat::Lrat) {
            Err(_) => counters.proof_mutants_rejected += 1,
            Ok(report) => {
                if report.resolution_checkable() {
                    let reports = run_all_strategies(cnf, &report.events, &oracle_config());
                    if let Err(d) = verify_cross_consistency(&reports) {
                        return (
                            " proof-mutants=FINDING".to_string(),
                            Some((FindingKind::ProofMutantOracle(*mutation), d.to_string())),
                        );
                    }
                }
            }
        }
    }
    (
        format!(
            " roundtrip=ok proof-mutants={}/{} rejected",
            counters.proof_mutants_rejected, counters.proof_mutants_tested
        ),
        None,
    )
}

/// Does an instance-level failure of `kind` still reproduce on `cnf`?
///
/// This is the delta debugger's test function: it re-runs the exact
/// oracle that flagged the original finding (fresh solve, fresh trace,
/// fresh strategy matrix), so a reduction is kept only if the *same
/// class* of violation survives.
pub fn instance_failure_reproduces(
    kind: &FindingKind,
    cnf: &Cnf,
    choices: SolverChoices,
    cfg: &OracleConfig,
) -> bool {
    if cnf.num_clauses() == 0 {
        return false;
    }
    let mut solver = Solver::from_cnf(cnf, choices.to_config(cfg.conflict_limit));
    let mut sink = MemorySink::new();
    let Ok(result) = solver.solve_traced(&mut sink) else {
        return false;
    };
    match kind {
        FindingKind::SatModelInvalid => match result {
            SolveResult::Satisfiable(model) => check_sat_claim(cnf, &model).is_err(),
            _ => false,
        },
        FindingKind::GroundTruthMismatch => {
            // Generator labels do not transfer to subformulas, so the
            // reduced predicate insists on brute-forceable sizes.
            if cnf.num_vars() > cfg.brute_force_max_vars {
                return false;
            }
            let truth = cnf.brute_force_status();
            match result {
                SolveResult::Satisfiable(_) => truth == SatStatus::Unsatisfiable,
                SolveResult::Unsatisfiable => truth == SatStatus::Satisfiable,
                SolveResult::Unknown => false,
            }
        }
        FindingKind::StrategyDisagreement => {
            if !matches!(result, SolveResult::Unsatisfiable) {
                return false;
            }
            let events = sink.into_events();
            let reports = run_all_strategies(cnf, &events, &oracle_config());
            match cfg.inject {
                Some(InjectedBug::RejectValid) => verify_valid_agreement(&reports).is_ok(),
                _ => verify_valid_agreement(&reports).is_err(),
            }
        }
        FindingKind::MutantOracle(_) => false, // trace-level kind
        FindingKind::RoundTrip | FindingKind::ProofMutantOracle(_) => {
            if !matches!(result, SolveResult::Unsatisfiable) {
                return false;
            }
            let events = sink.into_events();
            let mut counters = IterationCounters::default();
            // The proof-mutant RNG seed is not part of the finding; a
            // fixed replay seed keeps the predicate deterministic.
            match run_roundtrip(cnf, &events, 0, &mut counters).1 {
                Some((k, _)) => std::mem::discriminant(&k) == std::mem::discriminant(kind),
                None => false,
            }
        }
    }
}

/// Does a trace-level failure still reproduce on `events`?
pub fn trace_failure_reproduces(cnf: &Cnf, events: &[TraceEvent], cfg: &OracleConfig) -> bool {
    let reports = run_all_strategies(cnf, events, &oracle_config());
    match cfg.inject {
        Some(InjectedBug::AcceptMutants) => {
            verify_cross_consistency(&reports).is_ok() && reports.iter().all(|r| !r.run.accepted())
        }
        _ => verify_cross_consistency(&reports).is_err(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_deterministic_and_spreads() {
        assert_eq!(mix(42, 7), mix(42, 7));
        assert_ne!(mix(42, 7), mix(42, 8));
        assert_ne!(mix(42, 7), mix(43, 7));
    }

    #[test]
    fn iterations_are_deterministic() {
        let a = run_iteration(3, mix(1234, 3), &OracleConfig::default());
        let b = run_iteration(3, mix(1234, 3), &OracleConfig::default());
        assert_eq!(a.line, b.line);
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.finding.is_some(), b.finding.is_some());
    }

    #[test]
    fn clean_checker_survives_a_small_sweep() {
        let mut counters = IterationCounters::default();
        for i in 0..30 {
            let report = run_iteration(i, mix(0xF00D, i), &OracleConfig::default());
            assert!(
                report.finding.is_none(),
                "unexpected finding: {}",
                report.finding.unwrap().detail
            );
            counters.add(&report.counters);
        }
        assert_eq!(counters.sat + counters.unsat + counters.unknown, 30);
        assert!(counters.unsat > 0, "sweep never reached the UNSAT oracle");
        assert!(counters.mutants_tested > 0, "sweep never mutated a trace");
        assert!(counters.roundtrips > 0, "sweep never round-tripped a proof");
        assert!(
            counters.proof_mutants_tested > 0,
            "sweep never corrupted a proof"
        );
        assert_eq!(
            counters.mutants_tested,
            counters.mutants_rejected_decode
                + counters.mutants_rejected_check
                + counters.mutants_accepted
        );
    }

    #[test]
    fn injected_reject_valid_yields_a_finding() {
        let cfg = OracleConfig {
            inject: Some(InjectedBug::RejectValid),
            ..OracleConfig::default()
        };
        let finding = (0..50)
            .find_map(|i| run_iteration(i, mix(0xBEEF, i), &cfg).finding)
            .expect("50 iterations never hit UNSAT");
        assert_eq!(finding.kind, FindingKind::StrategyDisagreement);
        assert!(finding.detail.contains("injected"));
        // The predicate sees the injected failure too, so ddmin has a
        // valid starting point.
        assert!(instance_failure_reproduces(
            &finding.kind,
            &finding.cnf,
            finding.choices,
            &cfg
        ));
    }

    #[test]
    fn injected_accept_mutants_yields_a_trace_finding() {
        let cfg = OracleConfig {
            inject: Some(InjectedBug::AcceptMutants),
            ..OracleConfig::default()
        };
        let finding = (0..50)
            .find_map(|i| run_iteration(i, mix(0xCAFE, i), &cfg).finding)
            .expect("50 iterations never rejected a mutant");
        assert!(matches!(finding.kind, FindingKind::MutantOracle(_)));
        let events = finding.events.as_ref().unwrap();
        assert!(trace_failure_reproduces(&finding.cnf, events, &cfg));
    }

    #[test]
    fn binary_roundtrip_helpers() {
        let events = vec![
            TraceEvent::Learned {
                id: 9,
                sources: vec![0, 1],
            },
            TraceEvent::FinalConflict { id: 9 },
        ];
        let bytes = encode_binary(&events);
        assert_eq!(decode_binary(&bytes).unwrap(), events);
        assert!(decode_binary(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn injected_bug_parses() {
        assert_eq!(
            InjectedBug::parse("reject-valid"),
            Some(InjectedBug::RejectValid)
        );
        assert_eq!(
            InjectedBug::parse("accept-mutants"),
            Some(InjectedBug::AcceptMutants)
        );
        assert_eq!(InjectedBug::parse("nope"), None);
        assert_eq!(InjectedBug::RejectValid.to_string(), "reject-valid");
    }
}
