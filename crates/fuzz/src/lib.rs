//! Deterministic differential fuzzing for the rescheck pipeline.
//!
//! The paper's thesis is that a resolution-based checker is an
//! *independent* validator for a SAT solver: the two share no code, so a
//! bug in either shows up as a disagreement. This crate industrialises
//! that idea into a fuzzer whose oracles are the pipeline's own
//! redundancies:
//!
//! * the **seven checking strategies** (depth-first, breadth-first,
//!   hybrid, portfolio, parallel-bf, parallel-dag, disk-df) must agree
//!   on every verdict and on class-level statistics;
//! * **SAT answers** must satisfy the formula, and both answers must
//!   match brute-force ground truth on small instances and
//!   by-construction labels on structured families;
//! * **corrupted traces** (bit flips, truncations, source-list swaps,
//!   varint corruption) must be rejected cleanly — never a panic, never
//!   a misclassified resource/I/O failure, never a cross-strategy
//!   inconsistency;
//! * **proof round-trips** (trace → LRAT → trace) must preserve the
//!   refutation, and corrupted LRAT bytes must ingest to a clean
//!   verdict or a still-consistent synthesized trace.
//!
//! A campaign ([`run_campaign`]) is a pure function of its seed: same
//! seed, same instances, same log, same [`CampaignOutcome::digest`] —
//! which is what lets CI treat "replay the smoke seed" as a regression
//! test. When an oracle trips, the [`ddmin`] delta debugger shrinks the
//! failing formula (or trace) to a minimal repro and
//! [`artifact::write_repro`] emits a `case-*/` bundle with the DIMACS
//! instance, the binary trace, and a `repro.json` replay recipe.
//!
//! [`ddmin`]: shrink::ddmin
//! [`run_campaign`]: campaign::run_campaign
//! [`CampaignOutcome::digest`]: campaign::CampaignOutcome::digest

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod campaign;
pub mod oracle;
pub mod recipe;
pub mod shrink;

pub use artifact::{write_repro, ArtifactPaths};
pub use campaign::{run_campaign, CampaignConfig, CampaignOutcome, FindingReport};
pub use oracle::{Finding, FindingKind, InjectedBug, OracleConfig};
pub use recipe::{Recipe, SolverChoices};
pub use shrink::{ddmin, shrink_finding, ShrinkStats, ShrunkFinding};
