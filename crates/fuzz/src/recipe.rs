//! Seeded instance recipes: what one fuzz iteration generates.

use rescheck_cnf::{Cnf, SatStatus, SplitMix64};
use rescheck_obs::Json;
use rescheck_solver::SolverConfig;
use rescheck_workloads::{parity, pigeonhole, random_ksat, routing};
use std::fmt;

/// A reproducible description of one generated instance.
///
/// The recipe — not the formula — is what a repro artifact records: it is
/// tiny, diffable, and rebuilding it with [`Recipe::build`] yields the
/// exact same CNF on any machine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Recipe {
    /// Uniform random k-SAT via [`random_ksat::formula`].
    RandomKSat {
        /// Variable count.
        vars: usize,
        /// Clause count.
        clauses: usize,
        /// Clause width.
        k: usize,
        /// Generator seed.
        seed: u64,
    },
    /// Mixed-width random clauses (units through quaternary), the
    /// shape that exercises level-0 propagation and short conflicts.
    ClauseSoup {
        /// Variable count.
        vars: usize,
        /// Clause count.
        clauses: usize,
        /// Generator seed.
        seed: u64,
    },
    /// Pigeonhole principle (always UNSAT).
    Pigeonhole {
        /// Number of holes (pigeons = holes + 1).
        holes: usize,
    },
    /// Chained parity constraints (always UNSAT).
    Parity {
        /// Chain length.
        n: usize,
    },
    /// Over-congested FPGA channel routing (always UNSAT).
    Routing {
        /// Track count.
        tracks: usize,
        /// Easy (non-conflicting) nets added around the congestion.
        easy: usize,
        /// Generator seed.
        seed: u64,
    },
}

impl Recipe {
    /// Draws a random recipe, biased toward the random families that
    /// explore the most solver behaviours. `max_vars` bounds the
    /// variable count so iterations stay fast and brute-force
    /// cross-checking stays feasible on the small end.
    pub fn sample(rng: &mut SplitMix64, max_vars: usize) -> Recipe {
        let max_vars = max_vars.max(8);
        match rng.below(10) {
            // 40%: uniform k-SAT around and above the phase transition.
            0..=3 => {
                let vars = rng.range_usize(5..max_vars);
                let k = if vars > 3 && rng.gen_bool(0.25) { 2 } else { 3 };
                let ratio = 3.0 + rng.next_f64() * 3.5; // 3.0 .. 6.5
                let clauses = ((vars as f64 * ratio) as usize).max(k + 1);
                Recipe::RandomKSat {
                    vars,
                    clauses,
                    k,
                    seed: rng.next_u64(),
                }
            }
            // 30%: mixed-width soup.
            4..=6 => {
                let vars = rng.range_usize(4..max_vars);
                let clauses = rng.range_usize(vars * 2..vars * 7);
                Recipe::ClauseSoup {
                    vars,
                    clauses,
                    seed: rng.next_u64(),
                }
            }
            7 => Recipe::Pigeonhole {
                holes: rng.range_usize(2..6),
            },
            8 => Recipe::Parity {
                n: rng.range_usize(3..14),
            },
            _ => Recipe::Routing {
                tracks: rng.range_usize(2..5),
                easy: rng.range_usize(0..4),
                seed: rng.next_u64(),
            },
        }
    }

    /// Builds the formula, together with its status known by
    /// construction (`None` for the random families).
    pub fn build(&self) -> (Cnf, Option<SatStatus>) {
        match *self {
            Recipe::RandomKSat {
                vars,
                clauses,
                k,
                seed,
            } => (random_ksat::formula(vars, clauses, k, seed), None),
            Recipe::ClauseSoup {
                vars,
                clauses,
                seed,
            } => (clause_soup(vars, clauses, seed), None),
            Recipe::Pigeonhole { holes } => {
                let inst = pigeonhole::instance(holes);
                (inst.cnf, inst.expected)
            }
            Recipe::Parity { n } => {
                let inst = parity::chained_parity(n);
                (inst.cnf, inst.expected)
            }
            Recipe::Routing { tracks, easy, seed } => {
                let inst = routing::congested_channel(tracks, easy, seed);
                (inst.cnf, inst.expected)
            }
        }
    }

    /// The recipe as a JSON object for `repro.json`.
    pub fn to_json(&self) -> Json {
        let mut j = Json::object();
        match *self {
            Recipe::RandomKSat {
                vars,
                clauses,
                k,
                seed,
            } => {
                j.set("family", "random-ksat")
                    .set("vars", vars)
                    .set("clauses", clauses)
                    .set("k", k)
                    .set("seed", seed);
            }
            Recipe::ClauseSoup {
                vars,
                clauses,
                seed,
            } => {
                j.set("family", "clause-soup")
                    .set("vars", vars)
                    .set("clauses", clauses)
                    .set("seed", seed);
            }
            Recipe::Pigeonhole { holes } => {
                j.set("family", "pigeonhole").set("holes", holes);
            }
            Recipe::Parity { n } => {
                j.set("family", "parity").set("n", n);
            }
            Recipe::Routing { tracks, easy, seed } => {
                j.set("family", "routing")
                    .set("tracks", tracks)
                    .set("easy", easy)
                    .set("seed", seed);
            }
        }
        j
    }
}

impl fmt::Display for Recipe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Recipe::RandomKSat {
                vars,
                clauses,
                k,
                seed,
            } => write!(f, "ksat v={vars} c={clauses} k={k} s={seed:#x}"),
            Recipe::ClauseSoup {
                vars,
                clauses,
                seed,
            } => write!(f, "soup v={vars} c={clauses} s={seed:#x}"),
            Recipe::Pigeonhole { holes } => write!(f, "php h={holes}"),
            Recipe::Parity { n } => write!(f, "parity n={n}"),
            Recipe::Routing { tracks, easy, seed } => {
                write!(f, "routing t={tracks} e={easy} s={seed:#x}")
            }
        }
    }
}

/// Mixed-width random clauses: widths 1–4, distinct variables per
/// clause, random polarities. Unit clauses force level-0 assignments,
/// which is exactly the trace machinery worth fuzzing hardest.
fn clause_soup(vars: usize, clauses: usize, seed: u64) -> Cnf {
    let mut rng = SplitMix64::new(seed);
    let mut cnf = Cnf::with_vars(vars);
    for _ in 0..clauses {
        let width = 1 + (rng.below(8) as usize).min(3); // 1..=4, biased short
        let mut picked: Vec<usize> = Vec::with_capacity(width);
        while picked.len() < width.min(vars) {
            let v = rng.range_usize(0..vars);
            if !picked.contains(&v) {
                picked.push(v);
            }
        }
        let lits: Vec<i64> = picked
            .iter()
            .map(|&v| {
                let d = (v + 1) as i64;
                if rng.gen_bool(0.5) {
                    d
                } else {
                    -d
                }
            })
            .collect();
        cnf.add_dimacs_clause(&lits);
    }
    cnf
}

/// The solver knobs one iteration flips, kept small enough to encode in
/// a log line and a repro artifact.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SolverChoices {
    /// Keep learned clauses.
    pub learning: bool,
    /// Periodic learned-clause deletion.
    pub deletion: bool,
    /// Luby restarts.
    pub restarts: bool,
    /// Self-subsumption minimization of learned clauses.
    pub minimize: bool,
    /// Phase saving.
    pub phase_saving: bool,
}

impl SolverChoices {
    /// Draws a configuration, biased toward the default (all on) since
    /// that is the production path.
    pub fn sample(rng: &mut SplitMix64) -> SolverChoices {
        SolverChoices {
            learning: rng.gen_bool(0.85),
            deletion: rng.gen_bool(0.6),
            restarts: rng.gen_bool(0.7),
            minimize: rng.gen_bool(0.6),
            phase_saving: rng.gen_bool(0.6),
        }
    }

    /// Expands the choices into a full [`SolverConfig`] with the given
    /// conflict budget.
    pub fn to_config(self, conflict_limit: u64) -> SolverConfig {
        SolverConfig {
            learning: self.learning,
            clause_deletion: self.deletion,
            restarts: self.restarts,
            minimize_learned: self.minimize,
            phase_saving: self.phase_saving,
            conflict_limit: Some(conflict_limit),
            ..SolverConfig::default()
        }
    }

    /// Compact 5-letter tag for log lines (capital = on): `LDRMP`.
    pub fn tag(&self) -> String {
        let mut s = String::with_capacity(5);
        for (on, c) in [
            (self.learning, 'l'),
            (self.deletion, 'd'),
            (self.restarts, 'r'),
            (self.minimize, 'm'),
            (self.phase_saving, 'p'),
        ] {
            s.push(if on { c.to_ascii_uppercase() } else { c });
        }
        s
    }

    /// The choices as a JSON object for `repro.json`.
    pub fn to_json(&self) -> Json {
        let mut j = Json::object();
        j.set("learning", self.learning)
            .set("deletion", self.deletion)
            .set("restarts", self.restarts)
            .set("minimize", self.minimize)
            .set("phase_saving", self.phase_saving);
        j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recipes_build_deterministically() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..50 {
            let recipe = Recipe::sample(&mut rng, 20);
            let (a, status_a) = recipe.build();
            let (b, status_b) = recipe.build();
            assert_eq!(a, b, "{recipe}");
            assert_eq!(status_a, status_b);
            assert!(a.num_clauses() > 0, "{recipe}");
        }
    }

    #[test]
    fn sampling_is_deterministic_and_diverse() {
        let draw = |seed: u64| -> Vec<Recipe> {
            let mut rng = SplitMix64::new(seed);
            (0..40).map(|_| Recipe::sample(&mut rng, 24)).collect()
        };
        assert_eq!(draw(3), draw(3));
        let recipes = draw(3);
        let soups = recipes
            .iter()
            .filter(|r| matches!(r, Recipe::ClauseSoup { .. }))
            .count();
        let ksat = recipes
            .iter()
            .filter(|r| matches!(r, Recipe::RandomKSat { .. }))
            .count();
        assert!(soups > 0 && ksat > 0, "sampler lost a family");
    }

    #[test]
    fn soup_respects_bounds() {
        let cnf = clause_soup(9, 40, 5);
        assert_eq!(cnf.num_vars(), 9);
        assert_eq!(cnf.num_clauses(), 40);
        for clause in cnf.clauses() {
            assert!((1..=4).contains(&clause.len()));
        }
    }

    #[test]
    fn choices_tag_roundtrips_flags() {
        let all_on = SolverChoices {
            learning: true,
            deletion: true,
            restarts: true,
            minimize: true,
            phase_saving: true,
        };
        assert_eq!(all_on.tag(), "LDRMP");
        let cfg = all_on.to_config(100);
        assert_eq!(cfg.conflict_limit, Some(100));
        assert!(cfg.learning && cfg.clause_deletion);
        let off = SolverChoices {
            learning: false,
            deletion: false,
            restarts: false,
            minimize: false,
            phase_saving: false,
        };
        assert_eq!(off.tag(), "ldrmp");
    }
}
