//! Randomized tests over random circuits: simulation agrees with the
//! Tseitin encoding, rewrites preserve the function, miters of a circuit
//! against itself are constantly zero. Random circuits come from the
//! in-house [`SplitMix64`] generator (seeded loops, reproducible from
//! the printed seed); `heavy-tests` raises the case count.

use rescheck_circuit::{miter, rewrite, tseitin, Circuit, NodeId};
use rescheck_cnf::{Assignment, LBool, Lit, SplitMix64};

const CASES: u64 = if cfg!(feature = "heavy-tests") {
    256
} else {
    24
};

/// A recipe for building a random circuit: a list of gate selections over
/// previously created nodes.
#[derive(Clone, Debug)]
enum Op {
    Not(usize),
    And(usize, usize),
    Or(usize, usize),
    Xor(usize, usize),
    Mux(usize, usize, usize),
    Const(bool),
}

fn random_ops(rng: &mut SplitMix64, max_len: u64) -> Vec<Op> {
    let len = 1 + rng.below(max_len - 1) as usize;
    (0..len)
        .map(|_| {
            let pick = rng.range_usize(0..64);
            match rng.below(6) {
                0 => Op::Not(pick),
                1 => Op::And(pick, rng.range_usize(0..64)),
                2 => Op::Or(pick, rng.range_usize(0..64)),
                3 => Op::Xor(pick, rng.range_usize(0..64)),
                4 => Op::Mux(pick, rng.range_usize(0..64), rng.range_usize(0..64)),
                _ => Op::Const(rng.gen_bool(0.5)),
            }
        })
        .collect()
}

/// Builds a circuit from a recipe over `num_inputs` inputs; node operands
/// are selected modulo the nodes created so far.
fn build(num_inputs: usize, ops: &[Op]) -> Circuit {
    let mut c = Circuit::new();
    let mut nodes: Vec<NodeId> = (0..num_inputs).map(|_| c.input()).collect();
    for op in ops {
        let pick = |i: usize| nodes[i % nodes.len()];
        let node = match *op {
            Op::Not(a) => {
                let a = pick(a);
                c.not(a)
            }
            Op::And(a, b) => {
                let (a, b) = (pick(a), pick(b));
                c.and(a, b)
            }
            Op::Or(a, b) => {
                let (a, b) = (pick(a), pick(b));
                c.or(a, b)
            }
            Op::Xor(a, b) => {
                let (a, b) = (pick(a), pick(b));
                c.xor(a, b)
            }
            Op::Mux(s, a, b) => {
                let (s, a, b) = (pick(s), pick(a), pick(b));
                c.mux(s, a, b)
            }
            Op::Const(v) => c.constant(v),
        };
        nodes.push(node);
    }
    // Outputs: the last few nodes.
    let outs: Vec<NodeId> = nodes.iter().rev().take(3).copied().collect();
    c.set_outputs(outs);
    c
}

const NUM_INPUTS: usize = 5;

fn input_vector(bits: u64) -> Vec<bool> {
    (0..NUM_INPUTS).map(|i| bits >> i & 1 == 1).collect()
}

/// The golden property: for every input vector, an assignment that
/// sets each Tseitin variable to the simulated node value satisfies
/// the encoding.
#[test]
fn tseitin_matches_simulation() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(seed);
        let c = build(NUM_INPUTS, &random_ops(&mut rng, 40));
        let inputs = input_vector(rng.below(32));
        let values = c.evaluate_all(&inputs);
        let enc = tseitin::encode(&c);
        let mut assignment = Assignment::new(enc.cnf.num_vars());
        for (node, &var) in enc.node_vars.iter().enumerate() {
            assignment.set(var, LBool::from(values[node]));
        }
        assert!(enc.cnf.is_satisfied_by(&assignment), "seed {seed}");
    }
}

/// Constraining the encoding's inputs pins the outputs to the
/// simulated values: the opposite output value is unsatisfiable.
#[test]
fn encoded_outputs_are_functionally_determined() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(seed);
        let c = build(NUM_INPUTS, &random_ops(&mut rng, 18));
        let inputs = input_vector(rng.below(32));
        let sim = c.simulate(&inputs);
        let enc = tseitin::encode(&c);
        if enc.cnf.num_vars() > 14 {
            continue; // brute-force budget
        }
        let mut cnf = enc.cnf.clone();
        for (i, &v) in enc.input_vars.iter().enumerate() {
            cnf.add_clause([Lit::new(v, inputs[i])]);
        }
        // Force some output to differ from simulation: must be UNSAT.
        let mut flipped = cnf.clone();
        let out = enc.output_lits[0];
        flipped.add_clause([if sim[0] { !out } else { out }]);
        assert!(flipped.brute_force_status().is_unsat(), "seed {seed}");
        // And the simulated value is consistent: SAT.
        cnf.add_clause([if sim[0] { out } else { !out }]);
        assert!(cnf.brute_force_status().is_sat(), "seed {seed}");
    }
}

/// NAND and AIG rewrites preserve the function on all inputs.
#[test]
fn rewrites_preserve_function() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(seed);
        let c = build(NUM_INPUTS, &random_ops(&mut rng, 30));
        let nand = rewrite::to_nand_only(&c);
        let aig = rewrite::to_aig(&c);
        for bits in 0u64..1 << NUM_INPUTS {
            let inputs = input_vector(bits);
            let want = c.simulate(&inputs);
            assert_eq!(nand.simulate(&inputs), want.clone(), "seed {seed}");
            assert_eq!(aig.simulate(&inputs), want, "seed {seed}");
        }
    }
}

/// A miter of a circuit against itself is constantly zero.
#[test]
fn self_miter_is_zero() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(seed);
        let c = build(NUM_INPUTS, &random_ops(&mut rng, 30));
        let m = miter::miter(&c, &c).unwrap();
        let inputs = input_vector(rng.below(32));
        assert_eq!(m.simulate(&inputs), vec![false], "seed {seed}");
    }
}

/// Import into a fresh circuit preserves node semantics.
#[test]
fn import_preserves_semantics() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(seed);
        let c = build(NUM_INPUTS, &random_ops(&mut rng, 30));
        let mut outer = Circuit::new();
        let inputs_nodes: Vec<NodeId> = (0..NUM_INPUTS).map(|_| outer.input()).collect();
        let map = outer.import(&c, &inputs_nodes);
        outer.set_outputs(c.outputs().iter().map(|o| map[o.index()]));
        let inputs = input_vector(rng.below(32));
        assert_eq!(outer.simulate(&inputs), c.simulate(&inputs), "seed {seed}");
    }
}
