//! Property-based tests over random circuits: simulation agrees with the
//! Tseitin encoding, rewrites preserve the function, miters of a circuit
//! against itself are constantly zero.

use proptest::prelude::*;
use rescheck_circuit::{miter, rewrite, tseitin, Circuit, NodeId};
use rescheck_cnf::{Assignment, LBool, Lit};

/// A recipe for building a random circuit: a list of gate selections over
/// previously created nodes.
#[derive(Clone, Debug)]
enum Op {
    Not(usize),
    And(usize, usize),
    Or(usize, usize),
    Xor(usize, usize),
    Mux(usize, usize, usize),
    Const(bool),
}

fn ops_strategy(len: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0usize..64).prop_map(Op::Not),
            (0usize..64, 0usize..64).prop_map(|(a, b)| Op::And(a, b)),
            (0usize..64, 0usize..64).prop_map(|(a, b)| Op::Or(a, b)),
            (0usize..64, 0usize..64).prop_map(|(a, b)| Op::Xor(a, b)),
            (0usize..64, 0usize..64, 0usize..64).prop_map(|(s, a, b)| Op::Mux(s, a, b)),
            any::<bool>().prop_map(Op::Const),
        ],
        1..len,
    )
}

/// Builds a circuit from a recipe over `num_inputs` inputs; node operands
/// are selected modulo the nodes created so far.
fn build(num_inputs: usize, ops: &[Op]) -> Circuit {
    let mut c = Circuit::new();
    let mut nodes: Vec<NodeId> = (0..num_inputs).map(|_| c.input()).collect();
    for op in ops {
        let pick = |i: usize| nodes[i % nodes.len()];
        let node = match *op {
            Op::Not(a) => {
                let a = pick(a);
                c.not(a)
            }
            Op::And(a, b) => {
                let (a, b) = (pick(a), pick(b));
                c.and(a, b)
            }
            Op::Or(a, b) => {
                let (a, b) = (pick(a), pick(b));
                c.or(a, b)
            }
            Op::Xor(a, b) => {
                let (a, b) = (pick(a), pick(b));
                c.xor(a, b)
            }
            Op::Mux(s, a, b) => {
                let (s, a, b) = (pick(s), pick(a), pick(b));
                c.mux(s, a, b)
            }
            Op::Const(v) => c.constant(v),
        };
        nodes.push(node);
    }
    // Outputs: the last few nodes.
    let outs: Vec<NodeId> = nodes.iter().rev().take(3).copied().collect();
    c.set_outputs(outs);
    c
}

const NUM_INPUTS: usize = 5;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The golden property: for every input vector, an assignment that
    /// sets each Tseitin variable to the simulated node value satisfies
    /// the encoding.
    #[test]
    fn tseitin_matches_simulation(ops in ops_strategy(40), bits in 0u32..32) {
        let c = build(NUM_INPUTS, &ops);
        let inputs: Vec<bool> = (0..NUM_INPUTS).map(|i| bits >> i & 1 == 1).collect();
        let values = c.evaluate_all(&inputs);
        let enc = tseitin::encode(&c);
        let mut assignment = Assignment::new(enc.cnf.num_vars());
        for (node, &var) in enc.node_vars.iter().enumerate() {
            assignment.set(var, LBool::from(values[node]));
        }
        prop_assert!(enc.cnf.is_satisfied_by(&assignment));
    }

    /// Constraining the encoding's inputs pins the outputs to the
    /// simulated values: the opposite output value is unsatisfiable.
    #[test]
    fn encoded_outputs_are_functionally_determined(
        ops in ops_strategy(18),
        bits in 0u32..32,
    ) {
        let c = build(NUM_INPUTS, &ops);
        let inputs: Vec<bool> = (0..NUM_INPUTS).map(|i| bits >> i & 1 == 1).collect();
        let sim = c.simulate(&inputs);
        let enc = tseitin::encode(&c);
        if enc.cnf.num_vars() > 14 {
            return Ok(()); // brute-force budget
        }
        let mut cnf = enc.cnf.clone();
        for (i, &v) in enc.input_vars.iter().enumerate() {
            cnf.add_clause([Lit::new(v, inputs[i])]);
        }
        // Force some output to differ from simulation: must be UNSAT.
        let mut flipped = cnf.clone();
        let out = enc.output_lits[0];
        flipped.add_clause([if sim[0] { !out } else { out }]);
        prop_assert!(flipped.brute_force_status().is_unsat());
        // And the simulated value is consistent: SAT.
        cnf.add_clause([if sim[0] { out } else { !out }]);
        prop_assert!(cnf.brute_force_status().is_sat());
    }

    /// NAND and AIG rewrites preserve the function on all inputs.
    #[test]
    fn rewrites_preserve_function(ops in ops_strategy(30)) {
        let c = build(NUM_INPUTS, &ops);
        let nand = rewrite::to_nand_only(&c);
        let aig = rewrite::to_aig(&c);
        for bits in 0u32..1 << NUM_INPUTS {
            let inputs: Vec<bool> = (0..NUM_INPUTS).map(|i| bits >> i & 1 == 1).collect();
            let want = c.simulate(&inputs);
            prop_assert_eq!(nand.simulate(&inputs), want.clone());
            prop_assert_eq!(aig.simulate(&inputs), want);
        }
    }

    /// A miter of a circuit against itself is constantly zero.
    #[test]
    fn self_miter_is_zero(ops in ops_strategy(30), bits in 0u32..32) {
        let c = build(NUM_INPUTS, &ops);
        let m = miter::miter(&c, &c).unwrap();
        let inputs: Vec<bool> = (0..NUM_INPUTS).map(|i| bits >> i & 1 == 1).collect();
        prop_assert_eq!(m.simulate(&inputs), vec![false]);
    }

    /// Import into a fresh circuit preserves node semantics.
    #[test]
    fn import_preserves_semantics(ops in ops_strategy(30), bits in 0u32..32) {
        let c = build(NUM_INPUTS, &ops);
        let mut outer = Circuit::new();
        let inputs_nodes: Vec<NodeId> = (0..NUM_INPUTS).map(|_| outer.input()).collect();
        let map = outer.import(&c, &inputs_nodes);
        outer.set_outputs(c.outputs().iter().map(|o| map[o.index()]));
        let inputs: Vec<bool> = (0..NUM_INPUTS).map(|i| bits >> i & 1 == 1).collect();
        prop_assert_eq!(outer.simulate(&inputs), c.simulate(&inputs));
    }
}
