//! Miter construction for combinational equivalence checking.
//!
//! A *miter* feeds the same inputs to two circuits and ORs the pairwise
//! XORs of their outputs: its single output is 1 exactly on inputs where
//! the circuits disagree. Asserting that output and solving gives the
//! classic CEC formulation — UNSAT ⇔ equivalent — the source of the
//! paper's `c5135`/`c7225` instances.

use crate::tseitin::{self, EncodedCircuit};
use crate::{Circuit, NodeId};
use rescheck_cnf::Cnf;
use std::error::Error;
use std::fmt;

/// The two circuits of a miter do not have the same interface.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MiterInterfaceError {
    /// `(inputs, outputs)` of the left circuit.
    pub left: (usize, usize),
    /// `(inputs, outputs)` of the right circuit.
    pub right: (usize, usize),
}

impl fmt::Display for MiterInterfaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "miter interface mismatch: left has {} inputs/{} outputs, right has {}/{}",
            self.left.0, self.left.1, self.right.0, self.right.1
        )
    }
}

impl Error for MiterInterfaceError {}

/// Builds the miter of two circuits with identical interfaces.
///
/// The result has the same inputs and a single output that is 1 iff the
/// circuits disagree on some declared output.
///
/// # Errors
///
/// Fails if the circuits differ in input or output count.
///
/// # Examples
///
/// ```
/// use rescheck_circuit::{miter::miter, Circuit};
///
/// let mut a = Circuit::new();
/// let x = a.input();
/// let y = a.input();
/// let g = a.and(x, y);
/// let o = a.not(g); // NAND
/// a.set_outputs([o]);
///
/// let mut b = Circuit::new();
/// let x = b.input();
/// let y = b.input();
/// let nx = b.not(x);
/// let ny = b.not(y);
/// let o = b.or(nx, ny); // De Morgan: same function
/// b.set_outputs([o]);
///
/// let m = miter(&a, &b)?;
/// // The circuits are equivalent, so the miter is constantly 0.
/// for bits in 0..4u8 {
///     let inputs = [bits & 1 == 1, bits & 2 == 2];
///     assert_eq!(m.simulate(&inputs), vec![false]);
/// }
/// # Ok::<(), rescheck_circuit::miter::MiterInterfaceError>(())
/// ```
pub fn miter(left: &Circuit, right: &Circuit) -> Result<Circuit, MiterInterfaceError> {
    if left.num_inputs() != right.num_inputs() || left.outputs().len() != right.outputs().len() {
        return Err(MiterInterfaceError {
            left: (left.num_inputs(), left.outputs().len()),
            right: (right.num_inputs(), right.outputs().len()),
        });
    }
    let mut m = Circuit::new();
    let inputs: Vec<NodeId> = m.input_word(left.num_inputs());
    let lmap = m.import(left, &inputs);
    let rmap = m.import(right, &inputs);
    let diffs: Vec<NodeId> = left
        .outputs()
        .iter()
        .zip(right.outputs())
        .map(|(&lo, &ro)| m.xor(lmap[lo.index()], rmap[ro.index()]))
        .collect();
    let any = m.or_all(diffs);
    m.set_outputs([any]);
    Ok(m)
}

/// Encodes an equivalence-checking problem as CNF: UNSAT ⇔ equivalent.
///
/// This is [`miter`] + Tseitin + a unit clause asserting the miter
/// output.
///
/// # Errors
///
/// Fails if the circuits differ in input or output count.
pub fn equivalence_cnf(left: &Circuit, right: &Circuit) -> Result<Cnf, MiterInterfaceError> {
    let m = miter(left, right)?;
    let EncodedCircuit {
        mut cnf,
        output_lits,
        ..
    } = tseitin::encode(&m);
    cnf.add_clause([output_lits[0]]);
    Ok(cnf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nand_circuit() -> Circuit {
        let mut c = Circuit::new();
        let x = c.input();
        let y = c.input();
        let g = c.nand(x, y);
        c.set_outputs([g]);
        c
    }

    fn demorgan_circuit() -> Circuit {
        let mut c = Circuit::new();
        let x = c.input();
        let y = c.input();
        let nx = c.not(x);
        let ny = c.not(y);
        let g = c.or(nx, ny);
        c.set_outputs([g]);
        c
    }

    fn broken_circuit() -> Circuit {
        let mut c = Circuit::new();
        let x = c.input();
        let y = c.input();
        let g = c.or(x, y); // not NAND
        c.set_outputs([g]);
        c
    }

    #[test]
    fn equivalent_circuits_make_a_constant_zero_miter() {
        let m = miter(&nand_circuit(), &demorgan_circuit()).unwrap();
        for bits in 0..4u8 {
            assert_eq!(m.simulate(&[bits & 1 == 1, bits & 2 == 2]), vec![false]);
        }
    }

    #[test]
    fn inequivalent_circuits_light_the_miter() {
        let m = miter(&nand_circuit(), &broken_circuit()).unwrap();
        // They differ on (1,1): NAND=0, OR=1.
        assert_eq!(m.simulate(&[true, true]), vec![true]);
        assert_eq!(m.simulate(&[true, false]), vec![false]);
    }

    #[test]
    fn equivalence_cnf_unsat_for_equivalent_sat_for_broken() {
        let eq = equivalence_cnf(&nand_circuit(), &demorgan_circuit()).unwrap();
        assert!(eq.brute_force_status().is_unsat());

        let ne = equivalence_cnf(&nand_circuit(), &broken_circuit()).unwrap();
        assert!(ne.brute_force_status().is_sat());
    }

    #[test]
    fn interface_mismatch_is_an_error() {
        let mut one_in = Circuit::new();
        let a = one_in.input();
        one_in.set_outputs([a]);
        let err = miter(&nand_circuit(), &one_in).unwrap_err();
        assert_eq!(err.left, (2, 1));
        assert_eq!(err.right, (1, 1));
        assert!(err.to_string().contains("mismatch"));
    }

    #[test]
    fn multi_output_miters_compare_all_outputs() {
        let build = |swap: bool| {
            let mut c = Circuit::new();
            let x = c.input();
            let y = c.input();
            let g1 = c.and(x, y);
            let g2 = c.or(x, y);
            if swap {
                c.set_outputs([g2, g1]);
            } else {
                c.set_outputs([g1, g2]);
            }
            c
        };
        // Identical ordering: equivalent.
        let same = equivalence_cnf(&build(false), &build(false)).unwrap();
        assert!(same.brute_force_status().is_unsat());
        // Swapped outputs: inequivalent.
        let swapped = equivalence_cnf(&build(false), &build(true)).unwrap();
        assert!(swapped.brute_force_status().is_sat());
    }
}
