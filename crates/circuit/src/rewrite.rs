//! Structural rewriting passes.
//!
//! Equivalence checking is only meaningful between *structurally
//! different* circuits. Technology mapping is the classic source of such
//! differences, and these passes emulate it: [`to_nand_only`] maps every
//! gate onto 2-input NANDs (the universal gate of standard-cell
//! libraries), and [`to_aig`] maps onto the AND/NOT basis of and-inverter
//! graphs. Both preserve the function exactly, so a miter against the
//! original must be UNSAT.

use crate::{Circuit, Gate, NodeId};

/// Rewrites a circuit through 2-input NAND decompositions.
///
/// Mappings: `¬a = nand(a,a)`, `a∧b = ¬nand(a,b)`, `a∨b =
/// nand(¬a,¬b)`, `a⊕b = nand(nand(a,n), nand(b,n))` with `n = nand(a,b)`
/// — the textbook 4-NAND XOR. The builder's double-negation folding may
/// simplify some of the introduced inverter pairs; what is guaranteed is
/// that the result computes the same function over the AND/NOT basis
/// with no OR or XOR gates left, in a different structure.
///
/// # Examples
///
/// ```
/// use rescheck_circuit::{rewrite, Circuit};
///
/// let mut c = Circuit::new();
/// let a = c.input();
/// let b = c.input();
/// let g = c.xor(a, b);
/// c.set_outputs([g]);
///
/// let nand = rewrite::to_nand_only(&c);
/// for bits in 0..4u8 {
///     let inputs = [bits & 1 == 1, bits & 2 == 2];
///     assert_eq!(nand.simulate(&inputs), c.simulate(&inputs));
/// }
/// ```
pub fn to_nand_only(circuit: &Circuit) -> Circuit {
    let mut out = Circuit::new();
    let mut map: Vec<NodeId> = Vec::with_capacity(circuit.num_nodes());
    // NAND without the constant-folding shortcuts collapsing it back
    // into AND/NOT structure: build it from raw gates.
    for (_, gate) in circuit.nodes() {
        let new_id = match gate {
            Gate::Input(_) => out.input(),
            Gate::Const(v) => out.constant(v),
            Gate::Not(a) => {
                let a = map[a.index()];
                nand(&mut out, a, a)
            }
            Gate::And(a, b) => {
                let (a, b) = (map[a.index()], map[b.index()]);
                let n = nand(&mut out, a, b);
                nand(&mut out, n, n)
            }
            Gate::Or(a, b) => {
                let (a, b) = (map[a.index()], map[b.index()]);
                let na = nand(&mut out, a, a);
                let nb = nand(&mut out, b, b);
                nand(&mut out, na, nb)
            }
            Gate::Xor(a, b) => {
                let (a, b) = (map[a.index()], map[b.index()]);
                let n = nand(&mut out, a, b);
                let l = nand(&mut out, a, n);
                let r = nand(&mut out, b, n);
                nand(&mut out, l, r)
            }
        };
        map.push(new_id);
    }
    out.set_outputs(circuit.outputs().iter().map(|o| map[o.index()]));
    out
}

/// Rewrites a circuit into the AND/NOT basis of and-inverter graphs.
///
/// `a∨b = ¬(¬a∧¬b)` and `a⊕b = ¬(¬(a∧¬b)∧¬(¬a∧b))`.
pub fn to_aig(circuit: &Circuit) -> Circuit {
    let mut out = Circuit::new();
    let mut map: Vec<NodeId> = Vec::with_capacity(circuit.num_nodes());
    for (_, gate) in circuit.nodes() {
        let new_id = match gate {
            Gate::Input(_) => out.input(),
            Gate::Const(v) => out.constant(v),
            Gate::Not(a) => out.not(map[a.index()]),
            Gate::And(a, b) => out.and(map[a.index()], map[b.index()]),
            Gate::Or(a, b) => {
                let na = out.not(map[a.index()]);
                let nb = out.not(map[b.index()]);
                let both = out.and(na, nb);
                out.not(both)
            }
            Gate::Xor(a, b) => {
                let (a, b) = (map[a.index()], map[b.index()]);
                let nb = out.not(b);
                let na = out.not(a);
                let l = out.and(a, nb);
                let r = out.and(na, b);
                let nl = out.not(l);
                let nr = out.not(r);
                let both = out.and(nl, nr);
                out.not(both)
            }
        };
        map.push(new_id);
    }
    out.set_outputs(circuit.outputs().iter().map(|o| map[o.index()]));
    out
}

/// A NAND built without letting folding reconstruct AND+NOT sharing.
fn nand(c: &mut Circuit, a: NodeId, b: NodeId) -> NodeId {
    let g = c.and(a, b);
    c.not(g)
}

/// Counts the gates of each kind, for structural-difference assertions.
///
/// Returns `(not, and, or, xor)` counts.
pub fn gate_profile(circuit: &Circuit) -> (usize, usize, usize, usize) {
    let mut profile = (0, 0, 0, 0);
    for (_, gate) in circuit.nodes() {
        match gate {
            Gate::Not(_) => profile.0 += 1,
            Gate::And(..) => profile.1 += 1,
            Gate::Or(..) => profile.2 += 1,
            Gate::Xor(..) => profile.3 += 1,
            _ => {}
        }
    }
    profile
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith;

    fn sample_circuit() -> Circuit {
        let mut c = Circuit::new();
        let a = c.input_word(3);
        let b = c.input_word(3);
        let sum = arith::ripple_carry_add(&mut c, &a, &b);
        let eqv = arith::equal(&mut c, &a, &b);
        let mut outs = sum;
        outs.push(eqv);
        c.set_outputs(outs);
        c
    }

    fn assert_equivalent_by_simulation(a: &Circuit, b: &Circuit) {
        assert_eq!(a.num_inputs(), b.num_inputs());
        let n = a.num_inputs();
        assert!(n <= 12, "exhaustive check only");
        for bits in 0u32..1 << n {
            let inputs: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(
                a.simulate(&inputs),
                b.simulate(&inputs),
                "inputs {inputs:?}"
            );
        }
    }

    #[test]
    fn nand_rewrite_preserves_function() {
        let c = sample_circuit();
        let nand = to_nand_only(&c);
        assert_equivalent_by_simulation(&c, &nand);
        // NAND-only: no OR or XOR gates remain.
        let (_, _, ors, xors) = gate_profile(&nand);
        assert_eq!(ors, 0);
        assert_eq!(xors, 0);
    }

    #[test]
    fn aig_rewrite_preserves_function() {
        let c = sample_circuit();
        let aig = to_aig(&c);
        assert_equivalent_by_simulation(&c, &aig);
        let (_, _, ors, xors) = gate_profile(&aig);
        assert_eq!(ors, 0);
        assert_eq!(xors, 0);
    }

    #[test]
    fn rewrites_change_structure() {
        let c = sample_circuit();
        let nand = to_nand_only(&c);
        let aig = to_aig(&c);
        assert_ne!(gate_profile(&c), gate_profile(&nand));
        assert_ne!(gate_profile(&nand), gate_profile(&aig));
        assert!(nand.num_nodes() > c.num_nodes());
    }

    #[test]
    fn rewriting_constants_and_trivial_circuits() {
        let mut c = Circuit::new();
        let t = c.constant(true);
        let a = c.input();
        let g = c.and(a, t); // folds to a
        c.set_outputs([g, t]);
        let nand = to_nand_only(&c);
        assert_equivalent_by_simulation(&c, &nand);
        let aig = to_aig(&c);
        assert_equivalent_by_simulation(&c, &aig);
    }

    #[test]
    fn miter_of_original_vs_nand_is_unsat() {
        use crate::miter::equivalence_cnf;
        let c = sample_circuit();
        let nand = to_nand_only(&c);
        let cnf = equivalence_cnf(&c, &nand).unwrap();
        // Too many variables for brute force; rely on a quick bound:
        // the miter simulates to 0 on a sample of inputs and the CNF is
        // well-formed. Full UNSAT proof lives in the workloads tests.
        assert!(cnf.num_clauses() > 0);
        let m = crate::miter::miter(&c, &nand).unwrap();
        for bits in [0u32, 1, 7, 21, 63] {
            let inputs: Vec<bool> = (0..m.num_inputs()).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(m.simulate(&inputs), vec![false]);
        }
    }
}
