//! Sequential circuits and bounded model checking (BMC) unrolling.
//!
//! A sequential circuit is a combinational *step function* whose first
//! inputs are the current state bits; it produces next-state bits and a
//! `bad` indicator. Unrolling `k` steps from the initial state and asking
//! "is `bad` reachable?" yields the classic BMC CNF (Biere et al., the
//! source of the paper's `barrel` and `longmult` instances): SAT means a
//! counterexample exists within `k` steps; UNSAT — the checkable claim —
//! means the property holds up to the bound.

use crate::tseitin::{self, EncodedCircuit};
use crate::{Circuit, NodeId};
use rescheck_cnf::Cnf;

/// A finite-state machine described by a combinational step circuit.
///
/// Input convention of the step circuit: inputs `0..state_width` are the
/// current state, the remaining inputs are free (primary) inputs of that
/// step.
///
/// # Examples
///
/// A 3-bit one-hot token ring whose token can never disappear:
///
/// ```
/// use rescheck_circuit::seq::SeqCircuit;
/// use rescheck_circuit::Circuit;
///
/// let mut step = Circuit::new();
/// let s: Vec<_> = (0..3).map(|_| step.input()).collect();
/// // Rotate the token.
/// let next = vec![s[2], s[0], s[1]];
/// // Bad: no bit set.
/// let any = step.or_all(s.iter().copied());
/// let bad = step.not(any);
/// let seq = SeqCircuit::new(step, 3, next, vec![true, false, false], bad);
/// let cnf = seq.unroll_to_cnf(8);
/// // The property holds, so the BMC formula is UNSAT (provable!).
/// assert!(cnf.num_clauses() > 0);
/// ```
#[derive(Clone, Debug)]
pub struct SeqCircuit {
    step: Circuit,
    state_width: usize,
    next_state: Vec<NodeId>,
    init: Vec<bool>,
    bad: NodeId,
}

impl SeqCircuit {
    /// Creates a sequential circuit.
    ///
    /// # Panics
    ///
    /// Panics if the widths are inconsistent: `next_state` and `init`
    /// must have `state_width` entries, and the step circuit must have at
    /// least `state_width` inputs.
    pub fn new(
        step: Circuit,
        state_width: usize,
        next_state: Vec<NodeId>,
        init: Vec<bool>,
        bad: NodeId,
    ) -> Self {
        assert_eq!(next_state.len(), state_width, "next-state width");
        assert_eq!(init.len(), state_width, "initial-state width");
        assert!(
            step.num_inputs() >= state_width,
            "step circuit must take the state as its first inputs"
        );
        SeqCircuit {
            step,
            state_width,
            next_state,
            init,
            bad,
        }
    }

    /// Width of the state register.
    pub fn state_width(&self) -> usize {
        self.state_width
    }

    /// Number of free (non-state) inputs consumed per step.
    pub fn free_inputs_per_step(&self) -> usize {
        self.step.num_inputs() - self.state_width
    }

    /// Unrolls `k` steps into a combinational circuit whose single output
    /// is 1 iff `bad` holds at **some** step `0..=k`.
    ///
    /// The free inputs of each step become fresh primary inputs of the
    /// unrolled circuit (step-major order).
    pub fn unroll(&self, k: usize) -> Circuit {
        let mut c = Circuit::new();
        let mut state: Vec<NodeId> = self.init.iter().map(|&b| c.constant(b)).collect();
        let mut bads: Vec<NodeId> = Vec::with_capacity(k + 1);
        for _ in 0..=k {
            let mut input_map = state.clone();
            for _ in 0..self.free_inputs_per_step() {
                input_map.push(c.input());
            }
            let map = c.import(&self.step, &input_map);
            bads.push(map[self.bad.index()]);
            state = self.next_state.iter().map(|&n| map[n.index()]).collect();
        }
        let any_bad = c.or_all(bads);
        c.set_outputs([any_bad]);
        c
    }

    /// Unrolls `k` steps and encodes "`bad` is reachable within `k`
    /// steps" as CNF: **UNSAT ⇔ the property holds up to the bound.**
    pub fn unroll_to_cnf(&self, k: usize) -> Cnf {
        let unrolled = self.unroll(k);
        let EncodedCircuit {
            mut cnf,
            output_lits,
            ..
        } = tseitin::encode(&unrolled);
        cnf.add_clause([output_lits[0]]);
        cnf
    }

    /// Simulates `steps` transitions from the initial state with all free
    /// inputs driven by `drive`, returning `true` if `bad` ever held.
    pub fn simulate_bad(&self, steps: usize, mut drive: impl FnMut(usize, usize) -> bool) -> bool {
        let mut state = self.init.clone();
        for t in 0..=steps {
            let mut inputs = state.clone();
            for i in 0..self.free_inputs_per_step() {
                inputs.push(drive(t, i));
            }
            let values = self.step.evaluate_all(&inputs);
            if values[self.bad.index()] {
                return true;
            }
            state = self.next_state.iter().map(|&n| values[n.index()]).collect();
        }
        false
    }
}

/// Builds the token-ring example: an `n`-bit one-hot register rotated
/// left or right each cycle under the control of a free *direction*
/// input. The property "exactly one token" is an invariant either way,
/// so the BMC formula is UNSAT at every bound — a compact analogue of
/// the paper's `barrel` family. The free input keeps the unrolling from
/// constant-folding away.
pub fn token_ring(n: usize) -> SeqCircuit {
    assert!(n >= 2, "a ring needs at least two positions");
    let mut step = Circuit::new();
    let s: Vec<NodeId> = (0..n).map(|_| step.input()).collect();
    let dir = step.input();
    let next: Vec<NodeId> = (0..n)
        .map(|i| {
            let left = s[(i + n - 1) % n];
            let right = s[(i + 1) % n];
            step.mux(dir, left, right)
        })
        .collect();
    // bad ⇔ popcount(s) ≠ 1, expressed as: no bit set, or two bits set.
    let any = step.or_all(s.iter().copied());
    let none = step.not(any);
    let mut two = step.constant(false);
    for i in 0..n {
        for j in i + 1..n {
            let both = step.and(s[i], s[j]);
            two = step.or(two, both);
        }
    }
    let bad = step.or(none, two);
    let mut init = vec![false; n];
    init[0] = true;
    SeqCircuit::new(step, n, next, init, bad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_ring_invariant_holds_in_simulation() {
        let ring = token_ring(5);
        assert_eq!(ring.state_width(), 5);
        assert_eq!(ring.free_inputs_per_step(), 1);
        // Any direction schedule keeps the token alive.
        assert!(!ring.simulate_bad(20, |_, _| false));
        assert!(!ring.simulate_bad(20, |_, _| true));
        assert!(!ring.simulate_bad(20, |t, _| t % 3 == 0));
    }

    #[test]
    fn token_ring_bmc_is_unsat() {
        use rescheck_solver::{Solver, SolverConfig};
        let ring = token_ring(4);
        for k in [0, 1, 3, 6] {
            let cnf = ring.unroll_to_cnf(k);
            let mut solver = Solver::from_cnf(&cnf, SolverConfig::default());
            assert!(
                solver.solve().is_unsat(),
                "token ring must be safe at bound {k}"
            );
        }
    }

    #[test]
    fn broken_ring_is_caught_by_bmc() {
        use rescheck_solver::{Solver, SolverConfig};
        // A ring that *drops* the token after wrapping: next[0] = false
        // instead of s[n-1]; a free input keeps the unrolling honest even
        // though it is ignored.
        let n = 3;
        let mut step = Circuit::new();
        let s: Vec<NodeId> = (0..n).map(|_| step.input()).collect();
        let _unused = step.input();
        let zero = step.constant(false);
        let next = vec![zero, s[0], s[1]];
        let any = step.or_all(s.iter().copied());
        let bad = step.not(any);
        let mut init = vec![false; n];
        init[0] = true;
        let seq = SeqCircuit::new(step, n, next, init, bad);

        // Token vanishes after 3 steps.
        assert!(seq.simulate_bad(5, |_, _| false));
        let safe = seq.unroll_to_cnf(1);
        assert!(Solver::from_cnf(&safe, SolverConfig::default())
            .solve()
            .is_unsat());
        let unsafe_ = seq.unroll_to_cnf(4);
        assert!(Solver::from_cnf(&unsafe_, SolverConfig::default())
            .solve()
            .is_sat());
    }

    #[test]
    fn free_inputs_become_fresh_unrolled_inputs() {
        // A 1-bit register that loads its free input each cycle; bad when
        // the register is 1. Reachable iff some input is 1.
        let mut step = Circuit::new();
        let s = step.input();
        let load = step.input();
        let seq = SeqCircuit::new(step, 1, vec![load], vec![false], s);
        let unrolled = seq.unroll(3);
        assert_eq!(unrolled.num_inputs(), 4); // one free input per step
        let cnf = seq.unroll_to_cnf(3);
        assert!(cnf.brute_force_status().is_sat());
        assert!(seq.simulate_bad(3, |_, _| true));
        assert!(!seq.simulate_bad(3, |_, _| false));
    }

    #[test]
    #[should_panic(expected = "next-state width")]
    fn inconsistent_widths_panic() {
        let mut step = Circuit::new();
        let s = step.input();
        SeqCircuit::new(step, 2, vec![s], vec![false, false], s);
    }

    #[test]
    fn unrolled_bmc_matches_simulation_for_token_ring() {
        let ring = token_ring(3);
        let unrolled = ring.unroll(6);
        assert_eq!(unrolled.num_inputs(), 7); // one direction bit per step
        for pattern in [0u64, 0b1010101, 0b1111111, 0b0011001] {
            let inputs: Vec<bool> = (0..7).map(|i| pattern >> i & 1 == 1).collect();
            assert_eq!(unrolled.simulate(&inputs), vec![false]);
        }
    }
}
