//! Arithmetic and datapath blocks, in structurally different flavours.
//!
//! Equivalence-checking miters are only interesting when the two sides
//! compute the same function *differently*; this module provides pairs:
//! ripple-carry vs. carry-select adders, array vs. shift-add multipliers,
//! plus barrel rotators, comparators and population counts. All words are
//! LSB-first.

use crate::{Circuit, NodeId};

/// A full adder: returns `(sum, carry_out)`.
pub fn full_adder(c: &mut Circuit, a: NodeId, b: NodeId, cin: NodeId) -> (NodeId, NodeId) {
    let axb = c.xor(a, b);
    let sum = c.xor(axb, cin);
    let t1 = c.and(a, b);
    let t2 = c.and(axb, cin);
    let cout = c.or(t1, t2);
    (sum, cout)
}

/// Ripple-carry addition; the result has `max(len(a), len(b)) + 1` bits.
///
/// # Examples
///
/// ```
/// use rescheck_circuit::{arith, Circuit};
///
/// let mut c = Circuit::new();
/// let a = c.input_word(3);
/// let b = c.input_word(3);
/// let sum = arith::ripple_carry_add(&mut c, &a, &b);
/// c.set_outputs(sum);
/// // 3 + 5 = 8 → LSB-first 0001
/// let out = c.simulate(&[true, true, false, true, false, true]);
/// assert_eq!(out, vec![false, false, false, true]);
/// ```
pub fn ripple_carry_add(c: &mut Circuit, a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
    let width = a.len().max(b.len());
    let zero = c.constant(false);
    let mut carry = zero;
    let mut sum = Vec::with_capacity(width + 1);
    for i in 0..width {
        let ai = a.get(i).copied().unwrap_or(zero);
        let bi = b.get(i).copied().unwrap_or(zero);
        let (s, cout) = full_adder(c, ai, bi, carry);
        sum.push(s);
        carry = cout;
    }
    sum.push(carry);
    sum
}

/// Carry-select addition: the word is split into blocks; each block is
/// computed for both carry-in values and the real carry selects via
/// muxes. Structurally very different from ripple-carry, functionally
/// identical.
///
/// # Panics
///
/// Panics if `block` is zero.
pub fn carry_select_add(c: &mut Circuit, a: &[NodeId], b: &[NodeId], block: usize) -> Vec<NodeId> {
    assert!(block > 0, "block size must be positive");
    let width = a.len().max(b.len());
    let zero = c.constant(false);
    let one = c.constant(true);
    let mut sum = Vec::with_capacity(width + 1);
    let mut carry = zero;

    let mut start = 0;
    while start < width {
        let end = (start + block).min(width);
        // Compute the block twice: carry-in 0 and carry-in 1.
        let mut variants = Vec::with_capacity(2);
        for cin in [zero, one] {
            let mut blk_sum = Vec::with_capacity(end - start);
            let mut blk_carry = cin;
            for i in start..end {
                let ai = a.get(i).copied().unwrap_or(zero);
                let bi = b.get(i).copied().unwrap_or(zero);
                let (s, cout) = full_adder(c, ai, bi, blk_carry);
                blk_sum.push(s);
                blk_carry = cout;
            }
            variants.push((blk_sum, blk_carry));
        }
        let (sum0, carry0) = variants.swap_remove(0);
        let (sum1, carry1) = variants.swap_remove(0);
        for (s0, s1) in sum0.into_iter().zip(sum1) {
            sum.push(c.mux(carry, s1, s0));
        }
        carry = c.mux(carry, carry1, carry0);
        start = end;
    }
    sum.push(carry);
    sum
}

/// Array multiplier: the grid of partial products is reduced row by row
/// with ripple adders. Result has `len(a) + len(b)` bits.
pub fn array_multiply(c: &mut Circuit, a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
    let zero = c.constant(false);
    let out_width = a.len() + b.len();
    let mut acc: Vec<NodeId> = vec![zero; out_width];
    for (j, &bj) in b.iter().enumerate() {
        // Row j: partial products a[i] & b[j], shifted left by j.
        let mut row: Vec<NodeId> = vec![zero; j];
        for &ai in a {
            row.push(c.and(ai, bj));
        }
        let summed = ripple_carry_add(c, &acc, &row);
        acc = summed.into_iter().take(out_width).collect();
    }
    acc
}

/// Shift-add multiplier: iterates over multiplier bits, conditionally
/// adding the shifted multiplicand — the combinational unrolling of the
/// classic sequential multiplier (the paper's `longmult` family is the
/// BMC unrolling of exactly this structure, xor-heavy and famously hard
/// for resolution).
pub fn shift_add_multiply(c: &mut Circuit, a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
    let zero = c.constant(false);
    let out_width = a.len() + b.len();
    let mut acc: Vec<NodeId> = vec![zero; out_width];
    for (j, &bj) in b.iter().enumerate() {
        // addend = (a << j) if bj else 0, realized with AND-masking after
        // the mux-free gating of each bit.
        let mut addend: Vec<NodeId> = vec![zero; j];
        for &ai in a {
            addend.push(c.and(ai, bj));
        }
        // Unlike the array multiplier, accumulate with carry-select
        // blocks so the two multipliers differ structurally.
        let summed = carry_select_add(c, &acc, &addend, 4);
        acc = summed.into_iter().take(out_width).collect();
    }
    acc
}

/// Barrel rotator: rotates `word` left by the amount encoded in `shift`
/// (LSB-first), as a logarithmic stack of mux stages.
pub fn barrel_rotate_left(c: &mut Circuit, word: &[NodeId], shift: &[NodeId]) -> Vec<NodeId> {
    let n = word.len();
    let mut current: Vec<NodeId> = word.to_vec();
    for (stage, &s) in shift.iter().enumerate() {
        let amount = 1usize << stage;
        if n == 0 {
            break;
        }
        let rotated: Vec<NodeId> = (0..n).map(|i| current[(i + n - amount % n) % n]).collect();
        current = (0..n).map(|i| c.mux(s, rotated[i], current[i])).collect();
    }
    current
}

/// Word equality: a single node that is 1 iff `a == b` bitwise.
///
/// # Panics
///
/// Panics if the words have different widths.
pub fn equal(c: &mut Circuit, a: &[NodeId], b: &[NodeId]) -> NodeId {
    assert_eq!(a.len(), b.len(), "equality needs equal widths");
    let bits: Vec<NodeId> = a.iter().zip(b).map(|(&x, &y)| c.xnor(x, y)).collect();
    c.and_all(bits)
}

/// Population count of a word, as a `ceil(log2(n+1))`-bit result built
/// from a tree of adders.
pub fn popcount(c: &mut Circuit, word: &[NodeId]) -> Vec<NodeId> {
    if word.is_empty() {
        return vec![c.constant(false)];
    }
    let mut words: Vec<Vec<NodeId>> = word.iter().map(|&b| vec![b]).collect();
    while words.len() > 1 {
        let mut next = Vec::with_capacity(words.len().div_ceil(2));
        let mut iter = words.into_iter();
        while let Some(a) = iter.next() {
            match iter.next() {
                Some(b) => next.push(ripple_carry_add(c, &a, &b)),
                None => next.push(a),
            }
        }
        words = next;
    }
    words.pop().expect("at least one word")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{bits_to_u64, u64_to_bits};

    fn exhaustive_inputs(bits: usize) -> impl Iterator<Item = u64> {
        0..(1u64 << bits)
    }

    #[test]
    fn adders_match_integer_addition() {
        let w = 4;
        let mut rc = Circuit::new();
        let a1 = rc.input_word(w);
        let b1 = rc.input_word(w);
        let s1 = ripple_carry_add(&mut rc, &a1, &b1);
        rc.set_outputs(s1);

        let mut cs = Circuit::new();
        let a2 = cs.input_word(w);
        let b2 = cs.input_word(w);
        let s2 = carry_select_add(&mut cs, &a2, &b2, 2);
        cs.set_outputs(s2);

        for x in exhaustive_inputs(w) {
            for y in exhaustive_inputs(w) {
                let mut inputs = u64_to_bits(x, w);
                inputs.extend(u64_to_bits(y, w));
                let expected = x + y;
                assert_eq!(bits_to_u64(&rc.simulate(&inputs)), expected, "rc {x}+{y}");
                assert_eq!(bits_to_u64(&cs.simulate(&inputs)), expected, "cs {x}+{y}");
            }
        }
    }

    #[test]
    fn mixed_width_addition() {
        let mut c = Circuit::new();
        let a = c.input_word(2);
        let b = c.input_word(4);
        let s = ripple_carry_add(&mut c, &a, &b);
        c.set_outputs(s);
        for x in exhaustive_inputs(2) {
            for y in exhaustive_inputs(4) {
                let mut inputs = u64_to_bits(x, 2);
                inputs.extend(u64_to_bits(y, 4));
                assert_eq!(bits_to_u64(&c.simulate(&inputs)), x + y);
            }
        }
    }

    #[test]
    fn multipliers_match_integer_multiplication() {
        let w = 3;
        let mut am = Circuit::new();
        let a1 = am.input_word(w);
        let b1 = am.input_word(w);
        let p1 = array_multiply(&mut am, &a1, &b1);
        am.set_outputs(p1);

        let mut sm = Circuit::new();
        let a2 = sm.input_word(w);
        let b2 = sm.input_word(w);
        let p2 = shift_add_multiply(&mut sm, &a2, &b2);
        sm.set_outputs(p2);

        for x in exhaustive_inputs(w) {
            for y in exhaustive_inputs(w) {
                let mut inputs = u64_to_bits(x, w);
                inputs.extend(u64_to_bits(y, w));
                assert_eq!(bits_to_u64(&am.simulate(&inputs)), x * y, "array {x}*{y}");
                assert_eq!(
                    bits_to_u64(&sm.simulate(&inputs)),
                    x * y,
                    "shiftadd {x}*{y}"
                );
            }
        }
    }

    #[test]
    fn barrel_rotator_rotates() {
        let n = 8usize;
        let sbits = 3;
        let mut c = Circuit::new();
        let word = c.input_word(n);
        let shift = c.input_word(sbits);
        let rot = barrel_rotate_left(&mut c, &word, &shift);
        c.set_outputs(rot);
        for w in [0b1011_0010u64, 0b0000_0001, 0b1111_0000] {
            for s in 0..n as u64 {
                let mut inputs = u64_to_bits(w, n);
                inputs.extend(u64_to_bits(s, sbits));
                let got = bits_to_u64(&c.simulate(&inputs));
                let expected = ((w << s) | (w >> (n as u64 - s).min(63))) & 0xff;
                let expected = if s == 0 { w } else { expected };
                assert_eq!(got, expected, "rotate {w:#010b} by {s}");
            }
        }
    }

    #[test]
    fn equality_comparator() {
        let w = 3;
        let mut c = Circuit::new();
        let a = c.input_word(w);
        let b = c.input_word(w);
        let eq = equal(&mut c, &a, &b);
        c.set_outputs([eq]);
        for x in exhaustive_inputs(w) {
            for y in exhaustive_inputs(w) {
                let mut inputs = u64_to_bits(x, w);
                inputs.extend(u64_to_bits(y, w));
                assert_eq!(c.simulate(&inputs), vec![x == y]);
            }
        }
    }

    #[test]
    fn popcount_counts() {
        let n = 6;
        let mut c = Circuit::new();
        let word = c.input_word(n);
        let count = popcount(&mut c, &word);
        c.set_outputs(count);
        for bits in exhaustive_inputs(n) {
            let inputs = u64_to_bits(bits, n);
            assert_eq!(
                bits_to_u64(&c.simulate(&inputs)),
                bits.count_ones() as u64,
                "popcount of {bits:#08b}"
            );
        }
    }

    #[test]
    fn popcount_of_empty_word_is_zero() {
        let mut c = Circuit::new();
        let count = popcount(&mut c, &[]);
        c.set_outputs(count);
        assert_eq!(c.simulate(&[]), vec![false]);
    }

    #[test]
    fn full_adder_truth_table() {
        let mut c = Circuit::new();
        let a = c.input();
        let b = c.input();
        let cin = c.input();
        let (s, cout) = full_adder(&mut c, a, b, cin);
        c.set_outputs([s, cout]);
        for bits in 0..8u64 {
            let inputs = u64_to_bits(bits, 3);
            let total = inputs.iter().filter(|&&x| x).count();
            let out = c.simulate(&inputs);
            assert_eq!(out[0], total % 2 == 1);
            assert_eq!(out[1], total >= 2);
        }
    }
}
