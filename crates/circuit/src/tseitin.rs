//! The Tseitin transformation: circuits to equisatisfiable CNF.
//!
//! Each node gets a fresh CNF variable constrained to equal the node's
//! function of its operands; the resulting formula is satisfiable exactly
//! by the circuit's consistent valuations. This is how every circuit-
//! level problem (equivalence, BMC, routing feasibility) becomes a SAT
//! instance.

use crate::{Circuit, Gate};
use rescheck_cnf::{Cnf, Lit, Var};

/// The result of encoding a circuit.
///
/// # Examples
///
/// ```
/// use rescheck_circuit::{tseitin, Circuit};
///
/// let mut c = Circuit::new();
/// let a = c.input();
/// let b = c.input();
/// let g = c.and(a, b);
/// c.set_outputs([g]);
///
/// let enc = tseitin::encode(&c);
/// let mut cnf = enc.cnf;
/// cnf.add_clause([enc.output_lits[0]]); // force the AND to be 1
/// assert!(cnf.num_clauses() >= 4);
/// ```
#[derive(Clone, Debug)]
pub struct EncodedCircuit {
    /// The clauses defining every gate.
    pub cnf: Cnf,
    /// CNF variable of each node, indexed by node ID.
    pub node_vars: Vec<Var>,
    /// CNF variables of the primary inputs, in input order.
    pub input_vars: Vec<Var>,
    /// The positive literal of each declared output, in output order.
    pub output_lits: Vec<Lit>,
}

impl EncodedCircuit {
    /// The positive literal of an arbitrary node.
    pub fn lit_of(&self, node: crate::NodeId) -> Lit {
        Lit::positive(self.node_vars[node.index()])
    }
}

/// Encodes a circuit into CNF with one variable per node.
///
/// Inputs become free variables; every gate contributes its defining
/// clauses; constants contribute unit clauses. Add unit clauses on
/// [`EncodedCircuit::output_lits`] to constrain outputs.
pub fn encode(circuit: &Circuit) -> EncodedCircuit {
    let mut cnf = Cnf::new();
    let mut node_vars = Vec::with_capacity(circuit.num_nodes());
    let mut input_vars = vec![Var::new(0); circuit.num_inputs()];

    for (_, gate) in circuit.nodes() {
        let y = cnf.fresh_var();
        node_vars.push(y);
        let yl = Lit::positive(y);
        match gate {
            Gate::Input(n) => {
                input_vars[n as usize] = y;
            }
            Gate::Const(v) => {
                cnf.add_clause([if v { yl } else { !yl }]);
            }
            Gate::Not(a) => {
                let al = Lit::positive(node_vars[a.index()]);
                cnf.add_clause([yl, al]);
                cnf.add_clause([!yl, !al]);
            }
            Gate::And(a, b) => {
                let al = Lit::positive(node_vars[a.index()]);
                let bl = Lit::positive(node_vars[b.index()]);
                cnf.add_clause([!yl, al]);
                cnf.add_clause([!yl, bl]);
                cnf.add_clause([yl, !al, !bl]);
            }
            Gate::Or(a, b) => {
                let al = Lit::positive(node_vars[a.index()]);
                let bl = Lit::positive(node_vars[b.index()]);
                cnf.add_clause([yl, !al]);
                cnf.add_clause([yl, !bl]);
                cnf.add_clause([!yl, al, bl]);
            }
            Gate::Xor(a, b) => {
                let al = Lit::positive(node_vars[a.index()]);
                let bl = Lit::positive(node_vars[b.index()]);
                cnf.add_clause([!yl, al, bl]);
                cnf.add_clause([!yl, !al, !bl]);
                cnf.add_clause([yl, al, !bl]);
                cnf.add_clause([yl, !al, bl]);
            }
        }
    }

    let output_lits = circuit
        .outputs()
        .iter()
        .map(|&o| Lit::positive(node_vars[o.index()]))
        .collect();

    EncodedCircuit {
        cnf,
        node_vars,
        input_vars,
        output_lits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescheck_cnf::{Assignment, LBool};

    /// Exhaustively: for every input vector, the CNF restricted to those
    /// inputs is satisfied exactly by the node values the simulator
    /// computes.
    fn exhaustively_consistent(circuit: &Circuit) {
        let enc = encode(circuit);
        let n_in = circuit.num_inputs();
        for bits in 0u32..1 << n_in {
            let inputs: Vec<bool> = (0..n_in).map(|i| bits >> i & 1 == 1).collect();
            let values = circuit.evaluate_all(&inputs);
            let mut assignment = Assignment::new(enc.cnf.num_vars());
            for (node, &var) in enc.node_vars.iter().enumerate() {
                assignment.set(var, LBool::from(values[node]));
            }
            assert!(
                enc.cnf.is_satisfied_by(&assignment),
                "simulation values must satisfy the encoding for inputs {inputs:?}"
            );
        }
    }

    #[test]
    fn all_gate_types_encode_consistently() {
        let mut c = Circuit::new();
        let a = c.input();
        let b = c.input();
        let t = c.constant(true);
        let f = c.constant(false);
        let g1 = c.and(a, b);
        let g2 = c.or(g1, a);
        let g3 = c.xor(g2, b);
        let g4 = c.not(g3);
        let g5 = c.mux(a, g4, g2);
        let g6 = c.and(t, g5); // folds to g5
        let g7 = c.or(f, g6); // folds to g6
        c.set_outputs([g7]);
        exhaustively_consistent(&c);
    }

    #[test]
    fn flipping_an_output_makes_the_encoding_unsat_under_fixed_inputs() {
        // For (a AND b) with inputs fixed to (1,1), asserting output = 0
        // must be unsatisfiable — checked by brute force.
        let mut c = Circuit::new();
        let a = c.input();
        let b = c.input();
        let g = c.and(a, b);
        c.set_outputs([g]);
        let enc = encode(&c);
        let mut cnf = enc.cnf.clone();
        cnf.add_clause([Lit::positive(enc.input_vars[0])]);
        cnf.add_clause([Lit::positive(enc.input_vars[1])]);
        cnf.add_clause([!enc.output_lits[0]]);
        assert!(cnf.brute_force_status().is_unsat());
    }

    #[test]
    fn free_inputs_leave_the_encoding_satisfiable() {
        let mut c = Circuit::new();
        let a = c.input();
        let b = c.input();
        let g = c.xor(a, b);
        c.set_outputs([g]);
        let enc = encode(&c);
        let mut cnf = enc.cnf.clone();
        cnf.add_clause([enc.output_lits[0]]);
        assert!(cnf.brute_force_status().is_sat());
    }

    #[test]
    fn lit_of_matches_node_vars() {
        let mut c = Circuit::new();
        let a = c.input();
        let enc = encode(&c);
        assert_eq!(enc.lit_of(a), Lit::positive(enc.node_vars[a.index()]));
        assert_eq!(enc.input_vars[0], enc.node_vars[a.index()]);
    }
}
