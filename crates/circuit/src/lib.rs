//! Gate-level circuit substrate for the rescheck toolkit.
//!
//! The benchmarks of Zhang & Malik (DATE 2003) come from EDA flows:
//! combinational equivalence checking, microprocessor verification and
//! bounded model checking. This crate provides the machinery those flows
//! rest on, built from scratch:
//!
//! - [`Circuit`]: a hash-consed combinational netlist of two-input gates,
//! - [`Circuit::simulate`]: reference simulation,
//! - [`tseitin::encode`]: the Tseitin transformation to CNF,
//! - [`miter`]: miter construction for equivalence checking,
//! - [`arith`]: adders, multipliers, shifters and comparators in several
//!   structurally different implementations (so miters are non-trivial),
//! - [`seq`]: sequential circuits and *k*-step unrolling for BMC.
//!
//! # Examples
//!
//! Prove by SAT that two adder implementations agree on 4-bit inputs:
//!
//! ```
//! use rescheck_circuit::{arith, miter::miter, tseitin, Circuit};
//!
//! let mut a = Circuit::new();
//! let xa = a.input_word(4);
//! let ya = a.input_word(4);
//! let sum_a = arith::ripple_carry_add(&mut a, &xa, &ya);
//! a.set_outputs(sum_a);
//!
//! let mut b = Circuit::new();
//! let xb = b.input_word(4);
//! let yb = b.input_word(4);
//! let sum_b = arith::carry_select_add(&mut b, &xb, &yb, 2);
//! b.set_outputs(sum_b);
//!
//! let m = miter(&a, &b).expect("same interface");
//! let encoded = tseitin::encode(&m);
//! let mut cnf = encoded.cnf;
//! // Assert the miter output (difference detector) is 1…
//! cnf.add_clause([encoded.output_lits[0]]);
//! // …then any SAT solver will report UNSAT ⇔ the adders are equivalent.
//! assert!(cnf.num_clauses() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arith;
pub mod fault;
pub mod miter;
mod netlist;
pub mod rewrite;
pub mod seq;
mod sim;
pub mod tseitin;

pub use netlist::{Circuit, Gate, NodeId};
pub use sim::{bits_to_u64, u64_to_bits};
