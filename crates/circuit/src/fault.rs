//! Stuck-at fault injection for ATPG.
//!
//! Automatic test pattern generation — the first EDA application the
//! paper's introduction lists — asks, for a *stuck-at* fault on a net:
//! is there an input vector on which the faulty circuit differs from the
//! good one? Encoded as a good-vs-faulty miter, SAT yields the test
//! pattern; **UNSAT proves the fault untestable** (the logic is
//! redundant), and that is exactly the kind of claim the resolution
//! checker exists to validate.

use crate::{Circuit, Gate, NodeId};

/// Returns a copy of `circuit` with `node` stuck at `value`.
///
/// Every fanout of `node` sees the constant instead; the rest of the
/// circuit is rebuilt around it (the builder's folding may simplify the
/// faulty cone, which does not change the faulty function).
///
/// # Panics
///
/// Panics if `node` is out of range for the circuit.
///
/// # Examples
///
/// ```
/// use rescheck_circuit::{fault, Circuit};
///
/// let mut c = Circuit::new();
/// let a = c.input();
/// let b = c.input();
/// let g = c.and(a, b);
/// c.set_outputs([g]);
///
/// let faulty = fault::inject_stuck_at(&c, g, true); // output stuck at 1
/// assert_eq!(faulty.simulate(&[false, false]), vec![true]);
/// assert_eq!(c.simulate(&[false, false]), vec![false]);
/// ```
pub fn inject_stuck_at(circuit: &Circuit, node: NodeId, value: bool) -> Circuit {
    assert!(node.index() < circuit.num_nodes(), "fault site in range");
    let mut out = Circuit::new();
    let mut map: Vec<NodeId> = Vec::with_capacity(circuit.num_nodes());
    for (id, gate) in circuit.nodes() {
        let rebuilt = match gate {
            Gate::Input(_) => out.input(),
            Gate::Const(v) => out.constant(v),
            Gate::Not(a) => out.not(map[a.index()]),
            Gate::And(a, b) => out.and(map[a.index()], map[b.index()]),
            Gate::Or(a, b) => out.or(map[a.index()], map[b.index()]),
            Gate::Xor(a, b) => out.xor(map[a.index()], map[b.index()]),
        };
        // The faulty net presents the stuck value to all of its fanout.
        let mapped = if id == node {
            out.constant(value)
        } else {
            rebuilt
        };
        map.push(mapped);
    }
    out.set_outputs(circuit.outputs().iter().map(|o| map[o.index()]));
    out
}

/// All internal (non-input, non-constant) nodes — candidate fault sites.
pub fn fault_sites(circuit: &Circuit) -> Vec<NodeId> {
    circuit
        .nodes()
        .filter(|(_, g)| !matches!(g, Gate::Input(_) | Gate::Const(_)))
        .map(|(id, _)| id)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::miter::equivalence_cnf;

    /// out = mux(s, x, x): both branches carry the same signal, so the
    /// select is redundant — the canonical untestable-fault example.
    fn redundant_select() -> (Circuit, NodeId) {
        let mut c = Circuit::new();
        let s = c.input();
        let x = c.input();
        // Build the mux by hand so the select survives folding:
        // (s ∧ x) ∨ (¬s ∧ x).
        let t1 = c.and(s, x);
        let ns = c.not(s);
        let t2 = c.and(ns, x);
        let out = c.or(t1, t2);
        c.set_outputs([out]);
        (c, ns)
    }

    #[test]
    fn stuck_output_changes_the_function() {
        let mut c = Circuit::new();
        let a = c.input();
        let b = c.input();
        let g = c.xor(a, b);
        c.set_outputs([g]);
        let faulty = inject_stuck_at(&c, g, false);
        assert_eq!(faulty.simulate(&[true, false]), vec![false]);
        assert_eq!(c.simulate(&[true, false]), vec![true]);
        // The fault is testable: the miter is satisfiable.
        let cnf = equivalence_cnf(&c, &faulty).unwrap();
        assert!(cnf.brute_force_status().is_sat());
    }

    #[test]
    fn redundant_fault_is_untestable() {
        let (c, ns) = redundant_select();
        // ¬s stuck at 1 leaves out = (s∧x) ∨ x = x = the good function.
        let faulty = inject_stuck_at(&c, ns, true);
        let cnf = equivalence_cnf(&c, &faulty).unwrap();
        assert!(
            cnf.brute_force_status().is_unsat(),
            "fault must be untestable"
        );
    }

    #[test]
    fn stuck_input_feeds_all_fanout() {
        let mut c = Circuit::new();
        let a = c.input();
        let b = c.input();
        let g1 = c.and(a, b);
        let g2 = c.or(a, b);
        c.set_outputs([g1, g2]);
        let faulty = inject_stuck_at(&c, a, true);
        // With a stuck at 1: g1 = b, g2 = 1.
        assert_eq!(faulty.simulate(&[false, true]), vec![true, true]);
        assert_eq!(faulty.simulate(&[false, false]), vec![false, true]);
        // Input count is preserved (the stuck input still exists).
        assert_eq!(faulty.num_inputs(), 2);
    }

    #[test]
    fn fault_sites_exclude_inputs_and_constants() {
        let mut c = Circuit::new();
        let a = c.input();
        let t = c.constant(true);
        let g = c.xor(a, t);
        c.set_outputs([g]);
        let sites = fault_sites(&c);
        assert!(sites.contains(&g));
        assert!(!sites.contains(&a));
        assert!(!sites.contains(&t));
    }

    #[test]
    #[should_panic(expected = "fault site in range")]
    fn foreign_node_id_panics() {
        // A NodeId minted by a larger circuit is out of range for a
        // smaller one.
        let mut big = Circuit::new();
        let ins = big.input_word(8);
        let foreign = big.and_all(ins);
        let mut small = Circuit::new();
        let a = small.input();
        small.set_outputs([a]);
        inject_stuck_at(&small, foreign, false);
    }
}
