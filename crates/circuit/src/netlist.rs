//! Combinational netlists.

use std::collections::HashMap;
use std::fmt;

/// A handle to a node (gate, input or constant) of a [`Circuit`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// The raw index of the node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A gate or leaf of the netlist.
///
/// All logic is built from two-input primitives; wider gates are folded
/// chains. Operand IDs always precede the gate's own ID, so the node list
/// is a topological order by construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Gate {
    /// The `n`-th primary input.
    Input(u32),
    /// A constant.
    Const(bool),
    /// Negation.
    Not(NodeId),
    /// Conjunction.
    And(NodeId, NodeId),
    /// Disjunction.
    Or(NodeId, NodeId),
    /// Exclusive or.
    Xor(NodeId, NodeId),
}

/// A combinational circuit: a DAG of two-input gates with hash-consing.
///
/// Structurally identical gates are shared automatically and constant
/// operands are folded, which keeps Tseitin CNFs small when circuits are
/// unrolled many times.
///
/// # Examples
///
/// ```
/// use rescheck_circuit::Circuit;
///
/// let mut c = Circuit::new();
/// let a = c.input();
/// let b = c.input();
/// let g1 = c.and(a, b);
/// let g2 = c.and(a, b);
/// assert_eq!(g1, g2); // hash-consed
/// c.set_outputs([g1]);
/// assert_eq!(c.simulate(&[true, true]), vec![true]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Circuit {
    nodes: Vec<Gate>,
    num_inputs: u32,
    outputs: Vec<NodeId>,
    cache: HashMap<Gate, NodeId>,
}

impl Circuit {
    /// Creates an empty circuit.
    pub fn new() -> Self {
        Circuit::default()
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs as usize
    }

    /// Number of nodes (inputs, constants and gates).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The gate at `id`.
    pub fn gate(&self, id: NodeId) -> Gate {
        self.nodes[id.index()]
    }

    /// All nodes in topological order.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, Gate)> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, &g)| (NodeId(i as u32), g))
    }

    /// The designated outputs, in order.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// Declares the circuit's outputs.
    pub fn set_outputs(&mut self, outputs: impl IntoIterator<Item = NodeId>) {
        self.outputs = outputs.into_iter().collect();
    }

    fn push(&mut self, gate: Gate) -> NodeId {
        if let Some(&id) = self.cache.get(&gate) {
            return id;
        }
        let id = NodeId(u32::try_from(self.nodes.len()).expect("netlist too large"));
        self.nodes.push(gate);
        self.cache.insert(gate, id);
        id
    }

    /// Adds a fresh primary input.
    pub fn input(&mut self) -> NodeId {
        let gate = Gate::Input(self.num_inputs);
        self.num_inputs += 1;
        // Inputs are all distinct; bypass the cache key (each Input(n) is
        // unique anyway).
        let id = NodeId(u32::try_from(self.nodes.len()).expect("netlist too large"));
        self.nodes.push(gate);
        id
    }

    /// Adds `width` fresh inputs and returns them LSB-first.
    pub fn input_word(&mut self, width: usize) -> Vec<NodeId> {
        (0..width).map(|_| self.input()).collect()
    }

    /// The constant node for `value`.
    pub fn constant(&mut self, value: bool) -> NodeId {
        self.push(Gate::Const(value))
    }

    /// Returns the constant value of a node, if it is a constant.
    pub fn const_value(&self, id: NodeId) -> Option<bool> {
        match self.gate(id) {
            Gate::Const(v) => Some(v),
            _ => None,
        }
    }

    /// Negation, with folding.
    pub fn not(&mut self, a: NodeId) -> NodeId {
        match self.gate(a) {
            Gate::Const(v) => self.constant(!v),
            Gate::Not(inner) => inner,
            _ => self.push(Gate::Not(a)),
        }
    }

    /// Conjunction, with constant folding and operand normalization.
    pub fn and(&mut self, a: NodeId, b: NodeId) -> NodeId {
        match (self.const_value(a), self.const_value(b)) {
            (Some(false), _) | (_, Some(false)) => self.constant(false),
            (Some(true), _) => b,
            (_, Some(true)) => a,
            _ if a == b => a,
            _ => {
                let (x, y) = if a <= b { (a, b) } else { (b, a) };
                self.push(Gate::And(x, y))
            }
        }
    }

    /// Disjunction, with constant folding and operand normalization.
    pub fn or(&mut self, a: NodeId, b: NodeId) -> NodeId {
        match (self.const_value(a), self.const_value(b)) {
            (Some(true), _) | (_, Some(true)) => self.constant(true),
            (Some(false), _) => b,
            (_, Some(false)) => a,
            _ if a == b => a,
            _ => {
                let (x, y) = if a <= b { (a, b) } else { (b, a) };
                self.push(Gate::Or(x, y))
            }
        }
    }

    /// Exclusive or, with constant folding and operand normalization.
    pub fn xor(&mut self, a: NodeId, b: NodeId) -> NodeId {
        match (self.const_value(a), self.const_value(b)) {
            (Some(false), _) => b,
            (_, Some(false)) => a,
            (Some(true), _) => self.not(b),
            (_, Some(true)) => self.not(a),
            _ if a == b => self.constant(false),
            _ => {
                let (x, y) = if a <= b { (a, b) } else { (b, a) };
                self.push(Gate::Xor(x, y))
            }
        }
    }

    /// NAND.
    pub fn nand(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let g = self.and(a, b);
        self.not(g)
    }

    /// NOR.
    pub fn nor(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let g = self.or(a, b);
        self.not(g)
    }

    /// XNOR (equivalence).
    pub fn xnor(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let g = self.xor(a, b);
        self.not(g)
    }

    /// 2:1 multiplexer: `if s { a } else { b }`.
    pub fn mux(&mut self, s: NodeId, a: NodeId, b: NodeId) -> NodeId {
        let ta = self.and(s, a);
        let ns = self.not(s);
        let tb = self.and(ns, b);
        self.or(ta, tb)
    }

    /// Conjunction over many nodes (`true` for an empty list).
    pub fn and_all(&mut self, nodes: impl IntoIterator<Item = NodeId>) -> NodeId {
        let mut acc = self.constant(true);
        for n in nodes {
            acc = self.and(acc, n);
        }
        acc
    }

    /// Disjunction over many nodes (`false` for an empty list).
    pub fn or_all(&mut self, nodes: impl IntoIterator<Item = NodeId>) -> NodeId {
        let mut acc = self.constant(false);
        for n in nodes {
            acc = self.or(acc, n);
        }
        acc
    }

    /// Imports every node of `other`, mapping its inputs through
    /// `input_map` (node IDs in `self`, indexed by the other circuit's
    /// input number). Returns the mapping from `other`'s node IDs to the
    /// corresponding IDs in `self`.
    ///
    /// Used by miters and sequential unrolling.
    ///
    /// # Panics
    ///
    /// Panics if `input_map` is shorter than `other`'s input count.
    pub fn import(&mut self, other: &Circuit, input_map: &[NodeId]) -> Vec<NodeId> {
        assert!(
            input_map.len() >= other.num_inputs(),
            "input map covers all inputs"
        );
        let mut map: Vec<NodeId> = Vec::with_capacity(other.nodes.len());
        for (_, gate) in other.nodes() {
            let new_id = match gate {
                Gate::Input(n) => input_map[n as usize],
                Gate::Const(v) => self.constant(v),
                Gate::Not(a) => self.not(map[a.index()]),
                Gate::And(a, b) => self.and(map[a.index()], map[b.index()]),
                Gate::Or(a, b) => self.or(map[a.index()], map[b.index()]),
                Gate::Xor(a, b) => self.xor(map[a.index()], map[b.index()]),
            };
            map.push(new_id);
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_consing_shares_gates() {
        let mut c = Circuit::new();
        let a = c.input();
        let b = c.input();
        assert_eq!(c.and(a, b), c.and(b, a)); // normalized operand order
        assert_eq!(c.or(a, b), c.or(a, b));
        assert_ne!(c.and(a, b), c.or(a, b));
    }

    #[test]
    fn constant_folding() {
        let mut c = Circuit::new();
        let a = c.input();
        let t = c.constant(true);
        let f = c.constant(false);
        assert_eq!(c.and(a, t), a);
        assert_eq!(c.and(a, f), f);
        assert_eq!(c.or(a, f), a);
        assert_eq!(c.or(a, t), t);
        assert_eq!(c.xor(a, f), a);
        let na = c.not(a);
        assert_eq!(c.xor(a, t), na);
        assert_eq!(c.not(na), a); // double negation
        assert_eq!(c.and(a, a), a);
        let ff = c.xor(a, a);
        assert_eq!(c.const_value(ff), Some(false));
    }

    #[test]
    fn inputs_are_distinct() {
        let mut c = Circuit::new();
        let a = c.input();
        let b = c.input();
        assert_ne!(a, b);
        assert_eq!(c.num_inputs(), 2);
    }

    #[test]
    fn derived_gates() {
        let mut c = Circuit::new();
        let a = c.input();
        let b = c.input();
        let nand = c.nand(a, b);
        let nor = c.nor(a, b);
        let xnor = c.xnor(a, b);
        let mux = c.mux(a, b, nand);
        c.set_outputs([nand, nor, xnor, mux]);
        // Truth table check via simulation.
        for (x, y) in [(false, false), (false, true), (true, false), (true, true)] {
            let out = c.simulate(&[x, y]);
            assert_eq!(out[0], !(x && y), "nand {x} {y}");
            assert_eq!(out[1], !(x || y), "nor {x} {y}");
            assert_eq!(out[2], x == y, "xnor {x} {y}");
            assert_eq!(out[3], if x { y } else { !(x && y) }, "mux {x} {y}");
        }
    }

    #[test]
    fn and_all_or_all() {
        let mut c = Circuit::new();
        let ins = c.input_word(3);
        let all = c.and_all(ins.iter().copied());
        let any = c.or_all(ins.iter().copied());
        c.set_outputs([all, any]);
        assert_eq!(c.simulate(&[true, true, true]), vec![true, true]);
        assert_eq!(c.simulate(&[true, false, true]), vec![false, true]);
        assert_eq!(c.simulate(&[false, false, false]), vec![false, false]);

        let mut d = Circuit::new();
        let empty_and = d.and_all([]);
        let empty_or = d.or_all([]);
        assert_eq!(d.const_value(empty_and), Some(true));
        assert_eq!(d.const_value(empty_or), Some(false));
    }

    #[test]
    fn import_remaps_inputs() {
        let mut inner = Circuit::new();
        let a = inner.input();
        let b = inner.input();
        let g = inner.xor(a, b);
        inner.set_outputs([g]);

        let mut outer = Circuit::new();
        let x = outer.input();
        let y = outer.input();
        let nx = outer.not(x);
        let map = outer.import(&inner, &[nx, y]);
        let out = map[g.index()];
        outer.set_outputs([out]);
        // out = ¬x ⊕ y
        assert_eq!(outer.simulate(&[false, false]), vec![true]);
        assert_eq!(outer.simulate(&[true, false]), vec![false]);
        assert_eq!(outer.simulate(&[true, true]), vec![true]);
    }

    #[test]
    #[should_panic(expected = "input map")]
    fn import_with_short_map_panics() {
        let mut inner = Circuit::new();
        inner.input();
        inner.input();
        let mut outer = Circuit::new();
        let x = outer.input();
        outer.import(&inner, &[x]);
    }

    #[test]
    fn node_ids_are_topological() {
        let mut c = Circuit::new();
        let a = c.input();
        let b = c.input();
        let g1 = c.and(a, b);
        let g2 = c.or(g1, a);
        for (id, gate) in c.nodes() {
            match gate {
                Gate::Not(x) => assert!(x < id),
                Gate::And(x, y) | Gate::Or(x, y) | Gate::Xor(x, y) => {
                    assert!(x < id && y < id);
                }
                _ => {}
            }
        }
        assert!(g1 < g2);
    }
}
