//! Reference simulation of circuits.

use crate::{Circuit, Gate, NodeId};

impl Circuit {
    /// Evaluates every node under the given input values and returns the
    /// output values, in output order.
    ///
    /// This is the golden reference the Tseitin encoding is tested
    /// against.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from [`Circuit::num_inputs`].
    pub fn simulate(&self, inputs: &[bool]) -> Vec<bool> {
        let values = self.evaluate_all(inputs);
        self.outputs().iter().map(|&o| values[o.index()]).collect()
    }

    /// Evaluates every node and returns the full value vector, indexed by
    /// node ID.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from [`Circuit::num_inputs`].
    pub fn evaluate_all(&self, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(
            inputs.len(),
            self.num_inputs(),
            "simulation needs a value for every input"
        );
        let mut values: Vec<bool> = Vec::with_capacity(self.num_nodes());
        for (_, gate) in self.nodes() {
            let v = match gate {
                Gate::Input(n) => inputs[n as usize],
                Gate::Const(c) => c,
                Gate::Not(a) => !values[a.index()],
                Gate::And(a, b) => values[a.index()] && values[b.index()],
                Gate::Or(a, b) => values[a.index()] || values[b.index()],
                Gate::Xor(a, b) => values[a.index()] != values[b.index()],
            };
            values.push(v);
        }
        values
    }

    /// Evaluates one node under the given inputs.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from [`Circuit::num_inputs`].
    pub fn evaluate_node(&self, node: NodeId, inputs: &[bool]) -> bool {
        self.evaluate_all(inputs)[node.index()]
    }
}

/// Interprets a slice of bools (LSB first) as an unsigned integer.
///
/// # Examples
///
/// ```
/// assert_eq!(rescheck_circuit::bits_to_u64(&[true, false, true]), 5);
/// ```
pub fn bits_to_u64(bits: &[bool]) -> u64 {
    bits.iter()
        .enumerate()
        .fold(0, |acc, (i, &b)| acc | (u64::from(b) << i))
}

/// Writes the low `width` bits of `value` into a bool vector (LSB first).
///
/// # Examples
///
/// ```
/// assert_eq!(rescheck_circuit::u64_to_bits(5, 4), [true, false, true, false]);
/// ```
pub fn u64_to_bits(value: u64, width: usize) -> Vec<bool> {
    (0..width).map(|i| value >> i & 1 == 1).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulates_simple_logic() {
        let mut c = Circuit::new();
        let a = c.input();
        let b = c.input();
        let g = c.xor(a, b);
        let n = c.not(g);
        c.set_outputs([g, n]);
        assert_eq!(c.simulate(&[true, false]), vec![true, false]);
        assert_eq!(c.simulate(&[true, true]), vec![false, true]);
    }

    #[test]
    fn evaluate_node_matches_outputs() {
        let mut c = Circuit::new();
        let a = c.input();
        let b = c.input();
        let g = c.and(a, b);
        c.set_outputs([g]);
        assert!(c.evaluate_node(g, &[true, true]));
        assert!(!c.evaluate_node(g, &[true, false]));
    }

    #[test]
    #[should_panic(expected = "every input")]
    fn wrong_input_count_panics() {
        let mut c = Circuit::new();
        c.input();
        c.simulate(&[]);
    }

    #[test]
    fn bit_conversions_roundtrip() {
        for v in [0u64, 1, 5, 255, 256, 0xdead] {
            assert_eq!(bits_to_u64(&u64_to_bits(v, 16)), v & 0xffff);
        }
        assert_eq!(u64_to_bits(5, 4), vec![true, false, true, false]);
    }
}
