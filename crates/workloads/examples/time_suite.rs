//! Timing probe for suite tuning (not part of the public examples).
use rescheck_solver::{Solver, SolverConfig};
use rescheck_workloads::paper_suite;
use std::time::Instant;

fn main() {
    for inst in paper_suite() {
        let t = Instant::now();
        let mut solver = Solver::from_cnf(&inst.cnf, SolverConfig::default());
        let result = solver.solve();
        println!(
            "{:40} {:>8} vars {:>9} clauses  {:>10} learned  {:>9.2?}  {}",
            inst.name,
            inst.num_vars(),
            inst.num_clauses(),
            solver.stats().learned_clauses,
            t.elapsed(),
            result
        );
    }
}
