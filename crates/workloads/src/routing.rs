//! FPGA channel-routing feasibility (the paper's `too_largefs3w8v262`,
//! after Nam, Sakallah & Rutenbar).
//!
//! A routing channel has `tracks` horizontal tracks; each net occupies a
//! column interval and must be assigned to exactly one track; nets with
//! overlapping intervals cannot share a track. If some column is crossed
//! by more nets than there are tracks, the channel is unroutable — and
//! the unsat core identifies the congested column, which is exactly the
//! designer-facing application the paper describes in §4.

use crate::{Family, Instance};
use rescheck_cnf::{Cnf, SatStatus, SplitMix64, Var};

/// A net: a half-open column interval `[left, right)` it must cross.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Net {
    /// Leftmost column (inclusive).
    pub left: u32,
    /// Rightmost column (exclusive).
    pub right: u32,
}

impl Net {
    /// Creates a net spanning `[left, right)`.
    ///
    /// # Panics
    ///
    /// Panics unless `left < right`.
    pub fn new(left: u32, right: u32) -> Self {
        assert!(left < right, "a net spans at least one column");
        Net { left, right }
    }

    /// Whether two nets cross a common column.
    pub fn overlaps(&self, other: &Net) -> bool {
        self.left < other.right && other.left < self.right
    }
}

/// Encodes channel routing: variable `x[n][t]` means net `n` uses track
/// `t`; every net gets exactly one track; overlapping nets get distinct
/// tracks.
pub fn routing_cnf(nets: &[Net], tracks: usize) -> Cnf {
    let mut cnf = Cnf::with_vars(nets.len() * tracks);
    let var = |n: usize, t: usize| Var::new(n * tracks + t);
    for n in 0..nets.len() {
        cnf.add_clause((0..tracks).map(|t| var(n, t).positive()));
        for t1 in 0..tracks {
            for t2 in t1 + 1..tracks {
                cnf.add_clause([var(n, t1).negative(), var(n, t2).negative()]);
            }
        }
    }
    for i in 0..nets.len() {
        for j in i + 1..nets.len() {
            if nets[i].overlaps(&nets[j]) {
                for t in 0..tracks {
                    cnf.add_clause([var(i, t).negative(), var(j, t).negative()]);
                }
            }
        }
    }
    cnf
}

/// An unroutable channel: a congested column crossed by `tracks + 1`
/// nets, surrounded by `easy_nets` independent nets elsewhere in the
/// channel. The formula is large but its unsat core is just the
/// congestion — the paper's Table 3 observation that routing instances
/// have small cores.
pub fn congested_channel(tracks: usize, easy_nets: usize, seed: u64) -> Instance {
    let mut rng = SplitMix64::new(seed);
    let mut nets: Vec<Net> = Vec::new();
    // The congestion: tracks+1 nets all crossing column 0..4.
    for i in 0..=tracks {
        nets.push(Net::new(0, 4 + (i as u32 % 3)));
    }
    // Easy nets: short intervals spread far to the right; they overlap
    // each other only occasionally and never the congested column.
    for _ in 0..easy_nets {
        let left = rng.range_u32(10..500);
        let len = rng.range_u32(1..4);
        nets.push(Net::new(left, left + len));
    }
    Instance::new(
        format!("route_{tracks}t_{}n_s{seed}", nets.len()),
        Family::Routing,
        routing_cnf(&nets, tracks),
        Some(SatStatus::Unsatisfiable),
    )
}

/// A routable channel (congestion exactly equals capacity): SAT.
pub fn routable_channel(tracks: usize, easy_nets: usize, seed: u64) -> Instance {
    let mut rng = SplitMix64::new(seed);
    let mut nets: Vec<Net> = Vec::new();
    for i in 0..tracks {
        nets.push(Net::new(0, 4 + (i as u32 % 3)));
    }
    for _ in 0..easy_nets {
        let left = rng.range_u32(10..500);
        let len = rng.range_u32(1..4);
        nets.push(Net::new(left, left + len));
    }
    Instance::new(
        format!("route_ok_{tracks}t_{}n_s{seed}", nets.len()),
        Family::Routing,
        routing_cnf(&nets, tracks),
        Some(SatStatus::Satisfiable),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescheck_solver::{Solver, SolverConfig};

    #[test]
    fn overlap_predicate() {
        let a = Net::new(0, 4);
        assert!(a.overlaps(&Net::new(3, 5)));
        assert!(a.overlaps(&Net::new(0, 1)));
        assert!(!a.overlaps(&Net::new(4, 6)));
        assert!(!Net::new(4, 6).overlaps(&a));
    }

    #[test]
    fn three_overlapping_nets_two_tracks_is_unsat() {
        let nets = vec![Net::new(0, 3), Net::new(1, 4), Net::new(2, 5)];
        assert!(routing_cnf(&nets, 2).brute_force_status().is_unsat());
        assert!(routing_cnf(&nets, 3).brute_force_status().is_sat());
    }

    #[test]
    fn disjoint_nets_share_a_track() {
        let nets = vec![Net::new(0, 2), Net::new(2, 4), Net::new(4, 6)];
        assert!(routing_cnf(&nets, 1).brute_force_status().is_sat());
    }

    #[test]
    fn congested_channel_is_unsat_and_routable_is_sat() {
        let bad = congested_channel(3, 15, 11);
        let mut solver = Solver::from_cnf(&bad.cnf, SolverConfig::default());
        assert!(solver.solve().is_unsat());

        let ok = routable_channel(3, 15, 11);
        let mut solver = Solver::from_cnf(&ok.cnf, SolverConfig::default());
        let result = solver.solve();
        assert!(ok.cnf.is_satisfied_by(result.model().unwrap()));
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(
            congested_channel(3, 10, 5).cnf,
            congested_channel(3, 10, 5).cnf
        );
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_net_panics() {
        Net::new(3, 3);
    }
}
