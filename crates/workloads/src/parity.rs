//! XOR/parity constraints in CNF.
//!
//! XOR-heavy formulas "often require long proofs by resolution" — the
//! paper's explanation for the `longmult12` outlier in Table 2. These
//! generators give direct control over that behaviour.

use crate::{Family, Instance};
use rescheck_cnf::{Cnf, Lit, SatStatus, Var};

/// Adds CNF clauses for `a ⊕ b = parity` to `cnf`.
fn add_xor2(cnf: &mut Cnf, a: Var, b: Var, parity: bool) {
    let (ap, an) = (a.positive(), a.negative());
    let (bp, bn) = (b.positive(), b.negative());
    if parity {
        // a ≠ b
        cnf.add_clause([ap, bp]);
        cnf.add_clause([an, bn]);
    } else {
        // a = b
        cnf.add_clause([ap, bn]);
        cnf.add_clause([an, bp]);
    }
}

/// An odd XOR cycle: `x1 ⊕ x2 = 1, x2 ⊕ x3 = 1, …, xn ⊕ x1 = 1`.
///
/// Summing all equations gives `0 = n mod 2`, so the formula is
/// unsatisfiable exactly for odd `n`.
///
/// # Panics
///
/// Panics if `n < 2`.
///
/// # Examples
///
/// ```
/// use rescheck_workloads::parity;
///
/// assert!(parity::xor_cycle(5).brute_force_status().is_unsat());
/// assert!(parity::xor_cycle(6).brute_force_status().is_sat());
/// ```
pub fn xor_cycle(n: usize) -> Cnf {
    assert!(n >= 2, "a cycle needs at least two variables");
    let mut cnf = Cnf::with_vars(n);
    for i in 0..n {
        add_xor2(&mut cnf, Var::new(i), Var::new((i + 1) % n), true);
    }
    cnf
}

/// A chained parity contradiction of adjustable width.
///
/// Variables are linked in `width`-sized XOR windows whose parities sum
/// to an odd total, so the formula is unsatisfiable but each clause only
/// touches a window — resolution proofs must chain through all of them.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn chained_parity(n: usize) -> Instance {
    assert!(n >= 3, "need at least three variables");
    let odd_n = if n % 2 == 1 { n } else { n + 1 };
    Instance::new(
        format!("parity_cycle_{odd_n}"),
        Family::Parity,
        xor_cycle(odd_n),
        Some(SatStatus::Unsatisfiable),
    )
}

/// A wider XOR constraint `x1 ⊕ … ⊕ xk = parity` encoded directly with
/// `2^(k-1)` clauses, appended to `cnf` over the given variables.
pub fn add_wide_xor(cnf: &mut Cnf, vars: &[Var], parity: bool) {
    assert!(!vars.is_empty(), "XOR over no variables");
    let k = vars.len();
    for mask in 0u64..(1 << k) {
        // Forbid assignments with the wrong parity: a clause excluding
        // assignment `mask` is the disjunction of the complementary
        // literals.
        let ones = mask.count_ones() as usize;
        if ones % 2 != usize::from(parity) {
            let clause: Vec<Lit> = vars
                .iter()
                .enumerate()
                .map(|(i, &v)| v.lit(mask >> i & 1 == 0))
                .collect();
            cnf.push_clause(clause.into());
        }
    }
}

/// A Tseitin parity formula on the cubic circulant graph with `n`
/// vertices (ring edges plus diameter chords).
///
/// Variables are the graph's edges; every vertex contributes the XOR
/// equation "parity of incident edges = charge(v)", with a single odd
/// charge. Each edge appears in exactly two equations, so summing them
/// all over GF(2) gives `0 = 1` — unsatisfiable — while every clause has
/// only three literals. These are the classic expander-style hard
/// formulas for resolution.
///
/// # Panics
///
/// Panics if `n` is odd or `n < 4`.
pub fn tseitin_cubic(n: usize) -> Instance {
    assert!(
        n >= 4 && n.is_multiple_of(2),
        "need an even number of vertices ≥ 4"
    );
    // Edge numbering: ring edge i = (i, i+1 mod n) gets var i;
    // chord j = (j, j + n/2) gets var n + j for j < n/2.
    let half = n / 2;
    let mut cnf = Cnf::with_vars(n + half);
    let ring = |i: usize| Var::new(i % n);
    let chord = |v: usize| Var::new(n + (v % half));
    for v in 0..n {
        let incident = [ring(v + n - 1), ring(v), chord(v)];
        add_wide_xor(&mut cnf, &incident, v == 0);
    }
    Instance::new(
        format!("tseitin_cubic_{n}"),
        Family::Parity,
        cnf,
        Some(SatStatus::Unsatisfiable),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xor_cycle_parity_rule() {
        for n in 2..9 {
            let status = xor_cycle(n).brute_force_status();
            assert_eq!(status.is_unsat(), n % 2 == 1, "n={n}");
        }
    }

    #[test]
    fn chained_parity_always_unsat() {
        for n in [3, 4, 7, 10] {
            let inst = chained_parity(n);
            assert!(inst.cnf.brute_force_status().is_unsat(), "n={n}");
            assert_eq!(inst.expected, Some(SatStatus::Unsatisfiable));
        }
    }

    #[test]
    fn wide_xor_encodes_parity_exactly() {
        for k in 1..5usize {
            for parity in [false, true] {
                let mut cnf = Cnf::with_vars(k);
                let vars: Vec<Var> = (0..k).map(Var::new).collect();
                add_wide_xor(&mut cnf, &vars, parity);
                // Count satisfying assignments by brute force: exactly
                // half of 2^k (all with the requested parity).
                let mut count = 0;
                for bits in 0u64..(1 << k) {
                    let model = rescheck_cnf::Assignment::from_bools(
                        &(0..k).map(|i| bits >> i & 1 == 1).collect::<Vec<_>>(),
                    );
                    if cnf.is_satisfied_by(&model) {
                        assert_eq!(bits.count_ones() as usize % 2, usize::from(parity));
                        count += 1;
                    }
                }
                assert_eq!(count, 1 << (k - 1), "k={k} parity={parity}");
            }
        }
    }

    #[test]
    fn tseitin_cubic_is_unsat() {
        for n in [4, 6, 8, 10] {
            assert!(
                tseitin_cubic(n).cnf.brute_force_status().is_unsat(),
                "tseitin_cubic({n})"
            );
        }
    }

    #[test]
    fn tseitin_cubic_with_even_charge_is_sat() {
        // Sanity check of the charge argument: flipping the odd charge to
        // even makes the system consistent.
        let n = 6;
        let half = n / 2;
        let mut cnf = Cnf::with_vars(n + half);
        let ring = |i: usize| Var::new(i % n);
        let chord = |v: usize| Var::new(n + (v % half));
        for v in 0..n {
            let incident = [ring(v + n - 1), ring(v), chord(v)];
            add_wide_xor(&mut cnf, &incident, false);
        }
        assert!(cnf.brute_force_status().is_sat());
    }
}
