//! The pigeonhole principle PHP(p, h): p pigeons into h holes.
//!
//! The canonical resolution-hard family: PHP(h+1, h) is unsatisfiable but
//! every resolution refutation is exponential in `h` (Haken 1985), which
//! makes it an excellent stress test for the checker's resolution DAG
//! traversal.

use crate::{Family, Instance};
use rescheck_cnf::{Cnf, Lit, SatStatus, Var};

/// Builds PHP(`pigeons`, `holes`): every pigeon gets a hole, no two
/// pigeons share one.
///
/// Satisfiable iff `pigeons <= holes` (or there are no pigeons).
///
/// # Examples
///
/// ```
/// use rescheck_workloads::pigeonhole;
///
/// let cnf = pigeonhole::formula(4, 3);
/// assert_eq!(cnf.num_vars(), 12);
/// assert!(cnf.brute_force_status().is_unsat());
/// ```
pub fn formula(pigeons: usize, holes: usize) -> Cnf {
    let mut cnf = Cnf::with_vars(pigeons * holes);
    let lit = |p: usize, h: usize| Lit::positive(Var::new(p * holes + h));
    for p in 0..pigeons {
        cnf.add_clause((0..holes).map(|h| lit(p, h)));
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in p1 + 1..pigeons {
                cnf.add_clause([!lit(p1, h), !lit(p2, h)]);
            }
        }
    }
    cnf
}

/// The standard unsatisfiable instance PHP(`holes`+1, `holes`).
pub fn instance(holes: usize) -> Instance {
    Instance::new(
        format!("php_{}_{holes}", holes + 1),
        Family::Pigeonhole,
        formula(holes + 1, holes),
        Some(SatStatus::Unsatisfiable),
    )
}

/// The satisfiable variant PHP(`holes`, `holes`).
pub fn satisfiable_instance(holes: usize) -> Instance {
    Instance::new(
        format!("php_{holes}_{holes}"),
        Family::Pigeonhole,
        formula(holes, holes),
        Some(SatStatus::Satisfiable),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_the_definition() {
        let cnf = formula(4, 3);
        // 4 at-least-one clauses + 3 * C(4,2) at-most-one clauses.
        assert_eq!(cnf.num_clauses(), 4 + 3 * 6);
    }

    #[test]
    fn statuses_by_brute_force() {
        assert!(formula(3, 3).brute_force_status().is_sat());
        assert!(formula(4, 3).brute_force_status().is_unsat());
        assert!(formula(2, 4).brute_force_status().is_sat());
    }

    #[test]
    fn instances_are_labelled() {
        let i = instance(3);
        assert_eq!(i.name, "php_4_3");
        assert_eq!(i.expected, Some(SatStatus::Unsatisfiable));
        let s = satisfiable_instance(3);
        assert_eq!(s.expected, Some(SatStatus::Satisfiable));
    }

    #[test]
    fn degenerate_sizes() {
        // No pigeons: trivially satisfiable (no clauses).
        assert!(formula(0, 3).brute_force_status().is_sat());
        // Pigeons but no holes: empty at-least-one clauses → unsat.
        assert!(formula(1, 0).has_empty_clause());
    }
}
