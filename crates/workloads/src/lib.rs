//! Benchmark instance generators for the rescheck toolkit.
//!
//! The evaluation of Zhang & Malik (DATE 2003) uses twelve industrial
//! CNFs from five application domains. Those exact files are proprietary
//! benchmark artifacts, so this crate regenerates each *family* from
//! scratch, preserving the structure that matters to the solver and
//! checker (see DESIGN.md §4 for the substitution argument):
//!
//! | paper family | here |
//! |---|---|
//! | microprocessor verification (`2dlx`, `9vliw`, `*pipe*`) | [`pipeline`] |
//! | bounded model checking (`barrel`, `longmult`) | [`bmc`] |
//! | combinational equivalence (`c7225`, `c5135`) | [`equiv`] |
//! | test pattern generation (§1's ATPG) | [`atpg`] |
//! | FPGA detailed routing (`too_largefs3w8v262`) | [`routing`] |
//! | AI planning (`bw_large.d`) | [`planning`] |
//! | classic hard families (extra) | [`pigeonhole`], [`parity`], [`graph_color`], [`random_ksat`] |
//!
//! Every generator returns an [`Instance`] whose expected status is known
//! by construction, so the solver and checker can be validated end to
//! end against ground truth.
//!
//! # Examples
//!
//! ```
//! use rescheck_workloads::{pigeonhole, Family};
//! use rescheck_cnf::SatStatus;
//!
//! let inst = pigeonhole::instance(4);
//! assert_eq!(inst.family, Family::Pigeonhole);
//! assert_eq!(inst.expected, Some(SatStatus::Unsatisfiable));
//! assert!(inst.cnf.num_clauses() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atpg;
pub mod bmc;
pub mod equiv;
pub mod graph_color;
mod instance;
pub mod parity;
pub mod pigeonhole;
pub mod pipeline;
pub mod planning;
pub mod random_ksat;
pub mod routing;
mod suite;

pub use instance::{Family, Instance};
pub use suite::{paper_suite, quick_suite, table3_suite};
