//! Bounded-model-checking instances (the paper's `barrel`/`longmult`
//! family, after Biere et al.).

use crate::{Family, Instance};
use rescheck_circuit::seq::{token_ring, SeqCircuit};
use rescheck_circuit::{arith, Circuit, NodeId};
use rescheck_cnf::SatStatus;

/// `barrel` analogue: a rotating one-hot token ring of `positions` bits
/// unrolled `bound` steps, asking whether the "exactly one token"
/// invariant can break. It cannot, so the instance is UNSAT.
pub fn barrel(positions: usize, bound: usize) -> Instance {
    let ring = token_ring(positions);
    Instance::new(
        format!("barrel_{positions}_k{bound}"),
        Family::Bmc,
        ring.unroll_to_cnf(bound),
        Some(SatStatus::Unsatisfiable),
    )
}

/// A broken shifter that **drops** its token when shifting past the last
/// position (the wrap path is miswired to zero); with the free input low
/// the register holds. The defect needs `positions` shift steps to
/// manifest, so the BMC instance is SAT exactly when the bound reaches
/// that depth — the classic "bug at depth k" shape BMC exists to find.
pub fn barrel_broken(positions: usize, bound: usize) -> Instance {
    assert!(positions >= 2);
    let mut step = Circuit::new();
    let s: Vec<NodeId> = (0..positions).map(|_| step.input()).collect();
    let shift = step.input(); // 1 = shift up (buggy wrap), 0 = hold
    let zero = step.constant(false);
    let next: Vec<NodeId> = (0..positions)
        .map(|i| {
            let up = if i == 0 { zero } else { s[i - 1] }; // wrap dropped
            step.mux(shift, up, s[i])
        })
        .collect();
    let any = step.or_all(s.iter().copied());
    let bad = step.not(any);
    let mut init = vec![false; positions];
    init[0] = true;
    let seq = SeqCircuit::new(step, positions, next, init, bad);
    let expected = if bound >= positions {
        SatStatus::Satisfiable
    } else {
        SatStatus::Unsatisfiable
    };
    Instance::new(
        format!("barrel_broken_{positions}_k{bound}"),
        Family::Bmc,
        seq.unroll_to_cnf(bound),
        Some(expected),
    )
}

/// `longmult` analogue: the sequential shift-add multiplier, fully
/// unrolled (which is exactly what BMC does to it), checked against an
/// array multiplier. XOR-rich adder chains make resolution proofs long —
/// the paper singles this family out as the one needing a large fraction
/// of the learned clauses rebuilt (Table 2).
pub fn longmult(width: usize) -> Instance {
    let mut a = Circuit::new();
    let x = a.input_word(width);
    let y = a.input_word(width);
    let p = arith::shift_add_multiply(&mut a, &x, &y);
    a.set_outputs(p);

    let mut b = Circuit::new();
    let x = b.input_word(width);
    let y = b.input_word(width);
    let p = arith::array_multiply(&mut b, &x, &y);
    b.set_outputs(p);

    let cnf = rescheck_circuit::miter::equivalence_cnf(&a, &b).expect("same interface");
    Instance::new(
        format!("longmult_{width}"),
        Family::Bmc,
        cnf,
        Some(SatStatus::Unsatisfiable),
    )
}

/// A counter that steps by two when its free *enable* input is high,
/// asked whether it can hit an odd target within `bound` steps: UNSAT by
/// a parity invariant the solver has to discover (the enable keeps the
/// unrolling from folding to constants).
pub fn even_counter(width: usize, bound: usize) -> Instance {
    assert!(width >= 2);
    let mut step = Circuit::new();
    let s: Vec<NodeId> = (0..width).map(|_| step.input()).collect();
    let enable = step.input();
    // next = s + 2 when enabled (add into bits 1.. with ripple carry).
    let mut next = vec![s[0]];
    let mut carry = enable; // adding binary 10: bit 1 gets +enable
    for &bit in &s[1..] {
        let sum = step.xor(bit, carry);
        carry = step.and(bit, carry);
        next.push(sum);
    }
    // bad ⇔ state == 0b0…011 (odd target 3).
    let mut target_bits = vec![true, true];
    target_bits.resize(width, false);
    let hits: Vec<NodeId> = s
        .iter()
        .zip(&target_bits)
        .map(|(&bit, &want)| if want { bit } else { step.not(bit) })
        .collect();
    let bad = step.and_all(hits);
    let init = vec![false; width];
    let seq = SeqCircuit::new(step, width, next, init, bad);
    Instance::new(
        format!("even_counter_{width}_k{bound}"),
        Family::Bmc,
        seq.unroll_to_cnf(bound),
        Some(SatStatus::Unsatisfiable),
    )
}

/// Builds the sequential shift-add multiplier FSM: on the first cycle it
/// loads its operands from the free inputs; afterwards it adds the
/// shifted multiplicand whenever the low multiplier bit is set. `bad`
/// fires when the multiplication has completed (`b_rem == 0`) but the
/// accumulator disagrees with a combinational array multiplier over the
/// loaded operands — the literal `longmult` construction of Biere et al.
///
/// `broken_carry` optionally severs the accumulator adder's carry into
/// the given bit, modelling a datapath bug.
fn sequential_multiplier_fsm(width: usize, broken_carry: Option<usize>) -> SeqCircuit {
    assert!(width >= 2);
    let w = width;
    let two_w = 2 * w;
    let mut c = Circuit::new();
    // State registers, in order: a0, b0, a_sh, b_rem, acc, loaded.
    let a0: Vec<NodeId> = (0..w).map(|_| c.input()).collect();
    let b0: Vec<NodeId> = (0..w).map(|_| c.input()).collect();
    let a_sh: Vec<NodeId> = (0..two_w).map(|_| c.input()).collect();
    let b_rem: Vec<NodeId> = (0..w).map(|_| c.input()).collect();
    let acc: Vec<NodeId> = (0..two_w).map(|_| c.input()).collect();
    let loaded = c.input();
    // Free inputs: the operands, consumed on the load cycle.
    let in_a: Vec<NodeId> = (0..w).map(|_| c.input()).collect();
    let in_b: Vec<NodeId> = (0..w).map(|_| c.input()).collect();
    let zero = c.constant(false);
    let one = c.constant(true);

    // Shift-add datapath.
    let bit = b_rem[0];
    let addend: Vec<NodeId> = a_sh.iter().map(|&x| c.and(bit, x)).collect();
    let mut sum = Vec::with_capacity(two_w);
    let mut carry = zero;
    for i in 0..two_w {
        let (s, cout) = rescheck_circuit::arith::full_adder(&mut c, acc[i], addend[i], carry);
        sum.push(s);
        carry = if broken_carry == Some(i + 1) {
            zero
        } else {
            cout
        };
    }
    let mut a_sh_next = vec![zero];
    a_sh_next.extend(&a_sh[..two_w - 1]);
    let mut b_rem_next: Vec<NodeId> = b_rem[1..].to_vec();
    b_rem_next.push(zero);

    // Specification: a combinational array multiplier over the operands.
    let spec = arith::array_multiply(&mut c, &a0, &b0);
    let agree = arith::equal(&mut c, &acc, &spec);
    let disagree = c.not(agree);
    let b_active = c.or_all(b_rem.iter().copied());
    let done = c.not(b_active);
    let l_and_done = c.and(loaded, done);
    let bad = c.and(l_and_done, disagree);

    // Next-state: load on the first cycle, step afterwards.
    let mut next = Vec::with_capacity(7 * w + 1);
    for i in 0..w {
        next.push(c.mux(loaded, a0[i], in_a[i]));
    }
    for i in 0..w {
        next.push(c.mux(loaded, b0[i], in_b[i]));
    }
    for i in 0..two_w {
        let load_val = if i < w { in_a[i] } else { zero };
        next.push(c.mux(loaded, a_sh_next[i], load_val));
    }
    for i in 0..w {
        next.push(c.mux(loaded, b_rem_next[i], in_b[i]));
    }
    for &s in sum.iter().take(two_w) {
        next.push(c.mux(loaded, s, zero));
    }
    next.push(one); // loaded stays set after the first cycle
    let init = vec![false; 7 * w + 1];
    SeqCircuit::new(c, 7 * w + 1, next, init, bad)
}

/// The sequential shift-add multiplier checked against its combinational
/// specification, unrolled `bound` steps: UNSAT at every bound (the
/// shift-add invariant `acc + a_sh·b_rem = a0·b0` holds).
pub fn sequential_multiplier(width: usize, bound: usize) -> Instance {
    let fsm = sequential_multiplier_fsm(width, None);
    Instance::new(
        format!("seqmult_{width}_k{bound}"),
        Family::Bmc,
        fsm.unroll_to_cnf(bound),
        Some(SatStatus::Unsatisfiable),
    )
}

/// The same multiplier with a severed carry into accumulator bit 2: the
/// cheapest counterexample (3·3) completes after three steps, so the BMC
/// instance flips to SAT at bound 3.
pub fn sequential_multiplier_buggy(width: usize, bound: usize) -> Instance {
    let fsm = sequential_multiplier_fsm(width, Some(2));
    let expected = if bound >= 3 {
        SatStatus::Satisfiable
    } else {
        SatStatus::Unsatisfiable
    };
    Instance::new(
        format!("seqmult_buggy_{width}_k{bound}"),
        Family::Bmc,
        fsm.unroll_to_cnf(bound),
        Some(expected),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescheck_solver::{Solver, SolverConfig};

    fn solve(inst: &Instance) -> rescheck_solver::SolveResult {
        let mut solver = Solver::from_cnf(&inst.cnf, SolverConfig::default());
        solver.solve()
    }

    #[test]
    fn barrel_is_unsat() {
        for (p, k) in [(3, 5), (5, 8), (8, 12)] {
            assert!(solve(&barrel(p, k)).is_unsat(), "barrel({p},{k})");
        }
    }

    #[test]
    fn broken_barrel_flips_at_the_wrap() {
        let safe = barrel_broken(4, 2);
        assert_eq!(safe.expected, Some(SatStatus::Unsatisfiable));
        assert!(solve(&safe).is_unsat());

        let unsafe_ = barrel_broken(4, 6);
        assert_eq!(unsafe_.expected, Some(SatStatus::Satisfiable));
        let result = solve(&unsafe_);
        assert!(unsafe_.cnf.is_satisfied_by(result.model().unwrap()));
    }

    #[test]
    fn longmult_is_unsat() {
        for w in [2, 3] {
            assert!(solve(&longmult(w)).is_unsat(), "longmult({w})");
        }
    }

    #[test]
    fn even_counter_never_hits_three() {
        for (w, k) in [(3, 6), (4, 10)] {
            assert!(solve(&even_counter(w, k)).is_unsat(), "counter({w},{k})");
        }
    }

    #[test]
    fn instances_are_labelled() {
        let b = barrel(4, 3);
        assert_eq!(b.name, "barrel_4_k3");
        assert_eq!(b.family, Family::Bmc);
        let m = longmult(3);
        assert_eq!(m.name, "longmult_3");
    }

    #[test]
    fn sequential_multiplier_fsm_computes_products() {
        // Drive the FSM directly and confirm it never flags `bad` while
        // actually computing the right products.
        let w = 3;
        let fsm = sequential_multiplier_fsm(w, None);
        assert_eq!(fsm.free_inputs_per_step(), 2 * w);
        for (a, b) in [(0u64, 0u64), (1, 5), (3, 3), (7, 6), (5, 7)] {
            let bad = fsm.simulate_bad(w + 2, |t, i| {
                if t == 0 {
                    if i < w {
                        a >> i & 1 == 1
                    } else {
                        b >> (i - w) & 1 == 1
                    }
                } else {
                    false
                }
            });
            assert!(!bad, "{a}*{b} must not flag bad");
        }
    }

    #[test]
    fn broken_multiplier_is_caught_in_simulation() {
        let w = 3;
        let fsm = sequential_multiplier_fsm(w, Some(2));
        // 3 * 3 = 9 requires the carry into bit 2.
        let bad = fsm.simulate_bad(w + 2, |t, i| {
            t == 0 && (i == 0 || i == 1 || i == w || i == w + 1)
        });
        assert!(bad, "3*3 must expose the severed carry");
    }

    #[test]
    fn sequential_multiplier_bmc_is_unsat() {
        for (w, k) in [(2, 4), (3, 5)] {
            let inst = sequential_multiplier(w, k);
            assert!(solve(&inst).is_unsat(), "seqmult({w},{k})");
        }
    }

    #[test]
    fn buggy_sequential_multiplier_flips_at_bound_three() {
        let safe = sequential_multiplier_buggy(3, 2);
        assert_eq!(safe.expected, Some(SatStatus::Unsatisfiable));
        assert!(solve(&safe).is_unsat());

        let unsafe_ = sequential_multiplier_buggy(3, 4);
        assert_eq!(unsafe_.expected, Some(SatStatus::Satisfiable));
        let result = solve(&unsafe_);
        assert!(unsafe_.cnf.is_satisfied_by(result.model().unwrap()));
    }
}
