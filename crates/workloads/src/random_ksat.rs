//! Uniform random k-SAT.

use crate::{Family, Instance};
use rescheck_cnf::{Cnf, Lit, SplitMix64, Var};

/// Generates a uniform random k-SAT formula.
///
/// Each clause draws `k` distinct variables and random polarities. At
/// clause/variable ratio ≈ 4.26 (for k = 3) instances sit at the phase
/// transition; above it they are almost surely unsatisfiable — useful
/// for exercising the solver, though the expected status is recorded as
/// unknown.
///
/// # Panics
///
/// Panics if `k` is zero or exceeds `num_vars`.
///
/// # Examples
///
/// ```
/// use rescheck_workloads::random_ksat;
///
/// let inst = random_ksat::instance(20, 90, 3, 7);
/// assert_eq!(inst.num_vars(), 20);
/// assert_eq!(inst.num_clauses(), 90);
/// assert!(inst.expected.is_none());
/// ```
pub fn formula(num_vars: usize, num_clauses: usize, k: usize, seed: u64) -> Cnf {
    assert!(
        k >= 1 && k <= num_vars,
        "clause width must fit the variables"
    );
    let mut rng = SplitMix64::new(seed);
    let mut cnf = Cnf::with_vars(num_vars);
    let mut vars: Vec<usize> = Vec::with_capacity(k);
    for _ in 0..num_clauses {
        vars.clear();
        while vars.len() < k {
            let v = rng.range_usize(0..num_vars);
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
        let lits: Vec<Lit> = vars
            .iter()
            .map(|&v| Var::new(v).lit(rng.gen_bool(0.5)))
            .collect();
        cnf.push_clause(lits.into());
    }
    cnf
}

/// A labelled random k-SAT instance (expected status unknown).
pub fn instance(num_vars: usize, num_clauses: usize, k: usize, seed: u64) -> Instance {
    Instance::new(
        format!("random_{k}sat_{num_vars}v_{num_clauses}c_s{seed}"),
        Family::RandomKSat,
        formula(num_vars, num_clauses, k, seed),
        None,
    )
}

/// A random 3-SAT instance at ratio 5.0 — virtually always unsatisfiable
/// and still labelled unknown (the solver establishes the truth).
pub fn over_constrained(num_vars: usize, seed: u64) -> Instance {
    instance(num_vars, num_vars * 5, 3, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_is_as_requested() {
        let cnf = formula(10, 42, 3, 1);
        assert_eq!(cnf.num_vars(), 10);
        assert_eq!(cnf.num_clauses(), 42);
        for clause in cnf.clauses() {
            assert_eq!(clause.len(), 3);
            // Distinct variables.
            let mut vars: Vec<_> = clause.iter().map(|l| l.var()).collect();
            vars.sort();
            vars.dedup();
            assert_eq!(vars.len(), 3);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(formula(12, 50, 3, 9), formula(12, 50, 3, 9));
        assert_ne!(formula(12, 50, 3, 9), formula(12, 50, 3, 10));
    }

    #[test]
    fn over_constrained_instances_are_usually_unsat() {
        // Ratio 5 is far above the asymptotic threshold (≈4.26), but at
        // 16 variables finite-size effects still let a noticeable
        // minority of instances stay satisfiable — so assert a solid
        // majority rather than near-certainty.
        let mut unsat = 0;
        for seed in 0..20 {
            let inst = over_constrained(16, seed);
            if inst.cnf.brute_force_status().is_unsat() {
                unsat += 1;
            }
        }
        assert!(
            unsat >= 12,
            "ratio-5 instances should mostly be UNSAT, got {unsat}/20"
        );
    }

    #[test]
    #[should_panic(expected = "clause width")]
    fn oversized_k_panics() {
        formula(2, 1, 3, 0);
    }
}
