//! Combinational equivalence checking instances (the paper's
//! `c7225`/`c5135` family).
//!
//! Each instance is the Tseitin encoding of a miter between two
//! structurally different implementations of the same arithmetic
//! function; UNSAT proves equivalence. "Buggy" variants inject a real
//! defect, giving satisfiable counterparts with a concrete
//! counterexample.

use crate::{Family, Instance};
use rescheck_circuit::{arith, miter, rewrite, Circuit};
use rescheck_cnf::SatStatus;

/// Ripple-carry vs. carry-select adder miter: UNSAT (equivalent).
pub fn adder_miter(width: usize) -> Instance {
    let mut a = Circuit::new();
    let x = a.input_word(width);
    let y = a.input_word(width);
    let sum = arith::ripple_carry_add(&mut a, &x, &y);
    a.set_outputs(sum);

    let mut b = Circuit::new();
    let x = b.input_word(width);
    let y = b.input_word(width);
    let sum = arith::carry_select_add(&mut b, &x, &y, (width / 2).max(1));
    b.set_outputs(sum);

    let cnf = miter::equivalence_cnf(&a, &b).expect("same interface");
    Instance::new(
        format!("equiv_adder_{width}"),
        Family::Equivalence,
        cnf,
        Some(SatStatus::Unsatisfiable),
    )
}

/// Adder miter with an injected bug (a dropped carry in one block):
/// SAT, with the model exposing a concrete failing input vector.
pub fn buggy_adder_miter(width: usize) -> Instance {
    assert!(width >= 2, "need at least two bits to drop a carry");
    let mut a = Circuit::new();
    let x = a.input_word(width);
    let y = a.input_word(width);
    let sum = arith::ripple_carry_add(&mut a, &x, &y);
    a.set_outputs(sum);

    // The buggy implementation ties the carry into bit 1 to zero.
    let mut b = Circuit::new();
    let x = b.input_word(width);
    let y = b.input_word(width);
    let zero = b.constant(false);
    let (s0, _dropped_carry) = arith::full_adder(&mut b, x[0], y[0], zero);
    let mut sum = vec![s0];
    let mut carry = zero; // bug: should be `_dropped_carry`
    for i in 1..width {
        let (s, c) = arith::full_adder(&mut b, x[i], y[i], carry);
        sum.push(s);
        carry = c;
    }
    sum.push(carry);
    b.set_outputs(sum);

    let cnf = miter::equivalence_cnf(&a, &b).expect("same interface");
    Instance::new(
        format!("equiv_adder_buggy_{width}"),
        Family::Equivalence,
        cnf,
        Some(SatStatus::Satisfiable),
    )
}

/// Array vs. shift-add multiplier miter: UNSAT (equivalent), XOR-heavy
/// and hard for resolution — the combinational cousin of `longmult`.
pub fn multiplier_miter(width: usize) -> Instance {
    let mut a = Circuit::new();
    let x = a.input_word(width);
    let y = a.input_word(width);
    let p = arith::array_multiply(&mut a, &x, &y);
    a.set_outputs(p);

    let mut b = Circuit::new();
    let x = b.input_word(width);
    let y = b.input_word(width);
    let p = arith::shift_add_multiply(&mut b, &x, &y);
    b.set_outputs(p);

    let cnf = miter::equivalence_cnf(&a, &b).expect("same interface");
    Instance::new(
        format!("equiv_mult_{width}"),
        Family::Equivalence,
        cnf,
        Some(SatStatus::Unsatisfiable),
    )
}

/// Barrel rotator vs. naive mux-per-amount rotator: UNSAT (equivalent).
pub fn rotator_miter(word_bits: usize) -> Instance {
    assert!(word_bits.is_power_of_two() && word_bits >= 2);
    let shift_bits = word_bits.trailing_zeros() as usize;

    let mut a = Circuit::new();
    let w = a.input_word(word_bits);
    let s = a.input_word(shift_bits);
    let r = arith::barrel_rotate_left(&mut a, &w, &s);
    a.set_outputs(r);

    // Naive: decode the shift amount, one wide mux per output bit.
    let mut b = Circuit::new();
    let w = b.input_word(word_bits);
    let s = b.input_word(shift_bits);
    // One-hot decode of the shift amount.
    let mut onehot = Vec::with_capacity(word_bits);
    for amount in 0..word_bits {
        let bits: Vec<_> = (0..shift_bits)
            .map(|i| {
                if amount >> i & 1 == 1 {
                    s[i]
                } else {
                    b.not(s[i])
                }
            })
            .collect();
        onehot.push(b.and_all(bits));
    }
    let outputs: Vec<_> = (0..word_bits)
        .map(|i| {
            let terms: Vec<_> = (0..word_bits)
                .map(|amount| {
                    let src = w[(i + word_bits - amount) % word_bits];
                    b.and(onehot[amount], src)
                })
                .collect();
            b.or_all(terms)
        })
        .collect();
    b.set_outputs(outputs);

    let cnf = miter::equivalence_cnf(&a, &b).expect("same interface");
    Instance::new(
        format!("equiv_rotator_{word_bits}"),
        Family::Equivalence,
        cnf,
        Some(SatStatus::Unsatisfiable),
    )
}

/// Technology-mapping miter: an adder + comparator datapath against its
/// NAND-decomposed remapping — the classic post-synthesis equivalence
/// obligation. UNSAT (equivalent by construction).
pub fn nand_remap_miter(width: usize) -> Instance {
    let mut c = Circuit::new();
    let a = c.input_word(width);
    let b = c.input_word(width);
    let mut outs = arith::ripple_carry_add(&mut c, &a, &b);
    outs.push(arith::equal(&mut c, &a, &b));
    c.set_outputs(outs);

    let remapped = rewrite::to_nand_only(&c);
    let cnf = miter::equivalence_cnf(&c, &remapped).expect("same interface");
    Instance::new(
        format!("equiv_nand_remap_{width}"),
        Family::Equivalence,
        cnf,
        Some(SatStatus::Unsatisfiable),
    )
}

/// AIG-remapping miter over a mux/rotate datapath: UNSAT.
pub fn aig_remap_miter(word_bits: usize) -> Instance {
    assert!(word_bits.is_power_of_two() && word_bits >= 2);
    let shift_bits = word_bits.trailing_zeros() as usize;
    let mut c = Circuit::new();
    let w = c.input_word(word_bits);
    let s = c.input_word(shift_bits);
    let r = arith::barrel_rotate_left(&mut c, &w, &s);
    c.set_outputs(r);

    let remapped = rewrite::to_aig(&c);
    let cnf = miter::equivalence_cnf(&c, &remapped).expect("same interface");
    Instance::new(
        format!("equiv_aig_remap_{word_bits}"),
        Family::Equivalence,
        cnf,
        Some(SatStatus::Unsatisfiable),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescheck_solver::{Solver, SolverConfig};

    fn solve(inst: &Instance) -> rescheck_solver::SolveResult {
        let mut solver = Solver::from_cnf(&inst.cnf, SolverConfig::default());
        solver.solve()
    }

    #[test]
    fn adder_miters_are_unsat() {
        for width in [2, 4, 8] {
            assert!(solve(&adder_miter(width)).is_unsat(), "width={width}");
        }
    }

    #[test]
    fn buggy_adder_miters_are_sat_with_verified_model() {
        for width in [2, 4, 8] {
            let inst = buggy_adder_miter(width);
            let result = solve(&inst);
            let model = result.model().expect("bug must be found");
            assert!(inst.cnf.is_satisfied_by(model));
        }
    }

    #[test]
    fn multiplier_miters_are_unsat() {
        for width in [2, 3] {
            assert!(solve(&multiplier_miter(width)).is_unsat(), "width={width}");
        }
    }

    #[test]
    fn rotator_miters_are_unsat() {
        for bits in [2, 4] {
            assert!(solve(&rotator_miter(bits)).is_unsat(), "bits={bits}");
        }
    }

    #[test]
    fn remap_miters_are_unsat() {
        for width in [3, 6] {
            assert!(solve(&nand_remap_miter(width)).is_unsat(), "nand {width}");
        }
        for bits in [2, 4] {
            assert!(solve(&aig_remap_miter(bits)).is_unsat(), "aig {bits}");
        }
    }

    #[test]
    fn labels_are_consistent() {
        let i = adder_miter(4);
        assert_eq!(i.name, "equiv_adder_4");
        assert_eq!(i.family, Family::Equivalence);
        assert_eq!(i.expected, Some(SatStatus::Unsatisfiable));
    }
}
