//! Graph colouring as SAT.

use crate::{Family, Instance};
use rescheck_cnf::{Cnf, SatStatus, SplitMix64, Var};

/// Encodes "`graph` is `colors`-colourable" over variables
/// `x[v][c] = vertex v has colour c`.
///
/// Clauses: every vertex gets at least one colour, at most one colour,
/// and adjacent vertices differ.
pub fn coloring_cnf(num_vertices: usize, edges: &[(usize, usize)], colors: usize) -> Cnf {
    let mut cnf = Cnf::with_vars(num_vertices * colors);
    let var = |v: usize, c: usize| Var::new(v * colors + c);
    for v in 0..num_vertices {
        cnf.add_clause((0..colors).map(|c| var(v, c).positive()));
        for c1 in 0..colors {
            for c2 in c1 + 1..colors {
                cnf.add_clause([var(v, c1).negative(), var(v, c2).negative()]);
            }
        }
    }
    for &(a, b) in edges {
        debug_assert!(a < num_vertices && b < num_vertices && a != b);
        for c in 0..colors {
            cnf.add_clause([var(a, c).negative(), var(b, c).negative()]);
        }
    }
    cnf
}

/// The complete graph on `n` vertices.
pub fn clique_edges(n: usize) -> Vec<(usize, usize)> {
    let mut edges = Vec::with_capacity(n * (n - 1) / 2);
    for a in 0..n {
        for b in a + 1..n {
            edges.push((a, b));
        }
    }
    edges
}

/// Colouring K_{c+1} with `c` colours: unsatisfiable (χ(K_n) = n).
pub fn clique_instance(colors: usize) -> Instance {
    let n = colors + 1;
    Instance::new(
        format!("color_k{n}_{colors}"),
        Family::GraphColoring,
        coloring_cnf(n, &clique_edges(n), colors),
        Some(SatStatus::Unsatisfiable),
    )
}

/// A random sparse graph containing an embedded (c+1)-clique, coloured
/// with `c` colours: unsatisfiable, and the clique is the natural core.
pub fn embedded_clique_instance(vertices: usize, colors: usize, seed: u64) -> Instance {
    let clique = colors + 1;
    assert!(vertices >= clique, "graph must contain the clique");
    let mut rng = SplitMix64::new(seed);
    let mut edges = clique_edges(clique);
    // Sparse random edges among the remaining vertices (and into the
    // clique), average degree ~2.
    for v in clique..vertices {
        for _ in 0..2 {
            let u = rng.range_usize(0..v);
            edges.push((u, v));
        }
    }
    Instance::new(
        format!("color_embedded_{vertices}v_{colors}c_s{seed}"),
        Family::GraphColoring,
        coloring_cnf(vertices, &edges, colors),
        Some(SatStatus::Unsatisfiable),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_colourability() {
        let edges = clique_edges(3);
        assert!(coloring_cnf(3, &edges, 2).brute_force_status().is_unsat());
        assert!(coloring_cnf(3, &edges, 3).brute_force_status().is_sat());
    }

    #[test]
    fn clique_instances_are_unsat() {
        for colors in [2, 3] {
            let inst = clique_instance(colors);
            assert!(inst.cnf.brute_force_status().is_unsat(), "colors={colors}");
        }
    }

    #[test]
    fn path_is_two_colourable() {
        let edges = vec![(0, 1), (1, 2), (2, 3)];
        assert!(coloring_cnf(4, &edges, 2).brute_force_status().is_sat());
    }

    #[test]
    fn embedded_clique_stays_unsat_and_is_deterministic() {
        let a = embedded_clique_instance(8, 2, 42);
        let b = embedded_clique_instance(8, 2, 42);
        assert_eq!(a.cnf, b.cnf);
        assert!(a.cnf.brute_force_status().is_unsat());
        // A different seed gives a different graph (very likely).
        let c = embedded_clique_instance(8, 2, 43);
        assert_ne!(a.cnf, c.cnf);
    }
}
