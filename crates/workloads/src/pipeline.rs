//! Microprocessor-verification analogue (the paper's `2dlx`, `9vliw` and
//! `pipe` instances, after Velev & Bryant).
//!
//! The real instances compare a pipelined microprocessor against its ISA
//! specification. The structure that matters to the solver is a deep
//! *datapath correspondence* obligation: two multi-stage implementations
//! of the same word-level function, one "specification-shaped", one
//! "implementation-shaped" with forwarding-style muxes, mitered together.
//! These generators reproduce that shape at configurable width and depth.

use crate::{Family, Instance};
use rescheck_circuit::{arith, miter, u64_to_bits, Circuit, NodeId};
use rescheck_cnf::SatStatus;

/// One stage of the datapath: `out = rot(in ⊞ k, r) ⊕ m`, all word-wide.
fn stage_spec(c: &mut Circuit, word: &[NodeId], k: u64, rot: usize, m: u64) -> Vec<NodeId> {
    let width = word.len();
    let k_bits: Vec<NodeId> = u64_to_bits(k, width)
        .into_iter()
        .map(|b| c.constant(b))
        .collect();
    let sum: Vec<NodeId> = arith::ripple_carry_add(c, word, &k_bits)
        .into_iter()
        .take(width)
        .collect();
    let rotated: Vec<NodeId> = (0..width)
        .map(|i| sum[(i + width - rot % width) % width])
        .collect();
    u64_to_bits(m, width)
        .into_iter()
        .zip(rotated)
        .map(|(mb, bit)| {
            let mc = c.constant(mb);
            c.xor(bit, mc)
        })
        .collect()
}

/// The same stage, implementation-shaped: carry-select adder, a decoded
/// rotator realized through forwarding-style muxes, and gated XOR masks.
fn stage_impl(c: &mut Circuit, word: &[NodeId], k: u64, rot: usize, m: u64) -> Vec<NodeId> {
    let width = word.len();
    let k_bits: Vec<NodeId> = u64_to_bits(k, width)
        .into_iter()
        .map(|b| c.constant(b))
        .collect();
    let sum: Vec<NodeId> = arith::carry_select_add(c, word, &k_bits, 2)
        .into_iter()
        .take(width)
        .collect();
    // Forwarding-style: select between the rotated and unrotated word
    // with a condition that is constantly true but built from real logic
    // the solver must reason through (a ⊕ a ⊕ 1 via two paths).
    let probe = sum[0];
    let np = c.not(probe);
    let always = c.or(probe, np);
    let rotated: Vec<NodeId> = (0..width)
        .map(|i| {
            let from = sum[(i + width - rot % width) % width];
            c.mux(always, from, sum[i])
        })
        .collect();
    u64_to_bits(m, width)
        .into_iter()
        .zip(rotated)
        .map(|(mb, bit)| {
            let mc = c.constant(mb);
            c.xor(bit, mc)
        })
        .collect()
}

/// Per-stage constants derived deterministically from the stage index.
fn stage_params(stage: usize, width: usize) -> (u64, usize, u64) {
    let k = (0x9e37_79b9_7f4a_7c15u64.rotate_left(stage as u32 * 7)) & ((1 << width) - 1);
    let rot = (stage * 3 + 1) % width;
    let m = (0xc2b2_ae3d_27d4_eb4fu64.rotate_left(stage as u32 * 11)) & ((1 << width) - 1);
    (k, rot, m)
}

/// Builds the pipelined-datapath equivalence obligation: `depth` stages
/// over a `width`-bit word, specification vs. implementation shape.
/// UNSAT ⇔ the pipeline is correct.
///
/// # Panics
///
/// Panics if `width < 2` or `width > 63`.
pub fn pipe(width: usize, depth: usize) -> Instance {
    assert!((2..=63).contains(&width));
    let mut spec = Circuit::new();
    let mut word = spec.input_word(width);
    for s in 0..depth {
        let (k, rot, m) = stage_params(s, width);
        word = stage_spec(&mut spec, &word, k, rot, m);
    }
    spec.set_outputs(word);

    let mut imp = Circuit::new();
    let mut word = imp.input_word(width);
    for s in 0..depth {
        let (k, rot, m) = stage_params(s, width);
        word = stage_impl(&mut imp, &word, k, rot, m);
    }
    imp.set_outputs(word);

    let cnf = miter::equivalence_cnf(&spec, &imp).expect("same interface");
    Instance::new(
        format!("pipe_w{width}_d{depth}"),
        Family::Pipeline,
        cnf,
        Some(SatStatus::Unsatisfiable),
    )
}

/// A pipeline with a forwarding bug in its last stage (the mux picks the
/// unrotated word): SAT, exposing the defect.
pub fn buggy_pipe(width: usize, depth: usize) -> Instance {
    assert!((2..=63).contains(&width));
    assert!(depth >= 1);
    let mut spec = Circuit::new();
    let mut word = spec.input_word(width);
    for s in 0..depth {
        let (k, rot, m) = stage_params(s, width);
        word = stage_spec(&mut spec, &word, k, rot, m);
    }
    spec.set_outputs(word);

    let mut imp = Circuit::new();
    let mut word = imp.input_word(width);
    for s in 0..depth - 1 {
        let (k, rot, m) = stage_params(s, width);
        word = stage_impl(&mut imp, &word, k, rot, m);
    }
    // Final stage with the rotation dropped (rot = 0 instead of the
    // specified amount — a classic forwarding-path bug).
    let (k, rot, m) = stage_params(depth - 1, width);
    debug_assert_ne!(rot % width, 0, "the bug must change behaviour");
    word = stage_impl(&mut imp, &word, k, 0, m);
    imp.set_outputs(word);

    let cnf = miter::equivalence_cnf(&spec, &imp).expect("same interface");
    Instance::new(
        format!("pipe_buggy_w{width}_d{depth}"),
        Family::Pipeline,
        cnf,
        Some(SatStatus::Satisfiable),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescheck_solver::{Solver, SolverConfig};

    #[test]
    fn stage_shapes_agree_by_simulation() {
        let width = 6;
        for stage in 0..4 {
            let (k, rot, m) = stage_params(stage, width);
            let mut a = Circuit::new();
            let w = a.input_word(width);
            let out = stage_spec(&mut a, &w, k, rot, m);
            a.set_outputs(out);
            let mut b = Circuit::new();
            let w = b.input_word(width);
            let out = stage_impl(&mut b, &w, k, rot, m);
            b.set_outputs(out);
            for x in [0u64, 1, 5, 17, 63] {
                let bits = u64_to_bits(x, width);
                assert_eq!(a.simulate(&bits), b.simulate(&bits), "stage {stage} x={x}");
            }
        }
    }

    #[test]
    fn pipes_are_unsat() {
        for (w, d) in [(4, 1), (4, 2), (6, 2)] {
            let inst = pipe(w, d);
            let mut solver = Solver::from_cnf(&inst.cnf, SolverConfig::default());
            assert!(solver.solve().is_unsat(), "pipe({w},{d})");
        }
    }

    #[test]
    fn buggy_pipes_are_sat_with_real_counterexamples() {
        for (w, d) in [(4, 1), (5, 2)] {
            let inst = buggy_pipe(w, d);
            let mut solver = Solver::from_cnf(&inst.cnf, SolverConfig::default());
            let result = solver.solve();
            let model = result.model().expect("bug must be found");
            assert!(inst.cnf.is_satisfied_by(model));
        }
    }

    #[test]
    fn params_are_deterministic_and_distinct() {
        assert_eq!(stage_params(2, 8), stage_params(2, 8));
        assert_ne!(stage_params(1, 8), stage_params(2, 8));
    }
}
