//! Labelled benchmark instances.

use rescheck_cnf::{Cnf, SatStatus};
use std::fmt;

/// The benchmark family an instance belongs to (paper §4's columns).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Family {
    /// Microprocessor-verification analogue (pipelined datapath miters).
    Pipeline,
    /// Bounded model checking (token ring / unrolled multiplier).
    Bmc,
    /// Combinational equivalence checking miters.
    Equivalence,
    /// FPGA channel-routing feasibility.
    Routing,
    /// AI planning (reachability within a horizon).
    Planning,
    /// Pigeonhole principle.
    Pigeonhole,
    /// XOR/parity chains and cycles.
    Parity,
    /// Graph colouring.
    GraphColoring,
    /// Random k-SAT.
    RandomKSat,
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Family::Pipeline => "pipeline",
            Family::Bmc => "bmc",
            Family::Equivalence => "equivalence",
            Family::Routing => "routing",
            Family::Planning => "planning",
            Family::Pigeonhole => "pigeonhole",
            Family::Parity => "parity",
            Family::GraphColoring => "graph-coloring",
            Family::RandomKSat => "random-ksat",
        };
        f.write_str(s)
    }
}

/// A named benchmark instance with its ground-truth status.
///
/// # Examples
///
/// ```
/// use rescheck_workloads::{Family, Instance};
/// use rescheck_cnf::{Cnf, SatStatus};
///
/// let mut cnf = Cnf::new();
/// cnf.add_dimacs_clause(&[1]);
/// cnf.add_dimacs_clause(&[-1]);
/// let inst = Instance::new("tiny", Family::Parity, cnf, Some(SatStatus::Unsatisfiable));
/// assert_eq!(inst.num_vars(), 1);
/// assert_eq!(inst.num_clauses(), 2);
/// assert_eq!(inst.to_string(), "tiny (parity, 1 vars, 2 clauses)");
/// ```
#[derive(Clone, Debug)]
pub struct Instance {
    /// Human-readable name (mirrors the paper's instance names).
    pub name: String,
    /// The benchmark family.
    pub family: Family,
    /// The formula.
    pub cnf: Cnf,
    /// The status known by construction, or `None` when genuinely
    /// unknown (e.g. random k-SAT near the phase transition).
    pub expected: Option<SatStatus>,
}

impl Instance {
    /// Creates a labelled instance.
    pub fn new(
        name: impl Into<String>,
        family: Family,
        cnf: Cnf,
        expected: Option<SatStatus>,
    ) -> Self {
        Instance {
            name: name.into(),
            family,
            cnf,
            expected,
        }
    }

    /// Declared variable count of the formula.
    pub fn num_vars(&self) -> usize {
        self.cnf.num_vars()
    }

    /// Clause count of the formula.
    pub fn num_clauses(&self) -> usize {
        self.cnf.num_clauses()
    }
}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}, {} vars, {} clauses)",
            self.name,
            self.family,
            self.num_vars(),
            self.num_clauses()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_display_is_kebab() {
        assert_eq!(Family::GraphColoring.to_string(), "graph-coloring");
        assert_eq!(Family::Bmc.to_string(), "bmc");
    }

    #[test]
    fn instance_reports_sizes() {
        let mut cnf = Cnf::with_vars(5);
        cnf.add_dimacs_clause(&[1, 2]);
        let inst = Instance::new("x", Family::Routing, cnf, None);
        assert_eq!(inst.num_vars(), 5);
        assert_eq!(inst.num_clauses(), 1);
        assert_eq!(inst.expected, None);
    }
}
