//! SAT-based planning (the paper's `bw_large.d`, after SATPLAN).
//!
//! A navigation planning problem: an agent moves along the edges of a
//! graph, one step per time point, and must reach a goal location within
//! a horizon. The encoding is the standard layered one — `at(v, t)`
//! variables, exactly-one-location axioms, move axioms. Making the goal
//! unreachable (it sits in a disconnected component) yields UNSAT
//! instances whose core explains *why no plan exists*, the application
//! the paper highlights in §4.

use crate::{Family, Instance};
use rescheck_cnf::{Cnf, SatStatus, SplitMix64, Var};

/// A planning world: locations and undirected move edges.
#[derive(Clone, Debug, Default)]
pub struct World {
    num_locations: usize,
    adjacency: Vec<Vec<usize>>,
}

impl World {
    /// Creates a world with `n` isolated locations.
    pub fn new(n: usize) -> Self {
        World {
            num_locations: n,
            adjacency: vec![Vec::new(); n],
        }
    }

    /// Number of locations.
    pub fn num_locations(&self) -> usize {
        self.num_locations
    }

    /// Adds a bidirectional move edge.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range or self-loop edges.
    pub fn add_edge(&mut self, a: usize, b: usize) {
        assert!(a != b && a < self.num_locations && b < self.num_locations);
        if !self.adjacency[a].contains(&b) {
            self.adjacency[a].push(b);
            self.adjacency[b].push(a);
        }
    }

    /// Locations reachable in one move from `v` (not including waiting).
    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.adjacency[v]
    }

    /// Breadth-first reachability from `start`.
    pub fn reachable(&self, start: usize) -> Vec<bool> {
        let mut seen = vec![false; self.num_locations];
        let mut queue = std::collections::VecDeque::from([start]);
        seen[start] = true;
        while let Some(v) = queue.pop_front() {
            for &u in self.neighbors(v) {
                if !seen[u] {
                    seen[u] = true;
                    queue.push_back(u);
                }
            }
        }
        seen
    }
}

/// Encodes "starting at `start`, reach `goal` within `horizon` moves"
/// (waiting in place is allowed).
///
/// Variables: `at(v, t)` for `t in 0..=horizon`. Clauses: initial state,
/// exactly-one location per time, frame/move axioms (`at(v,t) →
/// at(v,t+1) ∨ ⋁ at(u,t+1)` over neighbours `u`), goal at the horizon.
pub fn plan_cnf(world: &World, start: usize, goal: usize, horizon: usize) -> Cnf {
    let n = world.num_locations();
    assert!(start < n && goal < n);
    let mut cnf = Cnf::with_vars(n * (horizon + 1));
    let at = |v: usize, t: usize| Var::new(t * n + v);

    cnf.add_clause([at(start, 0).positive()]);
    for t in 0..=horizon {
        cnf.add_clause((0..n).map(|v| at(v, t).positive()));
        for v1 in 0..n {
            for v2 in v1 + 1..n {
                cnf.add_clause([at(v1, t).negative(), at(v2, t).negative()]);
            }
        }
    }
    for t in 0..horizon {
        for v in 0..n {
            let mut clause = vec![at(v, t).negative(), at(v, t + 1).positive()];
            clause.extend(world.neighbors(v).iter().map(|&u| at(u, t + 1).positive()));
            cnf.push_clause(clause.into());
        }
    }
    cnf.add_clause([at(goal, horizon).positive()]);
    cnf
}

/// A two-component world: a connected "warehouse" of `reachable_size`
/// locations containing the start, and a separate component holding the
/// goal. Any horizon gives an UNSAT instance; the core explains the
/// disconnection.
pub fn unreachable_goal(
    reachable_size: usize,
    island_size: usize,
    horizon: usize,
    seed: u64,
) -> Instance {
    assert!(reachable_size >= 2 && island_size >= 1);
    let n = reachable_size + island_size;
    let mut rng = SplitMix64::new(seed);
    let mut world = World::new(n);
    // Connected component A: a random spanning tree plus extra edges.
    for v in 1..reachable_size {
        let u = rng.range_usize(0..v);
        world.add_edge(u, v);
    }
    for _ in 0..reachable_size / 2 {
        let a = rng.range_usize(0..reachable_size);
        let b = rng.range_usize(0..reachable_size);
        if a != b {
            world.add_edge(a, b);
        }
    }
    // Component B (the island): a path among the island locations.
    for v in reachable_size + 1..n {
        world.add_edge(v - 1, v);
    }
    let goal = n - 1;
    debug_assert!(!world.reachable(0)[goal]);
    Instance::new(
        format!("plan_unreach_{n}l_h{horizon}_s{seed}"),
        Family::Planning,
        plan_cnf(&world, 0, goal, horizon),
        Some(SatStatus::Unsatisfiable),
    )
}

/// A connected world where the goal is reachable but the horizon is one
/// step too short: UNSAT, with the core revealing the distance argument.
pub fn too_short_horizon(path_length: usize) -> Instance {
    assert!(path_length >= 2);
    let mut world = World::new(path_length + 1);
    for v in 0..path_length {
        world.add_edge(v, v + 1);
    }
    Instance::new(
        format!("plan_short_{path_length}"),
        Family::Planning,
        plan_cnf(&world, 0, path_length, path_length - 1),
        Some(SatStatus::Unsatisfiable),
    )
}

/// Multi-agent encoding: `agents` agents move simultaneously on `world`
/// (waiting allowed), never share a location, and never swap across an
/// edge in a single step. Each agent must reach its goal at the horizon.
///
/// Variables are `at(a, v, t)`; the axioms are per-agent exactly-one and
/// move clauses plus pairwise collision and swap constraints.
pub fn multi_agent_cnf(world: &World, starts: &[usize], goals: &[usize], horizon: usize) -> Cnf {
    assert_eq!(starts.len(), goals.len());
    let n = world.num_locations();
    let agents = starts.len();
    let mut cnf = Cnf::with_vars(agents * n * (horizon + 1));
    let at = |a: usize, v: usize, t: usize| Var::new((t * agents + a) * n + v);

    for (a, (&s, &g)) in starts.iter().zip(goals).enumerate() {
        cnf.add_clause([at(a, s, 0).positive()]);
        cnf.add_clause([at(a, g, horizon).positive()]);
        for t in 0..=horizon {
            cnf.add_clause((0..n).map(|v| at(a, v, t).positive()));
            for v1 in 0..n {
                for v2 in v1 + 1..n {
                    cnf.add_clause([at(a, v1, t).negative(), at(a, v2, t).negative()]);
                }
            }
        }
        for t in 0..horizon {
            for v in 0..n {
                let mut clause = vec![at(a, v, t).negative(), at(a, v, t + 1).positive()];
                clause.extend(
                    world
                        .neighbors(v)
                        .iter()
                        .map(|&u| at(a, u, t + 1).positive()),
                );
                cnf.push_clause(clause.into());
            }
        }
    }
    // Collisions and swaps.
    for a1 in 0..agents {
        for a2 in a1 + 1..agents {
            for t in 0..=horizon {
                for v in 0..n {
                    cnf.add_clause([at(a1, v, t).negative(), at(a2, v, t).negative()]);
                }
            }
            for t in 0..horizon {
                for v in 0..n {
                    for &u in world.neighbors(v) {
                        if u > v {
                            // a1: v→u while a2: u→v is forbidden (and the
                            // symmetric case).
                            cnf.add_clause([
                                at(a1, v, t).negative(),
                                at(a1, u, t + 1).negative(),
                                at(a2, u, t).negative(),
                                at(a2, v, t + 1).negative(),
                            ]);
                            cnf.add_clause([
                                at(a2, v, t).negative(),
                                at(a2, u, t + 1).negative(),
                                at(a1, u, t).negative(),
                                at(a1, v, t + 1).negative(),
                            ]);
                        }
                    }
                }
            }
        }
    }
    cnf
}

/// Two agents at the ends of a path graph must exchange positions: with
/// no way to pass each other this is impossible at **any** horizon, but
/// proving it needs the global ordering invariant, not just unit
/// propagation — the `bw_large.d`-style instance of the suite.
pub fn agent_swap(path_length: usize, horizon: usize) -> Instance {
    assert!(path_length >= 2);
    let mut world = World::new(path_length);
    for v in 0..path_length - 1 {
        world.add_edge(v, v + 1);
    }
    let starts = [0, path_length - 1];
    let goals = [path_length - 1, 0];
    Instance::new(
        format!("plan_swap_{path_length}_h{horizon}"),
        Family::Planning,
        multi_agent_cnf(&world, &starts, &goals, horizon),
        Some(SatStatus::Unsatisfiable),
    )
}

/// The satisfiable multi-agent twin: the path has a passing bay (one
/// extra location attached to the middle), so the swap succeeds given
/// enough steps.
pub fn agent_swap_with_bay(path_length: usize, horizon: usize) -> Instance {
    assert!(path_length >= 3);
    let mut world = World::new(path_length + 1);
    for v in 0..path_length - 1 {
        world.add_edge(v, v + 1);
    }
    let bay = path_length;
    world.add_edge(path_length / 2, bay);
    let starts = [0, path_length - 1];
    let goals = [path_length - 1, 0];
    let expected = if horizon >= path_length + 3 {
        Some(SatStatus::Satisfiable)
    } else {
        None
    };
    Instance::new(
        format!("plan_swap_bay_{path_length}_h{horizon}"),
        Family::Planning,
        multi_agent_cnf(&world, &starts, &goals, horizon),
        expected,
    )
}

/// The satisfiable twin of [`too_short_horizon`]: exactly enough steps.
pub fn exact_horizon(path_length: usize) -> Instance {
    assert!(path_length >= 1);
    let mut world = World::new(path_length + 1);
    for v in 0..path_length {
        world.add_edge(v, v + 1);
    }
    Instance::new(
        format!("plan_exact_{path_length}"),
        Family::Planning,
        plan_cnf(&world, 0, path_length, path_length),
        Some(SatStatus::Satisfiable),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescheck_solver::{Solver, SolverConfig};

    #[test]
    fn reachability_bfs() {
        let mut w = World::new(4);
        w.add_edge(0, 1);
        w.add_edge(2, 3);
        let r = w.reachable(0);
        assert_eq!(r, vec![true, true, false, false]);
    }

    #[test]
    fn path_planning_brute_force() {
        let mut w = World::new(3);
        w.add_edge(0, 1);
        w.add_edge(1, 2);
        assert!(plan_cnf(&w, 0, 2, 2).brute_force_status().is_sat());
        assert!(plan_cnf(&w, 0, 2, 1).brute_force_status().is_unsat());
        // Waiting is allowed: a longer horizon still works.
        assert!(plan_cnf(&w, 0, 2, 4).brute_force_status().is_sat());
    }

    #[test]
    fn unreachable_goal_is_unsat() {
        let inst = unreachable_goal(6, 3, 5, 3);
        let mut solver = Solver::from_cnf(&inst.cnf, SolverConfig::default());
        assert!(solver.solve().is_unsat());
    }

    #[test]
    fn horizon_twins() {
        let short = too_short_horizon(4);
        let mut solver = Solver::from_cnf(&short.cnf, SolverConfig::default());
        assert!(solver.solve().is_unsat());

        let exact = exact_horizon(4);
        let mut solver = Solver::from_cnf(&exact.cnf, SolverConfig::default());
        let result = solver.solve();
        assert!(exact.cnf.is_satisfied_by(result.model().unwrap()));
    }

    #[test]
    fn agent_swap_is_unsat_by_brute_force_when_tiny() {
        // 3 locations, horizon 2: 2*3*3 = 18 vars, still brute-forceable.
        let inst = agent_swap(3, 2);
        assert!(inst.cnf.brute_force_status().is_unsat());
    }

    #[test]
    fn agent_swap_is_unsat_for_the_solver() {
        let inst = agent_swap(4, 6);
        let mut solver = Solver::from_cnf(&inst.cnf, SolverConfig::default());
        assert!(solver.solve().is_unsat());
        // Unlike the single-agent instances, this one needs real search.
        assert!(solver.stats().learned_clauses > 0);
    }

    #[test]
    fn passing_bay_makes_the_swap_possible() {
        let inst = agent_swap_with_bay(4, 8);
        assert_eq!(inst.expected, Some(SatStatus::Satisfiable));
        let mut solver = Solver::from_cnf(&inst.cnf, SolverConfig::default());
        let result = solver.solve();
        assert!(inst.cnf.is_satisfied_by(result.model().unwrap()));
    }

    #[test]
    fn worlds_dedupe_edges() {
        let mut w = World::new(2);
        w.add_edge(0, 1);
        w.add_edge(1, 0);
        assert_eq!(w.neighbors(0), &[1]);
        assert_eq!(w.neighbors(1), &[0]);
    }
}
