//! Automatic test pattern generation (ATPG) as SAT — the first EDA
//! application listed in the paper's introduction.
//!
//! For a stuck-at fault, the good-vs-faulty miter is SAT exactly when a
//! test pattern exists; an **UNSAT answer proves the fault untestable**
//! (the logic is redundant), a signoff-grade claim that deserves a
//! checked proof. The unsat core then points at the redundancy itself.

use crate::{Family, Instance};
use rescheck_circuit::{arith, fault, miter, Circuit, NodeId};
use rescheck_cnf::SatStatus;

/// A carry-select adder with `redundancy` spare mux stages whose select
/// lines do not affect the function (both mux branches carry the same
/// signal) — a typical source of untestable faults after conservative
/// synthesis. Returns the circuit and the redundant select-derived nodes.
fn adder_with_redundant_bypass(width: usize, redundancy: usize) -> (Circuit, Vec<NodeId>) {
    let mut c = Circuit::new();
    let a = c.input_word(width);
    let b = c.input_word(width);
    let spare = c.input_word(redundancy); // exercised but functionally dead
    let mut sum = arith::carry_select_add(&mut c, &a, &b, 2);
    let mut dead_nodes = Vec::with_capacity(redundancy);
    for (i, &s) in spare.iter().enumerate() {
        // sum[i] routed through a bypass that selects between two copies
        // of itself: (s ∧ v) ∨ (¬s ∧ v). Built by hand so folding keeps
        // the select network alive.
        let v = sum[i % sum.len()];
        let t1 = c.and(s, v);
        let ns = c.not(s);
        let t2 = c.and(ns, v);
        let bypassed = c.or(t1, t2);
        dead_nodes.push(ns);
        let idx = i % sum.len();
        sum[idx] = bypassed;
    }
    c.set_outputs(sum);
    (c, dead_nodes)
}

/// A testable stuck-at fault on an adder's carry chain: SAT, and the
/// model *is* the test pattern.
pub fn testable_fault(width: usize) -> Instance {
    let mut good = Circuit::new();
    let a = good.input_word(width);
    let b = good.input_word(width);
    let sum = arith::ripple_carry_add(&mut good, &a, &b);
    good.set_outputs(sum);

    // Fault site: the final sum bit (always observable and testable).
    let site = *good.outputs().last().expect("adder has outputs");
    let faulty = fault::inject_stuck_at(&good, site, false);
    let cnf = miter::equivalence_cnf(&good, &faulty).expect("same interface");
    Instance::new(
        format!("atpg_testable_{width}"),
        Family::Equivalence,
        cnf,
        Some(SatStatus::Satisfiable),
    )
}

/// An untestable stuck-at-1 fault on a redundant bypass select: UNSAT —
/// the proof certifies the redundancy.
pub fn redundant_fault(width: usize, redundancy: usize) -> Instance {
    assert!(redundancy >= 1);
    let (good, dead) = adder_with_redundant_bypass(width, redundancy);
    // ¬s stuck at 1 turns the bypass into (s∧v) ∨ v = v: the good
    // function. No input vector can distinguish the circuits.
    let faulty = fault::inject_stuck_at(&good, dead[0], true);
    let cnf = miter::equivalence_cnf(&good, &faulty).expect("same interface");
    Instance::new(
        format!("atpg_redundant_{width}_{redundancy}"),
        Family::Equivalence,
        cnf,
        Some(SatStatus::Unsatisfiable),
    )
}

/// Full single-fault coverage sweep: for every internal node and both
/// stuck values, the good-vs-faulty miter CNF plus its expected status
/// where cheaply known (`None` where it must be discovered by solving).
pub fn fault_sweep(width: usize) -> Vec<Instance> {
    let mut good = Circuit::new();
    let a = good.input_word(width);
    let b = good.input_word(width);
    let sum = arith::ripple_carry_add(&mut good, &a, &b);
    good.set_outputs(sum);
    fault::fault_sites(&good)
        .into_iter()
        .flat_map(|site| [false, true].into_iter().map(move |value| (site, value)))
        .map(|(site, value)| {
            let faulty = fault::inject_stuck_at(&good, site, value);
            let cnf = miter::equivalence_cnf(&good, &faulty).expect("same interface");
            Instance::new(
                format!("atpg_sweep_{width}_n{}_{}", site.index(), u8::from(value)),
                Family::Equivalence,
                cnf,
                None,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescheck_checker::{check_unsat_claim, CheckConfig, Strategy};
    use rescheck_solver::{SolveResult, Solver, SolverConfig};
    use rescheck_trace::MemorySink;

    #[test]
    fn testable_fault_yields_a_pattern() {
        let inst = testable_fault(4);
        let mut solver = Solver::from_cnf(&inst.cnf, SolverConfig::default());
        let result = solver.solve();
        let model = result.model().expect("fault must be testable");
        assert!(inst.cnf.is_satisfied_by(model));
    }

    #[test]
    fn redundant_fault_is_untestable_with_checked_proof() {
        let inst = redundant_fault(4, 2);
        let mut solver = Solver::from_cnf(&inst.cnf, SolverConfig::default());
        let mut trace = MemorySink::new();
        let result = solver.solve_traced(&mut trace).unwrap();
        assert!(result.is_unsat(), "fault must be untestable");
        for strategy in [
            Strategy::DepthFirst,
            Strategy::BreadthFirst,
            Strategy::Hybrid,
        ] {
            check_unsat_claim(&inst.cnf, &trace, strategy, &CheckConfig::default())
                .unwrap_or_else(|e| panic!("{strategy}: {e}"));
        }
    }

    #[test]
    fn fault_sweep_classifies_every_fault() {
        // On a plain ripple-carry adder every internal stuck-at fault is
        // testable (no redundancy) — verify a sweep at width 2.
        let mut testable = 0;
        for inst in fault_sweep(2) {
            let mut solver = Solver::from_cnf(&inst.cnf, SolverConfig::default());
            match solver.solve() {
                SolveResult::Satisfiable(model) => {
                    assert!(inst.cnf.is_satisfied_by(&model), "{}", inst.name);
                    testable += 1;
                }
                SolveResult::Unsatisfiable => {
                    panic!("{}: ripple adders have no redundancy", inst.name)
                }
                SolveResult::Unknown => unreachable!(),
            }
        }
        assert!(testable > 10, "a sweep covers many fault sites");
    }

    #[test]
    fn redundancy_core_points_at_the_bypass() {
        use rescheck_checker::check_depth_first;
        let inst = redundant_fault(3, 1);
        let mut solver = Solver::from_cnf(&inst.cnf, SolverConfig::default());
        let mut trace = MemorySink::new();
        assert!(solver.solve_traced(&mut trace).unwrap().is_unsat());
        let outcome = check_depth_first(&inst.cnf, &trace, &CheckConfig::default()).unwrap();
        let core = outcome.core.unwrap();
        // The redundancy argument is local: the core is a proper subset
        // of the miter encoding.
        assert!(core.num_clauses() < inst.num_clauses());
    }
}
