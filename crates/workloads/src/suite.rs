//! Benchmark suites mirroring the paper's evaluation tables.

use crate::{bmc, equiv, pipeline, planning, routing, Instance};

/// The twelve-instance suite mirroring Table 1 of the paper, in the same
/// order (increasing solver effort) and with names echoing the original
/// benchmark each row substitutes for.
///
/// Sizes are tuned so the full suite solves in minutes on one laptop
/// core rather than the hours the 2003 originals took; the *relative*
/// behaviour (trace overhead, DF-vs-BF ratios, core sizes) is what the
/// harness reproduces.
pub fn paper_suite() -> Vec<Instance> {
    let rename = |mut inst: Instance, paper_name: &str| {
        inst.name = format!("{paper_name}[{}]", inst.name);
        inst
    };
    vec![
        rename(pipeline::pipe(10, 2), "2dlx_cc_mc_ex_bp_f"),
        rename(planning::agent_swap(9, 16), "bw_large.d"),
        rename(equiv::rotator_miter(8), "c5135"),
        rename(routing::congested_channel(6, 24, 262), "too_largefs3w8v262"),
        rename(equiv::multiplier_miter(4), "c7225"),
        rename(pipeline::pipe(12, 3), "5pipe_5_ooo"),
        rename(bmc::barrel(10, 12), "barrel"),
        rename(bmc::longmult(7), "longmult"),
        rename(pipeline::pipe(14, 4), "9vliw_bp_mc"),
        rename(pipeline::pipe(16, 5), "6pipe_6_ooo"),
        rename(pipeline::pipe(18, 6), "6pipe"),
        rename(pipeline::pipe(20, 7), "7pipe"),
    ]
}

/// The ten-instance subset used for the core-extraction experiment
/// (Table 3 drops the two hardest rows, on which the depth-first checker
/// ran out of memory).
pub fn table3_suite() -> Vec<Instance> {
    let mut suite = paper_suite();
    suite.truncate(10);
    suite
}

/// A small suite of one instance per family that solves in well under a
/// second — for tests and smoke benchmarks.
pub fn quick_suite() -> Vec<Instance> {
    vec![
        crate::pigeonhole::instance(4),
        crate::parity::chained_parity(9),
        crate::parity::tseitin_cubic(8),
        crate::graph_color::clique_instance(3),
        equiv::adder_miter(4),
        equiv::nand_remap_miter(3),
        crate::atpg::redundant_fault(3, 1),
        bmc::barrel(4, 6),
        bmc::longmult(3),
        bmc::sequential_multiplier(2, 4),
        pipeline::pipe(5, 1),
        routing::congested_channel(3, 6, 1),
        planning::unreachable_goal(5, 2, 4, 1),
        planning::agent_swap(4, 6),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescheck_cnf::SatStatus;

    #[test]
    fn paper_suite_has_twelve_labelled_unsat_rows() {
        let suite = paper_suite();
        assert_eq!(suite.len(), 12);
        for inst in &suite {
            assert_eq!(
                inst.expected,
                Some(SatStatus::Unsatisfiable),
                "{}",
                inst.name
            );
            assert!(inst.num_clauses() > 0, "{}", inst.name);
            assert!(inst.name.contains('['), "{}", inst.name);
        }
        // Names echo the paper's rows.
        assert!(suite[0].name.starts_with("2dlx"));
        assert!(suite[11].name.starts_with("7pipe"));
    }

    #[test]
    fn table3_suite_is_the_first_ten() {
        let t3 = table3_suite();
        assert_eq!(t3.len(), 10);
        let full = paper_suite();
        for (a, b) in t3.iter().zip(&full) {
            assert_eq!(a.name, b.name);
        }
    }

    #[test]
    fn quick_suite_covers_every_unsat_family() {
        use std::collections::HashSet;
        let families: HashSet<_> = quick_suite().iter().map(|i| i.family).collect();
        assert!(families.len() >= 7);
        for inst in quick_suite() {
            assert_eq!(
                inst.expected,
                Some(SatStatus::Unsatisfiable),
                "{}",
                inst.name
            );
        }
    }
}
