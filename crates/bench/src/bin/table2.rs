//! Regenerates **Table 2** of the paper: the checking strategies compared
//! on the same traces.
//!
//! ```text
//! cargo run --release -p rescheck-bench --bin table2 [mem_limit_bytes] [--json <out.json>]
//! ```
//!
//! Columns mirror the paper: trace size, depth-first clauses built /
//! built% / runtime / peak memory, breadth-first runtime / peak memory —
//! plus a third block for the *hybrid* strategy (the on-disk depth-first
//! design the paper's conclusion proposes, implemented here) and a
//! fourth for the racing *portfolio* (DF vs BF concurrently, first
//! success wins — it survives any budget either racer survives).
//!
//! A `*` marks a memory-out under the budget (the paper used 800 MB on
//! gigabyte-era traces; pass a byte budget to reproduce the effect at
//! today's instance sizes — the default budget is chosen so the hardest
//! rows exceed it with the depth-first strategy only, as in the paper).
//!
//! Expected shape (paper §4): depth-first is faster and builds only part
//! of the learned clauses, but dies first under a budget; breadth-first
//! finishes everything; the hybrid matches depth-first's built count at
//! breadth-first-like memory; checking is always much cheaper than
//! solving; binary traces are 2-3x smaller than ASCII.

use rescheck_bench::{fmt_kb, fmt_secs, measure_check, measure_check_jobs, measure_solve, report};
use rescheck_checker::Strategy;
use rescheck_obs::{Json, Registry};
use rescheck_solver::SolverConfig;
use rescheck_workloads::paper_suite;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = report::take_json_flag(&mut args);
    let mem_limit: Option<u64> = args
        .first()
        .map(|s| s.parse().expect("memory limit in bytes"));
    // Default budget: generous for breadth-first, fatal for depth-first
    // on exactly the two largest rows (mirrors the paper's 800 MB cap,
    // under which only `6pipe` and `7pipe` memory-out).
    let mem_limit = mem_limit.or(Some(16 << 20));

    println!(
        "{:<34} {:>9} {:>9} | {:>8} {:>6} {:>8} {:>9} | {:>8} {:>9} | {:>8} {:>9} | {:>8} {:>9}",
        "Instance",
        "Ascii(KB)",
        "Bin(KB)",
        "DF built",
        "Built%",
        "DF t(s)",
        "DF m(KB)",
        "BF t(s)",
        "BF m(KB)",
        "Hy t(s)",
        "Hy m(KB)",
        "Pf t(s)",
        "Pf m(KB)"
    );
    println!("{}", "-".repeat(155));

    let cfg = SolverConfig::default();
    let mut totals = [0.0f64; 5]; // solve, df, bf, hybrid, portfolio
    let mut rows: Vec<Json> = Vec::new();
    for instance in paper_suite() {
        let solve = measure_solve(&instance, &cfg);
        totals[0] += solve.time_trace_on.as_secs_f64();
        let df = measure_check(&solve, Strategy::DepthFirst, mem_limit);
        let bf = measure_check(&solve, Strategy::BreadthFirst, mem_limit);
        let hy = measure_check(&solve, Strategy::Hybrid, mem_limit);
        // The racing portfolio never memory-outs where breadth-first
        // survives: its column shows what the race costs (and that under
        // the budget it converges on the surviving racer's peak).
        let pf = measure_check_jobs(&solve, Strategy::Portfolio, mem_limit, 0);

        let mut row = Json::object();
        row.set("instance", report::instance_json(&solve))
            .set("depth_first", report::check_report_json(&df))
            .set("breadth_first", report::check_report_json(&bf))
            .set("hybrid", report::check_report_json(&hy))
            .set("portfolio", report::check_report_json(&pf));
        rows.push(row);

        let (df_built, df_pct, df_time, df_mem) = match &df.outcome {
            Ok(o) => {
                totals[1] += o.stats.runtime.as_secs_f64();
                (
                    o.stats.clauses_built.to_string(),
                    format!("{:.0}%", o.stats.built_percent()),
                    fmt_secs(o.stats.runtime),
                    fmt_kb(o.stats.peak_memory_bytes),
                )
            }
            Err(_) => ("*".into(), "*".into(), "*".into(), "*".into()),
        };
        let mut time_mem = |which: usize, outcome: &Result<_, _>| match outcome {
            Ok(o) => {
                let o: &rescheck_checker::CheckOutcome = o;
                totals[which] += o.stats.runtime.as_secs_f64();
                (fmt_secs(o.stats.runtime), fmt_kb(o.stats.peak_memory_bytes))
            }
            Err(_) => ("*".to_string(), "*".to_string()),
        };
        let (bf_time, bf_mem) = time_mem(2, &bf.outcome);
        let (hy_time, hy_mem) = time_mem(3, &hy.outcome);
        let (pf_time, pf_mem) = time_mem(4, &pf.outcome);

        println!(
            "{:<34} {:>9} {:>9} | {:>8} {:>6} {:>8} {:>9} | {:>8} {:>9} | {:>8} {:>9} | {:>8} {:>9}",
            solve.name,
            fmt_kb(solve.trace_ascii_bytes),
            fmt_kb(solve.trace_binary_bytes),
            df_built,
            df_pct,
            df_time,
            df_mem,
            bf_time,
            bf_mem,
            hy_time,
            hy_mem,
            pf_time,
            pf_mem
        );
    }
    println!("{}", "-".repeat(155));
    println!(
        "totals: solve {:.3}s | depth-first {:.3}s | breadth-first {:.3}s | hybrid {:.3}s | \
         portfolio {:.3}s   (memory budget: {} bytes; * = memory out)",
        totals[0],
        totals[1],
        totals[2],
        totals[3],
        totals[4],
        mem_limit.map_or("none".into(), |m| m.to_string()),
    );
    println!();
    println!(
        "Paper shape: DF faster than BF but memory-hungry (and * on the biggest rows); \
         hybrid = DF's built count at BF-like memory (the paper's proposed future work); \
         portfolio races DF vs BF and never stars where either survives; \
         checking ≪ solving; binary trace 2-3x smaller than ASCII."
    );

    if let Some(path) = json_path {
        let mut doc = report::metrics_document("table2", &Registry::new());
        let mut limit = Json::object();
        if let Some(m) = mem_limit {
            limit.set("bytes", m);
        }
        doc.set("rows", Json::Array(rows))
            .set("memory_limit", limit)
            .set("total_solve_seconds", totals[0])
            .set("total_depth_first_seconds", totals[1])
            .set("total_breadth_first_seconds", totals[2])
            .set("total_hybrid_seconds", totals[3])
            .set("total_portfolio_seconds", totals[4]);
        report::write_json(std::path::Path::new(&path), &doc).expect("write --json output");
        eprintln!("metrics written to {path}");
    }
}
