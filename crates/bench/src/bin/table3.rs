//! Regenerates **Table 3** of the paper: original clauses/variables
//! involved in the proof, after one core-extraction iteration and after
//! up to 30 iterations (or a fixed point).
//!
//! ```text
//! cargo run --release -p rescheck-bench --bin table3 [max_iterations]
//! ```
//!
//! Expected shape (paper §4): every core is no larger than the input;
//! the routing and planning rows shrink dramatically (their conflict is
//! local), while tightly-constructed instances keep most clauses.

use rescheck_checker::minimize_core;
use rescheck_solver::SolverConfig;
use rescheck_workloads::table3_suite;

fn main() {
    let max_iterations: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("iteration count"))
        .unwrap_or(30);

    println!(
        "{:<34} {:>9} {:>9} | {:>9} {:>9} | {:>9} {:>9} {:>10}",
        "Instance",
        "Orig.Cls",
        "Orig.Vars",
        "It1 Cls",
        "It1 Vars",
        "Final Cls",
        "Final Vars",
        "Iterations"
    );
    println!("{}", "-".repeat(112));

    let cfg = SolverConfig::default();
    for instance in table3_suite() {
        let result = minimize_core(&instance.cnf, &cfg, max_iterations)
            .unwrap_or_else(|e| panic!("{}: {e}", instance.name));
        let first = result.iterations.first().expect("at least one iteration");
        let last = result.iterations.last().expect("at least one iteration");
        println!(
            "{:<34} {:>9} {:>9} | {:>9} {:>9} | {:>9} {:>9} {:>9}{}",
            instance.name,
            instance.num_clauses(),
            instance.cnf.num_used_vars(),
            first.num_clauses,
            first.num_vars,
            last.num_clauses,
            last.num_vars,
            result.iterations.len(),
            if result.reached_fixed_point { "*" } else { "" },
        );
    }
    println!("{}", "-".repeat(112));
    println!("(* = reached a fixed point: every remaining clause is needed for the proof)");
    println!();
    println!(
        "Paper shape: planning (bw_large.d) and FPGA routing (too_large…) have small \
         unsatisfiable cores; structured miters keep most of their clauses."
    );
}
