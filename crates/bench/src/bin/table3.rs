//! Regenerates **Table 3** of the paper: original clauses/variables
//! involved in the proof, after one core-extraction iteration and after
//! up to 30 iterations (or a fixed point).
//!
//! ```text
//! cargo run --release -p rescheck-bench --bin table3 [max_iterations] [--json <out.json>]
//! ```
//!
//! Expected shape (paper §4): every core is no larger than the input;
//! the routing and planning rows shrink dramatically (their conflict is
//! local), while tightly-constructed instances keep most clauses.

use rescheck_bench::report;
use rescheck_checker::minimize_core;
use rescheck_obs::{Json, Registry};
use rescheck_solver::SolverConfig;
use rescheck_workloads::table3_suite;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = report::take_json_flag(&mut args);
    let max_iterations: usize = args
        .first()
        .map(|s| s.parse().expect("iteration count"))
        .unwrap_or(30);

    println!(
        "{:<34} {:>9} {:>9} | {:>9} {:>9} | {:>9} {:>9} {:>10}",
        "Instance",
        "Orig.Cls",
        "Orig.Vars",
        "It1 Cls",
        "It1 Vars",
        "Final Cls",
        "Final Vars",
        "Iterations"
    );
    println!("{}", "-".repeat(112));

    let cfg = SolverConfig::default();
    let mut rows: Vec<Json> = Vec::new();
    for instance in table3_suite() {
        let result = minimize_core(&instance.cnf, &cfg, max_iterations)
            .unwrap_or_else(|e| panic!("{}: {e}", instance.name));
        let first = result.iterations.first().expect("at least one iteration");
        let last = result.iterations.last().expect("at least one iteration");
        println!(
            "{:<34} {:>9} {:>9} | {:>9} {:>9} | {:>9} {:>9} {:>9}{}",
            instance.name,
            instance.num_clauses(),
            instance.cnf.num_used_vars(),
            first.num_clauses,
            first.num_vars,
            last.num_clauses,
            last.num_vars,
            result.iterations.len(),
            if result.reached_fixed_point { "*" } else { "" },
        );
        let mut row = Json::object();
        row.set("name", instance.name.as_str())
            .set("orig_clauses", instance.num_clauses())
            .set("orig_vars", instance.cnf.num_used_vars())
            .set("it1_clauses", first.num_clauses)
            .set("it1_vars", first.num_vars)
            .set("final_clauses", last.num_clauses)
            .set("final_vars", last.num_vars)
            .set("iterations", result.iterations.len())
            .set("reached_fixed_point", result.reached_fixed_point);
        rows.push(row);
    }
    println!("{}", "-".repeat(112));
    println!("(* = reached a fixed point: every remaining clause is needed for the proof)");
    println!();
    println!(
        "Paper shape: planning (bw_large.d) and FPGA routing (too_large…) have small \
         unsatisfiable cores; structured miters keep most of their clauses."
    );

    if let Some(path) = json_path {
        let mut doc = report::metrics_document("table3", &Registry::new());
        doc.set("rows", Json::Array(rows))
            .set("max_iterations", max_iterations);
        report::write_json(std::path::Path::new(&path), &doc).expect("write --json output");
        eprintln!("metrics written to {path}");
    }
}
