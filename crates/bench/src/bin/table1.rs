//! Regenerates **Table 1** of the paper: statistics of the solver with
//! trace generation turned on and off.
//!
//! ```text
//! cargo run --release -p rescheck-bench --bin table1
//! ```
//!
//! Columns mirror the paper: instance, variables, original clauses,
//! learned clauses, runtime with trace off / on, and the trace-generation
//! overhead percentage. The expected *shape* (paper §4): overhead is a
//! small single-digit percentage, shrinking on harder instances.

use rescheck_bench::{fmt_secs, measure_solve};
use rescheck_solver::SolverConfig;
use rescheck_workloads::paper_suite;

fn main() {
    let cfg = SolverConfig::default();
    println!(
        "{:<34} {:>8} {:>10} {:>12} {:>13} {:>12} {:>10}",
        "Instance",
        "Num.Vars",
        "Orig.Cls",
        "Learned Cls",
        "TraceOff (s)",
        "TraceOn (s)",
        "Overhead"
    );
    println!("{}", "-".repeat(106));

    let mut total_off = 0.0;
    let mut total_on = 0.0;
    for instance in paper_suite() {
        let report = measure_solve(&instance, &cfg);
        total_off += report.time_trace_off.as_secs_f64();
        total_on += report.time_trace_on.as_secs_f64();
        println!(
            "{:<34} {:>8} {:>10} {:>12} {:>13} {:>12} {:>9.1}%",
            report.name,
            report.num_vars,
            report.num_clauses,
            report.learned_clauses,
            fmt_secs(report.time_trace_off),
            fmt_secs(report.time_trace_on),
            report.overhead_percent()
        );
    }
    println!("{}", "-".repeat(106));
    println!(
        "{:<34} {:>8} {:>10} {:>12} {:>13} {:>12} {:>9.1}%",
        "TOTAL",
        "",
        "",
        "",
        format!("{total_off:.3}"),
        format!("{total_on:.3}"),
        100.0 * (total_on - total_off) / total_off.max(1e-12)
    );
    println!();
    println!("Paper shape: trace generation costs 1.7%-12%, smaller on harder instances.");
}
