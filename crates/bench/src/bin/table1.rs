//! Regenerates **Table 1** of the paper: statistics of the solver with
//! trace generation turned on and off.
//!
//! ```text
//! cargo run --release -p rescheck-bench --bin table1 [--json <out.json>]
//! ```
//!
//! Columns mirror the paper: instance, variables, original clauses,
//! learned clauses, runtime with trace off / on, and the trace-generation
//! overhead percentage. The expected *shape* (paper §4): overhead is a
//! small single-digit percentage, shrinking on harder instances.
//!
//! `--json <path>` additionally writes every row as a
//! `rescheck-metrics-v2` document.

use rescheck_bench::{fmt_secs, measure_solve, report};
use rescheck_obs::{Json, Registry};
use rescheck_solver::SolverConfig;
use rescheck_workloads::paper_suite;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = report::take_json_flag(&mut args);
    let cfg = SolverConfig::default();
    println!(
        "{:<34} {:>8} {:>10} {:>12} {:>13} {:>12} {:>10}",
        "Instance",
        "Num.Vars",
        "Orig.Cls",
        "Learned Cls",
        "TraceOff (s)",
        "TraceOn (s)",
        "Overhead"
    );
    println!("{}", "-".repeat(106));

    let mut total_off = 0.0;
    let mut total_on = 0.0;
    let mut rows: Vec<Json> = Vec::new();
    for instance in paper_suite() {
        let row = measure_solve(&instance, &cfg);
        total_off += row.time_trace_off.as_secs_f64();
        total_on += row.time_trace_on.as_secs_f64();
        println!(
            "{:<34} {:>8} {:>10} {:>12} {:>13} {:>12} {:>9.1}%",
            row.name,
            row.num_vars,
            row.num_clauses,
            row.learned_clauses,
            fmt_secs(row.time_trace_off),
            fmt_secs(row.time_trace_on),
            row.overhead_percent()
        );
        rows.push(report::instance_json(&row));
    }
    println!("{}", "-".repeat(106));
    println!(
        "{:<34} {:>8} {:>10} {:>12} {:>13} {:>12} {:>9.1}%",
        "TOTAL",
        "",
        "",
        "",
        format!("{total_off:.3}"),
        format!("{total_on:.3}"),
        100.0 * (total_on - total_off) / total_off.max(1e-12)
    );
    println!();
    println!("Paper shape: trace generation costs 1.7%-12%, smaller on harder instances.");

    if let Some(path) = json_path {
        let mut doc = report::metrics_document("table1", &Registry::new());
        doc.set("rows", Json::Array(rows))
            .set("total_trace_off_seconds", total_off)
            .set("total_trace_on_seconds", total_on);
        report::write_json(std::path::Path::new(&path), &doc).expect("write --json output");
        eprintln!("metrics written to {path}");
    }
}
