//! Machine-readable metrics emission — the `rescheck-metrics-v2` schema
//! shared by the CLI's metrics flags and the table binaries' `--json`
//! flag.
//!
//! The document shape is:
//!
//! ```json
//! {
//!   "schema": "rescheck-metrics-v2",
//!   "command": "check",
//!   "phases": {"parse": 0.01, "solve": 1.2, ...},
//!   "counters": {"solver.conflicts": 1234, ...},
//!   "gauges": {"check.peak_memory_bytes": 65536.0, ...},
//!   "histograms": {"check.resolve.chain_len": {"count": …, "buckets": […]}, ...},
//!   "spans": [{"name": "check", "wall_seconds": …, "children": […]}, ...],
//!   ...command-specific sections ("solver", "check", "rows")...
//! }
//! ```
//!
//! v2 is a strict superset of v1: the two new top-level keys
//! (`histograms`, `spans`) are additive, so v1 consumers that only read
//! `phases`/`counters`/`gauges` keep working, and
//! [`Registry::from_json`] reads both shapes.

use crate::{CheckReport, InstanceReport};
use rescheck_checker::{CheckStats, ProofStats};
use rescheck_obs::{Json, Registry};
use rescheck_solver::SolverStats;
use std::io::Write;
use std::path::Path;

/// The schema tag stamped on every metrics document.
pub const SCHEMA: &str = "rescheck-metrics-v2";

/// The previous schema tag, still accepted by readers (checked-in
/// baselines from earlier PRs carry it).
pub const SCHEMA_V1: &str = "rescheck-metrics-v1";

/// The skeleton of a metrics document: schema tag, the producing
/// command, and the registry's phases / counters / gauges / histograms
/// / span tree at top level.
pub fn metrics_document(command: &str, registry: &Registry) -> Json {
    let mut root = Json::object();
    root.set("schema", SCHEMA).set("command", command);
    let reg = registry.to_json();
    for key in ["phases", "counters", "gauges", "histograms", "spans"] {
        root.set(
            key,
            reg.get(key).cloned().unwrap_or_else(|| {
                if key == "spans" {
                    Json::Array(Vec::new())
                } else {
                    Json::object()
                }
            }),
        );
    }
    root
}

/// Solver statistics as a JSON object (every counter plus the derived
/// average learned-clause length).
pub fn solver_stats_json(stats: &SolverStats) -> Json {
    let mut json = Json::object();
    json.set("decisions", stats.decisions)
        .set("propagations", stats.propagations)
        .set("conflicts", stats.conflicts)
        .set("learned_clauses", stats.learned_clauses)
        .set("learned_literals", stats.learned_literals)
        .set("avg_learned_len", stats.avg_learned_len())
        .set("deleted_clauses", stats.deleted_clauses)
        .set("restarts", stats.restarts)
        .set("db_reductions", stats.db_reductions)
        .set("reused_conflicts", stats.reused_conflicts)
        .set("minimized_literals", stats.minimized_literals);
    json
}

/// Check statistics as a JSON object (the per-run half-row of Table 2).
pub fn check_stats_json(stats: &CheckStats) -> Json {
    let mut json = Json::object();
    json.set("strategy", stats.strategy.to_string())
        .set("learned_in_trace", stats.learned_in_trace)
        .set("clauses_built", stats.clauses_built)
        .set("built_percent", stats.built_percent())
        .set("resolutions", stats.resolutions)
        .set("peak_memory_bytes", stats.peak_memory_bytes)
        .set("runtime_seconds", stats.runtime.as_secs_f64());
    if let Some(bytes) = stats.trace_bytes {
        json.set("trace_bytes", bytes);
    }
    json
}

/// Flushes the authoritative end-of-run solver totals into a registry as
/// `solver.*` counters. The solver's per-event stream is too hot to
/// total in the sink, so the final [`SolverStats`] is the source of
/// truth.
pub fn flush_solver_stats(registry: &mut Registry, stats: &SolverStats) {
    registry.inc("solver.decisions", stats.decisions);
    registry.inc("solver.propagations", stats.propagations);
    registry.inc("solver.conflicts", stats.conflicts);
    registry.inc("solver.learned_clauses", stats.learned_clauses);
    registry.inc("solver.learned_literals", stats.learned_literals);
    registry.inc("solver.deleted_clauses", stats.deleted_clauses);
    registry.inc("solver.restarts", stats.restarts);
    registry.inc("solver.db_reductions", stats.db_reductions);
    registry.inc("solver.reused_conflicts", stats.reused_conflicts);
    registry.inc("solver.minimized_literals", stats.minimized_literals);
}

/// Trace-level proof statistics ([`ProofStats`]) as a JSON object.
pub fn proof_stats_json(stats: &ProofStats) -> Json {
    let mut json = Json::object();
    json.set("learned_total", stats.learned_total)
        .set("needed", stats.needed)
        .set("needed_percent", stats.needed_percent())
        .set("derivation_resolutions", stats.derivation_resolutions)
        .set("final_phase_bound", stats.final_phase_bound)
        .set("depth", stats.depth)
        .set("max_sources", stats.max_sources)
        .set("avg_sources", stats.avg_sources)
        .set("core_clauses", stats.core_clauses);
    json
}

/// An [`InstanceReport`] as a JSON object (a row of Table 1).
pub fn instance_json(report: &InstanceReport) -> Json {
    let mut json = Json::object();
    json.set("name", report.name.as_str())
        .set("num_vars", report.num_vars)
        .set("num_clauses", report.num_clauses)
        .set("learned_clauses", report.learned_clauses)
        .set(
            "time_trace_off_seconds",
            report.time_trace_off.as_secs_f64(),
        )
        .set("time_trace_on_seconds", report.time_trace_on.as_secs_f64())
        .set("overhead_percent", report.overhead_percent())
        .set("trace_ascii_bytes", report.trace_ascii_bytes)
        .set("trace_binary_bytes", report.trace_binary_bytes)
        .set("solver", solver_stats_json(&report.solver_stats));
    json
}

/// A [`CheckReport`] as a JSON object; failed checks (memory-out) carry
/// an `error` field instead of the stats.
pub fn check_report_json(report: &CheckReport) -> Json {
    let mut json = Json::object();
    json.set("runtime_seconds", report.runtime.as_secs_f64());
    match &report.outcome {
        Ok(outcome) => {
            json.set("stats", check_stats_json(&outcome.stats));
            if let Some(core) = &outcome.core {
                let mut core_json = Json::object();
                core_json
                    .set("num_clauses", core.num_clauses())
                    .set("num_vars", core.num_vars());
                json.set("core", core_json);
            }
        }
        Err(message) => {
            json.set("error", message.as_str());
        }
    }
    json
}

/// Writes a document to `path` in pretty form.
pub fn write_json(path: &Path, json: &Json) -> std::io::Result<()> {
    let mut file = std::fs::File::create(path)?;
    file.write_all(json.to_pretty_string().as_bytes())
}

/// Extracts a `--json <path>` flag from an argument list, if present.
pub fn take_json_flag(args: &mut Vec<String>) -> Option<String> {
    let pos = args.iter().position(|a| a == "--json")?;
    if pos + 1 < args.len() {
        args.remove(pos);
        Some(args.remove(pos))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescheck_checker::Strategy;
    use std::time::Duration;

    #[test]
    fn document_skeleton_has_stable_keys() {
        let mut reg = Registry::new();
        reg.inc("solver.conflicts", 1);
        reg.record_phase("solve", Duration::from_millis(5));
        let doc = metrics_document("solve", &reg);
        assert_eq!(
            doc.keys(),
            vec![
                "schema",
                "command",
                "phases",
                "counters",
                "gauges",
                "histograms",
                "spans"
            ]
        );
        assert_eq!(doc.path("schema").unwrap().as_str(), Some(SCHEMA));
        assert_eq!(SCHEMA, "rescheck-metrics-v2");
        assert_eq!(SCHEMA_V1, "rescheck-metrics-v1");
        assert!(doc.get("phases").unwrap().get("solve").is_some());
    }

    #[test]
    fn check_stats_json_roundtrips_through_parser() {
        let stats = CheckStats {
            strategy: Strategy::DepthFirst,
            learned_in_trace: 200,
            clauses_built: 50,
            resolutions: 420,
            peak_memory_bytes: 65536,
            runtime: Duration::from_millis(12),
            trace_bytes: Some(1024),
        };
        let json = check_stats_json(&stats);
        let reparsed = rescheck_obs::json::parse(&json.to_pretty_string()).unwrap();
        assert_eq!(reparsed.get("clauses_built").unwrap().as_u64(), Some(50));
        assert_eq!(reparsed.get("built_percent").unwrap().as_f64(), Some(25.0));
        assert_eq!(reparsed.get("trace_bytes").unwrap().as_u64(), Some(1024));
    }

    #[test]
    fn solver_stats_json_has_all_counters() {
        let json = solver_stats_json(&SolverStats::default());
        for key in [
            "decisions",
            "propagations",
            "conflicts",
            "learned_clauses",
            "reused_conflicts",
            "minimized_literals",
        ] {
            assert!(json.get(key).is_some(), "missing {key}");
        }
    }

    #[test]
    fn flush_solver_stats_populates_counters() {
        let mut reg = Registry::new();
        let stats = SolverStats {
            decisions: 9,
            conflicts: 7,
            ..SolverStats::default()
        };
        flush_solver_stats(&mut reg, &stats);
        assert_eq!(reg.counter("solver.decisions"), Some(9));
        assert_eq!(reg.counter("solver.conflicts"), Some(7));
        assert_eq!(reg.counter("solver.restarts"), Some(0));
    }

    #[test]
    fn take_json_flag_extracts_path() {
        let mut args = vec![
            "16".to_string(),
            "--json".to_string(),
            "out.json".to_string(),
        ];
        assert_eq!(take_json_flag(&mut args), Some("out.json".to_string()));
        assert_eq!(args, vec!["16".to_string()]);
        assert_eq!(take_json_flag(&mut args), None);
    }
}
