//! Shared measurement harness for the table-regeneration binaries.
//!
//! Each binary (`table1`, `table2`, `table3`) reproduces one table of the
//! paper's evaluation; this library holds the per-instance measurement
//! pipeline they share: solve with tracing off and on, encode the trace
//! in both formats, run both checkers, and collect the numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod micro;
pub mod report;

use rescheck_checker::{check_unsat_claim, CheckConfig, CheckError, CheckOutcome, Strategy};
use rescheck_cnf::Cnf;
use rescheck_solver::{SolveResult, Solver, SolverConfig, SolverStats};
use rescheck_trace::{AsciiWriter, BinaryWriter, MemorySink, TraceSink};
use rescheck_workloads::Instance;
use std::time::{Duration, Instant};

/// Everything measured about one benchmark instance.
#[derive(Clone, Debug)]
pub struct InstanceReport {
    /// The instance name (paper row name).
    pub name: String,
    /// Declared variables.
    pub num_vars: usize,
    /// Original clauses.
    pub num_clauses: usize,
    /// Learned clauses produced by the traced solve.
    pub learned_clauses: u64,
    /// Solve time with trace generation off ([`rescheck_trace::NullSink`]).
    pub time_trace_off: Duration,
    /// Solve time with the trace encoded to ASCII (kept in memory).
    pub time_trace_on: Duration,
    /// Size of the ASCII-encoded trace in bytes.
    pub trace_ascii_bytes: u64,
    /// Size of the binary-encoded trace in bytes.
    pub trace_binary_bytes: u64,
    /// Full solver statistics of the traced run.
    pub solver_stats: SolverStats,
    /// The recorded trace (event form), for the checking phase.
    pub trace: MemorySink,
    /// The formula, for the checking phase.
    pub cnf: Cnf,
}

impl InstanceReport {
    /// Trace-generation overhead as a percentage (Table 1's last column).
    pub fn overhead_percent(&self) -> f64 {
        if self.time_trace_off.is_zero() {
            0.0
        } else {
            100.0 * (self.time_trace_on.as_secs_f64() - self.time_trace_off.as_secs_f64())
                / self.time_trace_off.as_secs_f64()
        }
    }
}

/// Solves one UNSAT instance with tracing off and on and returns the
/// measurements.
///
/// Each timed configuration runs [`measure_solve_repeats`] times and the
/// minimum is reported, which suppresses scheduler noise on the small
/// rows without biasing the comparison (the solver is deterministic).
///
/// # Panics
///
/// Panics if the solver does not report UNSAT (suite instances are
/// unsatisfiable by construction).
pub fn measure_solve(instance: &Instance, cfg: &SolverConfig) -> InstanceReport {
    measure_solve_repeats(instance, cfg, 3)
}

/// [`measure_solve`] with an explicit repetition count.
///
/// # Panics
///
/// Panics if `repeats` is zero or the solver does not report UNSAT.
pub fn measure_solve_repeats(
    instance: &Instance,
    cfg: &SolverConfig,
    repeats: usize,
) -> InstanceReport {
    assert!(repeats > 0, "at least one timing run");

    // Trace off: the pristine solver (Table 1's baseline).
    let mut time_trace_off = Duration::MAX;
    for _ in 0..repeats {
        let t0 = Instant::now();
        let mut solver = Solver::from_cnf(&instance.cnf, cfg.clone());
        let off_result = solver.solve();
        time_trace_off = time_trace_off.min(t0.elapsed());
        assert!(
            matches!(off_result, SolveResult::Unsatisfiable),
            "{} must be UNSAT",
            instance.name
        );
    }

    // Trace on: encode to ASCII while solving, exactly what the paper
    // measured (zchaff writing its trace file).
    let mut time_trace_on = Duration::MAX;
    let mut trace_ascii_bytes = 0;
    for _ in 0..repeats {
        let mut ascii_buf: Vec<u8> = Vec::new();
        let t1 = Instant::now();
        let mut solver = Solver::from_cnf(&instance.cnf, cfg.clone());
        let mut ascii = AsciiWriter::new(&mut ascii_buf);
        let on_result = solver.solve_traced(&mut ascii).expect("in-memory sink");
        time_trace_on = time_trace_on.min(t1.elapsed());
        trace_ascii_bytes = ascii.bytes_written();
        assert!(matches!(on_result, SolveResult::Unsatisfiable));
    }

    // Untimed third run (the solver is deterministic): collect the
    // events in memory for the checking phase.
    let mut events = MemorySink::new();
    let mut solver = Solver::from_cnf(&instance.cnf, cfg.clone());
    solver.solve_traced(&mut events).expect("in-memory sink");

    // Binary re-encoding for the compaction comparison.
    let mut bin_buf: Vec<u8> = Vec::new();
    let mut bw = BinaryWriter::new(&mut bin_buf).expect("vec writer");
    for e in events.events() {
        bw.event(e).expect("vec writer");
    }
    let trace_binary_bytes = bw.bytes_written();

    InstanceReport {
        name: instance.name.clone(),
        num_vars: instance.num_vars(),
        num_clauses: instance.num_clauses(),
        learned_clauses: solver.stats().learned_clauses,
        time_trace_off,
        time_trace_on,
        trace_ascii_bytes,
        trace_binary_bytes,
        solver_stats: *solver.stats(),
        trace: events,
        cnf: instance.cnf.clone(),
    }
}

/// One checker run's measurements (a half-row of Table 2).
#[derive(Clone, Debug)]
pub struct CheckReport {
    /// The validated outcome, or the failure (e.g. memory-out, shown as
    /// `*` in the paper's table).
    pub outcome: Result<CheckOutcome, String>,
    /// Wall-clock time of the check (also inside `outcome` on success).
    pub runtime: Duration,
}

/// Runs one checking strategy against a measured instance.
pub fn measure_check(
    report: &InstanceReport,
    strategy: Strategy,
    memory_limit: Option<u64>,
) -> CheckReport {
    measure_check_jobs(report, strategy, memory_limit, 0)
}

/// [`measure_check`] with an explicit worker count for the parallel
/// strategies (`0` = auto).
pub fn measure_check_jobs(
    report: &InstanceReport,
    strategy: Strategy,
    memory_limit: Option<u64>,
    jobs: usize,
) -> CheckReport {
    let config = CheckConfig {
        memory_limit,
        jobs,
        ..CheckConfig::default()
    };
    let t = Instant::now();
    let outcome = check_unsat_claim(&report.cnf, &report.trace, strategy, &config);
    let runtime = t.elapsed();
    let outcome = match outcome {
        Ok(o) => Ok(o),
        Err(e @ CheckError::MemoryLimitExceeded { .. }) => Err(format!("memory out: {e}")),
        Err(e) => panic!("{}: genuine proof rejected: {e}", report.name),
    };
    CheckReport { outcome, runtime }
}

/// Formats a duration in seconds with millisecond resolution.
pub fn fmt_secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Formats a byte count as KB with one decimal, like the paper's tables.
pub fn fmt_kb(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / 1024.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescheck_workloads::pigeonhole;

    #[test]
    fn measure_solve_and_check_pipeline() {
        let inst = pigeonhole::instance(4);
        let report = measure_solve(&inst, &SolverConfig::default());
        assert_eq!(report.name, "php_5_4");
        assert!(report.learned_clauses > 0);
        assert!(report.trace_ascii_bytes > report.trace_binary_bytes);
        assert!(!report.trace.is_empty());

        let df = measure_check(&report, Strategy::DepthFirst, None);
        let bf = measure_check(&report, Strategy::BreadthFirst, None);
        let df_outcome = df.outcome.unwrap();
        let bf_outcome = bf.outcome.unwrap();
        assert!(df_outcome.core.is_some());
        assert!(bf_outcome.core.is_none());
        assert_eq!(
            df_outcome.stats.learned_in_trace,
            bf_outcome.stats.learned_in_trace
        );
    }

    #[test]
    fn memory_out_is_reported_not_panicked() {
        let inst = pigeonhole::instance(4);
        let report = measure_solve(&inst, &SolverConfig::default());
        let df = measure_check(&report, Strategy::DepthFirst, Some(1));
        assert!(df.outcome.is_err());
        assert!(df.outcome.unwrap_err().contains("memory out"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_secs(Duration::from_millis(1500)), "1.500");
        assert_eq!(fmt_kb(2048), "2.0");
    }

    #[test]
    fn overhead_percent_handles_zero_baseline() {
        let inst = pigeonhole::instance(3);
        let mut report = measure_solve(&inst, &SolverConfig::default());
        report.time_trace_off = Duration::ZERO;
        assert_eq!(report.overhead_percent(), 0.0);
    }
}
