//! A minimal micro-benchmark harness.
//!
//! The workspace builds offline, so the `criterion` dependency is gone;
//! the `cargo bench` targets use this instead. It calibrates an
//! iteration count to a small wall-clock budget, reports min / median /
//! mean, and makes no statistical claims beyond that — good enough to
//! compare the ablations DESIGN.md cares about (ASCII vs binary, DF vs
//! BF, learning on/off) on one machine.

use std::time::{Duration, Instant};

/// Per-iteration budget, overridable via `RESCHECK_BENCH_MS`.
fn budget() -> Duration {
    let ms = std::env::var("RESCHECK_BENCH_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(300);
    Duration::from_millis(ms.max(1))
}

/// Timing summary of one benchmark.
#[derive(Clone, Copy, Debug)]
pub struct Summary {
    /// Iterations measured.
    pub iters: u32,
    /// Fastest iteration.
    pub min: Duration,
    /// Median iteration.
    pub median: Duration,
    /// Mean iteration.
    pub mean: Duration,
}

/// Runs `f` repeatedly within the time budget and prints a summary line
/// (`name: median …  min …  mean …  (N iters)`).
pub fn bench(name: &str, mut f: impl FnMut()) -> Summary {
    // Warm up and calibrate.
    let once = {
        let t = Instant::now();
        f();
        t.elapsed().max(Duration::from_nanos(1))
    };
    let target = budget();
    let iters = (target.as_nanos() / once.as_nanos()).clamp(5, 10_000) as u32;

    let mut samples: Vec<Duration> = Vec::with_capacity(iters as usize);
    for _ in 0..iters {
        let t = Instant::now();
        f();
        samples.push(t.elapsed());
    }
    samples.sort_unstable();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let total: Duration = samples.iter().sum();
    let mean = total / iters;
    let summary = Summary {
        iters,
        min,
        median,
        mean,
    };
    println!(
        "{name}: median {}s  min {}s  mean {}s  ({iters} iters)",
        crate::fmt_secs(median),
        crate::fmt_secs(min),
        crate::fmt_secs(mean),
    );
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_sane_numbers() {
        std::env::set_var("RESCHECK_BENCH_MS", "5");
        let mut n = 0u64;
        let s = bench("noop", || n = n.wrapping_add(1));
        assert!(s.iters >= 5);
        assert!(s.min <= s.median && s.median <= s.mean * 2);
    }
}
