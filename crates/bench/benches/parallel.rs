//! Micro-benchmarks for the parallel checking subsystem: the sharded
//! breadth-first checker at increasing worker counts against the
//! sequential baseline, and the racing portfolio against its faster
//! racer (the race's overhead is the cost of the memory insurance).
//! Uses the in-house harness in `rescheck_bench::micro` (no criterion;
//! the workspace builds offline).

use rescheck_bench::micro::bench;
use rescheck_checker::{check_unsat_claim, CheckConfig, Strategy};
use rescheck_solver::{Solver, SolverConfig};
use rescheck_trace::MemorySink;
use rescheck_workloads::{bmc, pigeonhole, Instance};

fn trace_of(inst: &Instance) -> MemorySink {
    let mut solver = Solver::from_cnf(&inst.cnf, SolverConfig::default());
    let mut sink = MemorySink::new();
    assert!(solver.solve_traced(&mut sink).unwrap().is_unsat());
    sink
}

fn config_with_jobs(jobs: usize) -> CheckConfig {
    CheckConfig {
        jobs,
        ..CheckConfig::default()
    }
}

fn bench_sharded_bf() {
    for inst in [pigeonhole::instance(6), bmc::longmult(4)] {
        let trace = trace_of(&inst);
        bench(&format!("parallel/bf-sequential/{}", inst.name), || {
            check_unsat_claim(
                &inst.cnf,
                &trace,
                Strategy::BreadthFirst,
                &CheckConfig::default(),
            )
            .expect("genuine trace");
        });
        for jobs in [1, 2, 4] {
            bench(&format!("parallel/pbf-jobs{jobs}/{}", inst.name), || {
                check_unsat_claim(
                    &inst.cnf,
                    &trace,
                    Strategy::ParallelBf,
                    &config_with_jobs(jobs),
                )
                .expect("genuine trace");
            });
        }
    }
}

fn bench_portfolio_overhead() {
    let inst = pigeonhole::instance(6);
    let trace = trace_of(&inst);
    bench("parallel/df-alone/php6", || {
        check_unsat_claim(
            &inst.cnf,
            &trace,
            Strategy::DepthFirst,
            &CheckConfig::default(),
        )
        .expect("genuine trace");
    });
    bench("parallel/portfolio/php6", || {
        check_unsat_claim(
            &inst.cnf,
            &trace,
            Strategy::Portfolio,
            &CheckConfig::default(),
        )
        .expect("genuine trace");
    });
}

fn main() {
    bench_sharded_bf();
    bench_portfolio_overhead();
}
