//! Micro-benchmark for the zero-copy trace I/O layer, old vs new on the
//! production file paths:
//!
//! * DIMACS parsing — the retained per-line reference path (whole file
//!   into a `String`, then [`dimacs::parse_str_lines`], which allocates
//!   an owned `String` per line and tokenizes with `split_whitespace`)
//!   against [`dimacs::read_file`], the block-buffered byte scanner.
//! * Binary trace decoding — the retained per-record [`BinaryReader`]
//!   behind the pre-change default 8 KiB `BufReader` (a `read_exact`
//!   per tag/varint byte, an owned `sources` vector per event) against
//!   [`BlockDecoder`] refilling one 256 KiB block buffer and lending
//!   borrowed [`EventRef`]s.
//! * Mapped ingestion — the buffered sequential block decode against
//!   the parallel checkers' pass-1 front end: disjoint block-index
//!   shards of an established [`TraceMap`] decoded on worker threads
//!   through [`SliceDecoder`]s, zero read syscalls and zero copies.
//! * Random-access fetch — the disk-depth-first access pattern
//!   (`event_at` over shuffled offsets) through the positioned-read
//!   file cursor (one `pread` per fetch) against the map-backed cursor
//!   (plain slice indexing).
//! * Proof emission — the same exported LRAT refutation encoded as text
//!   against the binary LRAT encoding (smaller and cheaper to write).
//! * Proof ingestion — hint-free DRAT reconstruction (two-watched-literal
//!   propagation plus conflict analysis per addition) against LRAT hint
//!   replay of the identical refutation; the hints are the speedup.
//!
//! Both fixtures are seeded, written to a temp directory once, and
//! sanity-checked for old/new agreement before anything is timed.
//!
//! Speedups are computed from per-iteration minima — the low-noise
//! estimator for a microbenchmark, since only scheduler jitter ever makes
//! an iteration slower — with medians reported alongside.
//!
//! With `--json <path>` a `rescheck-metrics-v2` document is written with
//! one row per scenario plus the new/old speedup, for the CI bench-smoke
//! job (which checks shape, never timing).

use rescheck_bench::micro::bench;
use rescheck_bench::report::{take_json_flag, write_json, SCHEMA};
use rescheck_cnf::{dimacs, Cnf, SplitMix64};
use rescheck_obs::Json;
use rescheck_trace::{
    BinaryReader, BinaryWriter, BlockDecoder, EventRef, FileTrace, RandomAccessTrace, SliceDecoder,
    TraceEvent, TraceMap, TraceSink, TraceSource,
};
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::{Path, PathBuf};

/// The `BufReader` capacity the per-record reader shipped with before
/// the block buffer landed (`std`'s default).
const OLD_BUF_BYTES: usize = 8 * 1024;

fn fixture_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("rescheck-bench-io");
    std::fs::create_dir_all(&dir).expect("create fixture dir");
    dir.join(format!("{name}-{}", std::process::id()))
}

/// Writes a seeded random 3-SAT-ish DIMACS file of `clauses` clauses
/// over `vars` variables, with comment lines sprinkled in like real
/// files. Returns the path and the file size.
fn dimacs_fixture(vars: usize, clauses: usize, seed: u64) -> (PathBuf, u64) {
    let mut rng = SplitMix64::new(seed);
    let mut text = String::with_capacity(clauses * 16);
    text.push_str(&format!("c generated io bench input seed {seed}\n"));
    text.push_str(&format!("p cnf {vars} {clauses}\n"));
    for i in 0..clauses {
        if i.is_multiple_of(64) {
            text.push_str("c progress comment\n");
        }
        let len = 3 + (rng.next_u64() % 2) as usize;
        for _ in 0..len {
            let var = 1 + (rng.next_u64() as usize % vars) as i64;
            let lit = if rng.next_u64().is_multiple_of(2) {
                var
            } else {
                -var
            };
            text.push_str(&format!("{lit} "));
        }
        text.push_str("0\n");
    }
    let path = fixture_path("bench.cnf");
    std::fs::write(&path, &text).expect("write cnf fixture");
    (path, text.len() as u64)
}

/// Writes a seeded binary trace of `count` events with realistic id
/// magnitudes (multi-byte varints) and mixed source-list lengths.
fn trace_fixture(count: usize, seed: u64) -> (PathBuf, u64) {
    let mut rng = SplitMix64::new(seed);
    let path = fixture_path("bench.rt");
    let file = File::create(&path).expect("create trace fixture");
    let mut writer = BinaryWriter::new(BufWriter::new(file)).expect("write magic");
    for i in 0..count {
        match rng.next_u64() % 8 {
            0 => writer
                .level_zero(
                    rescheck_cnf::Lit::from_dimacs(1 + (i as i64 % 512)),
                    rng.next_u64() % 100_000,
                )
                .expect("write event"),
            1 => writer
                .final_conflict(rng.next_u64() % 100_000)
                .expect("write event"),
            _ => {
                let len = 2 + (rng.next_u64() % 14) as usize;
                let sources: Vec<u64> = (0..len).map(|_| rng.next_u64() % 1_000_000).collect();
                writer
                    .learned(1_000_000 + i as u64, &sources)
                    .expect("write event");
            }
        }
    }
    writer.flush().expect("flush trace fixture");
    let bytes = std::fs::metadata(&path).expect("stat trace fixture").len();
    (path, bytes)
}

/// The retained per-line production path, exactly as `read_file`
/// shipped before the scanner: `BufRead::lines` behind the old
/// default-capacity `BufReader` — a `String` allocation and UTF-8
/// validation per line, `split_whitespace` + `str::parse` per token.
fn parse_lines_path(path: &Path) -> Cnf {
    let reader = BufReader::with_capacity(OLD_BUF_BYTES, File::open(path).expect("open cnf"));
    dimacs::parse_reader_lines(reader).expect("valid dimacs")
}

/// The retained per-record production path: `BinaryReader` behind the
/// old default-capacity `BufReader`, one owned `TraceEvent` per record.
/// Returns an event/source tally used for the equality check.
fn decode_record_path(path: &Path) -> (u64, u64) {
    let reader = BufReader::with_capacity(OLD_BUF_BYTES, File::open(path).expect("open trace"));
    let reader = BinaryReader::new(reader).expect("magic");
    let mut events = 0u64;
    let mut source_sum = 0u64;
    for event in reader {
        match event.expect("valid trace") {
            TraceEvent::Learned { sources, .. } => {
                events += 1;
                source_sum += sources.iter().sum::<u64>();
            }
            TraceEvent::LevelZero { antecedent, .. } => {
                events += 1;
                source_sum += antecedent;
            }
            TraceEvent::FinalConflict { id } => {
                events += 1;
                source_sum += id;
            }
        }
    }
    (events, source_sum)
}

/// The block decoder over the raw file through the borrowed lending
/// API — no per-event heap allocation.
fn decode_block_path(path: &Path) -> (u64, u64) {
    let mut decoder = BlockDecoder::new(File::open(path).expect("open trace")).expect("magic");
    let mut events = 0u64;
    let mut source_sum = 0u64;
    while let Some(event) = decoder.next_event().expect("valid trace") {
        match event {
            EventRef::Learned { sources, .. } => {
                events += 1;
                source_sum += sources.iter().sum::<u64>();
            }
            EventRef::LevelZero { antecedent, .. } => {
                events += 1;
                source_sum += antecedent;
            }
            EventRef::FinalConflict { id } => {
                events += 1;
                source_sum += id;
            }
        }
    }
    (events, source_sum)
}

/// Workers for the mapped sharded decode: one per available core, the
/// same cap the parallel checkers derive, at most 4.
fn map_shards() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(4)
}

/// The mapped ingestion path of the parallel checkers: decode disjoint
/// block-index shards of an established map on worker threads — or, on
/// a single-core host, the whole slice in place (the checkers' `jobs 1`
/// path), where the win over the buffered reader is the absence of
/// read syscalls and per-event allocation rather than parallelism.
fn decode_map_sharded(map: &TraceMap, shards: usize) -> (u64, u64) {
    let index = map.block_index().expect("well-formed fixture");
    let bytes = map.bytes();
    if shards <= 1 {
        let mut decoder = SliceDecoder::new(bytes).expect("magic");
        let mut events = 0u64;
        let mut source_sum = 0u64;
        while let Some(event) = decoder.next_event().expect("valid trace") {
            match event {
                EventRef::Learned { sources, .. } => {
                    events += 1;
                    source_sum += sources.iter().sum::<u64>();
                }
                EventRef::LevelZero { antecedent, .. } => {
                    events += 1;
                    source_sum += antecedent;
                }
                EventRef::FinalConflict { id } => {
                    events += 1;
                    source_sum += id;
                }
            }
        }
        return (events, source_sum);
    }
    let ranges = index.shard_ranges(shards);
    std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .map(|range| {
                scope.spawn(move || {
                    let mut decoder = SliceDecoder::resume_at(&bytes[..range.end], range.start);
                    let mut events = 0u64;
                    let mut source_sum = 0u64;
                    while let Some(event) = decoder.next_event().expect("valid trace") {
                        match event {
                            EventRef::Learned { sources, .. } => {
                                events += 1;
                                source_sum += sources.iter().sum::<u64>();
                            }
                            EventRef::LevelZero { antecedent, .. } => {
                                events += 1;
                                source_sum += antecedent;
                            }
                            EventRef::FinalConflict { id } => {
                                events += 1;
                                source_sum += id;
                            }
                        }
                    }
                    (events, source_sum)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard decode"))
            .fold((0, 0), |(e, s), (de, ds)| (e + de, s + ds))
    })
}

/// Fetches every offset through the trace's random-access cursor —
/// `pread`-backed on a bare [`FileTrace`], slice-backed once its map is
/// established — and returns a content checksum.
fn fetch_all(trace: &FileTrace, offsets: &[u64]) -> u64 {
    let mut cursor = trace.open_cursor().expect("cursor");
    let mut sum = 0u64;
    for &off in offsets {
        match cursor.event_at(off).expect("valid trace") {
            TraceEvent::Learned { sources, .. } => sum += sources.iter().sum::<u64>(),
            TraceEvent::LevelZero { antecedent, .. } => sum += antecedent,
            TraceEvent::FinalConflict { id } => sum += id,
        }
    }
    sum
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = take_json_flag(&mut args);
    let mut rows: Vec<Json> = Vec::new();

    // ---- DIMACS parsing: per-line reference vs block scanner.
    let (cnf_path, cnf_bytes) = dimacs_fixture(4_000, 150_000, 0x10b37c);
    let reference = parse_lines_path(&cnf_path);
    let scanned = dimacs::read_file(&cnf_path).expect("valid dimacs");
    assert_eq!(reference, scanned, "parsers disagree on the fixture");

    let old_parse = bench("io/parse/lines", || {
        std::hint::black_box(parse_lines_path(&cnf_path));
    });
    let new_parse = bench("io/parse/scanner", || {
        std::hint::black_box(dimacs::read_file(&cnf_path).expect("valid dimacs"));
    });
    let parse_speedup = old_parse.min.as_secs_f64() / new_parse.min.as_secs_f64().max(1e-12);
    println!("io/speedup/parse: {parse_speedup:.2}x");
    let mut row = Json::object();
    row.set("name", "parse")
        .set("input_bytes", cnf_bytes)
        .set("clauses", scanned.num_clauses())
        .set("old_min_seconds", old_parse.min.as_secs_f64())
        .set("new_min_seconds", new_parse.min.as_secs_f64())
        .set("old_median_seconds", old_parse.median.as_secs_f64())
        .set("new_median_seconds", new_parse.median.as_secs_f64())
        .set("speedup", parse_speedup);
    rows.push(row);

    // ---- Binary trace decoding: per-record reader vs block decoder.
    let (trace_path, trace_bytes) = trace_fixture(120_000, 0xdec0de);
    let expected = decode_record_path(&trace_path);
    assert_eq!(
        decode_block_path(&trace_path),
        expected,
        "decoders disagree on the fixture"
    );

    let old_decode = bench("io/decode/record", || {
        std::hint::black_box(decode_record_path(&trace_path));
    });
    let new_decode = bench("io/decode/block", || {
        std::hint::black_box(decode_block_path(&trace_path));
    });
    let decode_speedup = old_decode.min.as_secs_f64() / new_decode.min.as_secs_f64().max(1e-12);
    println!("io/speedup/decode: {decode_speedup:.2}x");
    let mut row = Json::object();
    row.set("name", "decode")
        .set("input_bytes", trace_bytes)
        .set("events", expected.0)
        .set("old_min_seconds", old_decode.min.as_secs_f64())
        .set("new_min_seconds", new_decode.min.as_secs_f64())
        .set("old_median_seconds", old_decode.median.as_secs_f64())
        .set("new_median_seconds", new_decode.median.as_secs_f64())
        .set("speedup", decode_speedup);
    rows.push(row);

    // ---- Mapped ingestion: the buffered per-record reader (the same
    // baseline as the decode row) vs the mapped decode over an
    // established byte map, sharded across the available cores.
    let map = TraceMap::open(&trace_path).expect("map fixture");
    let shards = map_shards();
    assert_eq!(
        decode_map_sharded(&map, shards),
        expected,
        "sharded mapped decode disagrees with the fixture"
    );
    let map_decode = bench("io/decode/map-sharded", || {
        std::hint::black_box(decode_map_sharded(&map, shards));
    });
    let map_speedup = old_decode.min.as_secs_f64() / map_decode.min.as_secs_f64().max(1e-12);
    println!("io/speedup/decode-map: {map_speedup:.2}x ({shards} shard(s))");
    let mut row = Json::object();
    row.set("name", "decode-map")
        .set("input_bytes", trace_bytes)
        .set("events", expected.0)
        .set("shards", shards as u64)
        .set("mmap", map.is_mmap())
        .set("old_min_seconds", old_decode.min.as_secs_f64())
        .set("new_min_seconds", map_decode.min.as_secs_f64())
        .set("old_median_seconds", old_decode.median.as_secs_f64())
        .set("new_median_seconds", map_decode.median.as_secs_f64())
        .set("speedup", map_speedup);
    rows.push(row);
    drop(map);

    // ---- Random-access fetch: pread cursor vs map-backed cursor over
    // the same shuffled offsets (the disk-depth-first access pattern).
    let unmapped = FileTrace::open(&trace_path).expect("open trace");
    let mut offsets: Vec<u64> = unmapped
        .offset_events()
        .expect("offset iter")
        .map(|r| r.expect("valid trace").0)
        .collect();
    let mut rng = SplitMix64::new(0xfe7c4);
    for i in (1..offsets.len()).rev() {
        offsets.swap(i, rng.range_usize(0..i + 1));
    }
    offsets.truncate(30_000);
    let mapped = FileTrace::open(&trace_path).expect("open trace");
    mapped.trace_map(true).expect("binary traces map");
    let checksum = fetch_all(&unmapped, &offsets);
    assert_eq!(
        fetch_all(&mapped, &offsets),
        checksum,
        "cursors disagree on the fixture"
    );
    let old_fetch = bench("io/fetch/pread", || {
        std::hint::black_box(fetch_all(&unmapped, &offsets));
    });
    let new_fetch = bench("io/fetch/map", || {
        std::hint::black_box(fetch_all(&mapped, &offsets));
    });
    let fetch_speedup = old_fetch.min.as_secs_f64() / new_fetch.min.as_secs_f64().max(1e-12);
    println!("io/speedup/fetch: {fetch_speedup:.2}x");
    let mut row = Json::object();
    row.set("name", "dfd-fetch")
        .set("input_bytes", trace_bytes)
        .set("fetches", offsets.len())
        .set("old_min_seconds", old_fetch.min.as_secs_f64())
        .set("new_min_seconds", new_fetch.min.as_secs_f64())
        .set("old_median_seconds", old_fetch.median.as_secs_f64())
        .set("new_median_seconds", new_fetch.median.as_secs_f64())
        .set("speedup", fetch_speedup);
    rows.push(row);

    // ---- Proof emission and ingestion over a real refutation: solve a
    // pigeonhole instance, export its trace to LRAT, and project the
    // hint-free DRAT variant of the same proof.
    let instance = rescheck_workloads::pigeonhole::instance(7);
    let mut solver = rescheck_solver::Solver::from_cnf(
        &instance.cnf,
        rescheck_solver::SolverConfig {
            seed: 0x1a7,
            ..rescheck_solver::SolverConfig::default()
        },
    );
    let mut sink = rescheck_trace::MemorySink::new();
    assert!(
        solver
            .solve_traced(&mut sink)
            .expect("memory sink")
            .is_unsat(),
        "pigeonhole fixture must be UNSAT"
    );
    let exported =
        rescheck_interop::export_lrat(&instance.cnf, sink.events()).expect("export fixture");
    let drat_steps: Vec<rescheck_interop::DratStep> = exported
        .steps
        .iter()
        .filter_map(|step| match step {
            rescheck_interop::LratStep::Add { lits, .. } => {
                Some(rescheck_interop::DratStep::Add(lits.clone()))
            }
            // Deletions are dropped from the projection: DRAT deletes by
            // literals and the ingester would just warn on stale ids; the
            // ingestion row measures derivation work, not bookkeeping.
            rescheck_interop::LratStep::Delete { .. } => None,
        })
        .collect();
    let mut lrat_text = Vec::new();
    rescheck_interop::lrat::write_text(&mut lrat_text, &exported.steps).expect("encode text");
    let lrat_binary = rescheck_interop::lrat::write_binary(&exported.steps);
    assert_eq!(
        rescheck_interop::lrat::parse(&lrat_binary).expect("binary round-trip"),
        exported.steps,
        "LRAT encodings disagree on the fixture"
    );

    let old_emit = bench("io/proof-emit/text", || {
        let mut text = Vec::new();
        rescheck_interop::lrat::write_text(&mut text, &exported.steps).expect("encode text");
        std::hint::black_box(text);
    });
    let new_emit = bench("io/proof-emit/binary", || {
        std::hint::black_box(rescheck_interop::lrat::write_binary(&exported.steps));
    });
    let emit_speedup = old_emit.min.as_secs_f64() / new_emit.min.as_secs_f64().max(1e-12);
    println!("io/speedup/proof-emit: {emit_speedup:.2}x");
    let mut row = Json::object();
    row.set("name", "proof-emit")
        .set("steps", exported.steps.len())
        .set("text_bytes", lrat_text.len())
        .set("binary_bytes", lrat_binary.len())
        .set("old_min_seconds", old_emit.min.as_secs_f64())
        .set("new_min_seconds", new_emit.min.as_secs_f64())
        .set("old_median_seconds", old_emit.median.as_secs_f64())
        .set("new_median_seconds", new_emit.median.as_secs_f64())
        .set("speedup", emit_speedup);
    rows.push(row);

    let drat_report =
        rescheck_interop::ingest_drat(&instance.cnf, &drat_steps).expect("DRAT fixture ingests");
    let lrat_report = rescheck_interop::ingest_lrat(&instance.cnf, &exported.steps)
        .expect("LRAT fixture ingests");
    // DRAT's eager forward checking can complete the refutation a few
    // additions early (a unit lemma propagates straight to the empty
    // clause), so the tallies need not be identical — but both front
    // ends must fully verify the proof.
    assert!(
        drat_report.resolution_checkable() && lrat_report.resolution_checkable(),
        "the ingestion fixtures must verify"
    );
    assert!(
        drat_report.stats.additions <= lrat_report.stats.additions,
        "DRAT ingested more additions than the proof contains"
    );
    let old_ingest = bench("io/proof-ingest/drat", || {
        std::hint::black_box(
            rescheck_interop::ingest_drat(&instance.cnf, &drat_steps).expect("ingest"),
        );
    });
    let new_ingest = bench("io/proof-ingest/lrat", || {
        std::hint::black_box(
            rescheck_interop::ingest_lrat(&instance.cnf, &exported.steps).expect("ingest"),
        );
    });
    let ingest_speedup = old_ingest.min.as_secs_f64() / new_ingest.min.as_secs_f64().max(1e-12);
    println!("io/speedup/proof-ingest: {ingest_speedup:.2}x");
    let mut row = Json::object();
    row.set("name", "proof-ingest")
        .set("additions", lrat_report.stats.additions)
        .set("old_min_seconds", old_ingest.min.as_secs_f64())
        .set("new_min_seconds", new_ingest.min.as_secs_f64())
        .set("old_median_seconds", old_ingest.median.as_secs_f64())
        .set("new_median_seconds", new_ingest.median.as_secs_f64())
        .set("speedup", ingest_speedup);
    rows.push(row);

    std::fs::remove_file(&cnf_path).ok();
    std::fs::remove_file(&trace_path).ok();

    if let Some(path) = json_path {
        let mut doc = Json::object();
        doc.set("schema", SCHEMA)
            .set("command", "bench:io")
            .set("rows", Json::Array(rows));
        write_json(Path::new(&path), &doc).expect("write json");
        println!("wrote {path}");
    }
}
