//! Micro-benchmark for the resolution hot path: the mark-array
//! [`ResolutionKernel`] against the sorted-merge oracle
//! ([`resolve_sorted`]) on synthetic resolution chains.
//!
//! The chain shape stresses exactly what separates the two: each
//! antecedent resolves away one pivot and deposits `width` fresh
//! literals, so the accumulator grows linearly with chain length. The
//! sorted-merge fold re-materializes the whole accumulator every step —
//! O(k·|acc|) total work — while the kernel touches each antecedent
//! literal once and materializes the resolvent once, O(L) total.
//!
//! With `--json <path>` a `rescheck-metrics-v2` document is written with
//! one row per scenario plus the kernel/oracle speedup, for the CI
//! bench-smoke job (which checks shape, never timing).

use rescheck_bench::micro::bench;
use rescheck_bench::report::{take_json_flag, write_json, SCHEMA};
use rescheck_checker::{normalize_literals, resolve_sorted, KernelMode, ResolutionKernel};
use rescheck_cnf::Lit;
use rescheck_obs::Json;
use std::path::Path;

/// One synthetic chain: a seed clause and `antecedents` sorted clauses,
/// each clashing with the accumulator on exactly one pivot variable.
struct Chain {
    name: String,
    antecedents: usize,
    width: usize,
    seed: Vec<Lit>,
    ants: Vec<Vec<Lit>>,
}

/// Builds a chain of `k` antecedents of `width + 2` literals each.
///
/// Pivot variables are 1..=k; antecedent `i` is
/// `(¬p_i ∨ p_{i+1} ∨ f_1 … f_width)` with globally fresh `f_j`, so the
/// accumulator keeps every deposited literal and ends `k·width + 1`
/// literals wide. `stride` spaces the fresh variables apart: at 1 the
/// mark stores stay cache-resident (the regime where the extra SWAR
/// masking is pure overhead); large strides model big-instance variable
/// spaces where every probe is a potential miss and the 4×-denser
/// packed store earns its keep.
fn make_chain(k: usize, width: usize, stride: i64) -> Chain {
    let pivot = |i: usize| Lit::from_dimacs(i as i64);
    let mut next_fresh = k as i64 + 1;
    let seed = normalize_literals(vec![pivot(1)]);
    let mut ants = Vec::with_capacity(k);
    for i in 1..=k {
        let mut lits = vec![!pivot(i)];
        if i < k {
            lits.push(pivot(i + 1));
        }
        for _ in 0..width {
            lits.push(Lit::from_dimacs(next_fresh));
            next_fresh += stride;
        }
        ants.push(normalize_literals(lits));
    }
    Chain {
        name: if stride == 1 {
            format!("chain{k}x{width}")
        } else {
            format!("chain{k}x{width}s{stride}")
        },
        antecedents: k,
        width,
        seed,
        ants,
    }
}

fn run_oracle(chain: &Chain) -> Vec<Lit> {
    let mut acc = chain.seed.clone();
    for ant in &chain.ants {
        acc = resolve_sorted(&acc, ant).expect("chain resolves");
    }
    acc
}

fn run_kernel(kernel: &mut ResolutionKernel, chain: &Chain) -> usize {
    kernel.begin(&chain.seed);
    for ant in &chain.ants {
        kernel.fold(ant).expect("chain resolves");
    }
    kernel.finish().len()
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = take_json_flag(&mut args);

    // Long chains with narrow and wide clauses: the acceptance scenario
    // (≥ 64 antecedents) plus a longer and a wider variant, and a
    // scattered-variable variant whose mark stores exceed the fast
    // caches (the SWAR layout's target regime).
    let scenarios = [
        (64usize, 8usize, 1i64),
        (256, 8, 1),
        (64, 32, 1),
        (256, 8, 512),
    ];
    let mut rows: Vec<Json> = Vec::new();
    let mut kernel = ResolutionKernel::new();

    for (k, width, stride) in scenarios {
        let chain = make_chain(k, width, stride);
        // Sanity: both paths agree before anything is timed.
        let expected = run_oracle(&chain);
        kernel.begin(&chain.seed);
        for ant in &chain.ants {
            kernel.fold(ant).expect("chain resolves");
        }
        assert_eq!(kernel.finish(), expected.as_slice(), "{}", chain.name);

        let oracle = bench(&format!("resolve/oracle/{}", chain.name), || {
            std::hint::black_box(run_oracle(&chain));
        });
        let kernel_summary = bench(&format!("resolve/kernel/{}", chain.name), || {
            std::hint::black_box(run_kernel(&mut kernel, &chain));
        });
        // The same fold with the SWAR probe loops disabled, isolating
        // what the 4-lane packed mark-array scan buys on this shape.
        let mut scalar = ResolutionKernel::with_mode(KernelMode::Scalar);
        let scalar_summary = bench(&format!("resolve/kernel-scalar/{}", chain.name), || {
            std::hint::black_box(run_kernel(&mut scalar, &chain));
        });
        let speedup = oracle.median.as_secs_f64() / kernel_summary.median.as_secs_f64().max(1e-12);
        let swar_speedup =
            scalar_summary.median.as_secs_f64() / kernel_summary.median.as_secs_f64().max(1e-12);
        println!("resolve/speedup/{}: {speedup:.2}x", chain.name);
        println!("resolve/swar-speedup/{}: {swar_speedup:.2}x", chain.name);

        let mut row = Json::object();
        row.set("name", chain.name.as_str())
            .set("antecedents", chain.antecedents)
            .set("width", chain.width)
            .set("resolvent_len", expected.len())
            .set("oracle_median_seconds", oracle.median.as_secs_f64())
            .set("kernel_median_seconds", kernel_summary.median.as_secs_f64())
            .set(
                "kernel_scalar_median_seconds",
                scalar_summary.median.as_secs_f64(),
            )
            .set("speedup", speedup)
            .set("swar_speedup", swar_speedup);
        rows.push(row);
    }

    if let Some(path) = json_path {
        let mut doc = Json::object();
        doc.set("schema", SCHEMA)
            .set("command", "bench:resolve")
            .set("rows", Json::Array(rows));
        write_json(Path::new(&path), &doc).expect("write json");
        println!("wrote {path}");
    }
}
