//! Criterion benchmarks for the trace encodings (ablation A of
//! DESIGN.md): ASCII vs binary write and parse throughput, backing the
//! paper's §4 prediction that a binary format compacts traces 2-3x and
//! speeds up the parsing-bound checker.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rescheck_solver::{Solver, SolverConfig};
use rescheck_trace::{
    AsciiReader, AsciiWriter, BinaryReader, BinaryWriter, MemorySink, TraceEvent, TraceSink,
};
use rescheck_workloads::pigeonhole;

fn real_trace() -> Vec<TraceEvent> {
    let inst = pigeonhole::instance(7);
    let mut solver = Solver::from_cnf(&inst.cnf, SolverConfig::default());
    let mut sink = MemorySink::new();
    assert!(solver.solve_traced(&mut sink).unwrap().is_unsat());
    sink.into_events()
}

fn encode_ascii(events: &[TraceEvent]) -> Vec<u8> {
    let mut buf = Vec::new();
    let mut w = AsciiWriter::new(&mut buf);
    for e in events {
        w.event(e).unwrap();
    }
    buf
}

fn encode_binary(events: &[TraceEvent]) -> Vec<u8> {
    let mut buf = Vec::new();
    let mut w = BinaryWriter::new(&mut buf).unwrap();
    for e in events {
        w.event(e).unwrap();
    }
    buf
}

fn bench_encode(c: &mut Criterion) {
    let events = real_trace();
    let mut group = c.benchmark_group("trace_encode");
    group.throughput(Throughput::Elements(events.len() as u64));
    group.bench_function("ascii", |b| b.iter(|| encode_ascii(&events)));
    group.bench_function("binary", |b| b.iter(|| encode_binary(&events)));
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let events = real_trace();
    let ascii = encode_ascii(&events);
    let binary = encode_binary(&events);
    println!(
        "trace sizes: ascii {} bytes, binary {} bytes ({:.2}x compaction)",
        ascii.len(),
        binary.len(),
        ascii.len() as f64 / binary.len() as f64
    );
    let mut group = c.benchmark_group("trace_decode");
    group.throughput(Throughput::Elements(events.len() as u64));
    group.bench_function("ascii", |b| {
        b.iter(|| {
            let n = AsciiReader::new(std::io::Cursor::new(&ascii))
                .map(Result::unwrap)
                .count();
            assert_eq!(n, events.len());
        })
    });
    group.bench_function("binary", |b| {
        b.iter(|| {
            let n = BinaryReader::new(std::io::Cursor::new(&binary))
                .unwrap()
                .map(Result::unwrap)
                .count();
            assert_eq!(n, events.len());
        })
    });
    group.finish();
}

criterion_group!(benches, bench_encode, bench_decode);
criterion_main!(benches);
