//! Micro-benchmarks for the trace encodings (ablation A of DESIGN.md):
//! ASCII vs binary write and parse throughput, backing the paper's §4
//! prediction that a binary format compacts traces 2-3x and speeds up
//! the parsing-bound checker. Uses the in-house harness in
//! `rescheck_bench::micro` (no criterion; the workspace builds offline).

use rescheck_bench::micro::bench;
use rescheck_solver::{Solver, SolverConfig};
use rescheck_trace::{
    AsciiReader, AsciiWriter, BinaryReader, BinaryWriter, MemorySink, TraceEvent, TraceSink,
};
use rescheck_workloads::pigeonhole;

fn real_trace() -> Vec<TraceEvent> {
    let inst = pigeonhole::instance(7);
    let mut solver = Solver::from_cnf(&inst.cnf, SolverConfig::default());
    let mut sink = MemorySink::new();
    assert!(solver.solve_traced(&mut sink).unwrap().is_unsat());
    sink.into_events()
}

fn encode_ascii(events: &[TraceEvent]) -> Vec<u8> {
    let mut buf = Vec::new();
    let mut w = AsciiWriter::new(&mut buf);
    for e in events {
        w.event(e).unwrap();
    }
    buf
}

fn encode_binary(events: &[TraceEvent]) -> Vec<u8> {
    let mut buf = Vec::new();
    let mut w = BinaryWriter::new(&mut buf).unwrap();
    for e in events {
        w.event(e).unwrap();
    }
    buf
}

fn main() {
    let events = real_trace();
    println!("trace: {} events", events.len());

    bench("trace_encode/ascii", || {
        encode_ascii(&events);
    });
    bench("trace_encode/binary", || {
        encode_binary(&events);
    });

    let ascii = encode_ascii(&events);
    let binary = encode_binary(&events);
    println!(
        "trace sizes: ascii {} bytes, binary {} bytes ({:.2}x compaction)",
        ascii.len(),
        binary.len(),
        ascii.len() as f64 / binary.len() as f64
    );

    bench("trace_decode/ascii", || {
        let n = AsciiReader::new(std::io::Cursor::new(&ascii))
            .map(Result::unwrap)
            .count();
        assert_eq!(n, events.len());
    });
    bench("trace_decode/binary", || {
        let n = BinaryReader::new(std::io::Cursor::new(&binary))
            .unwrap()
            .map(Result::unwrap)
            .count();
        assert_eq!(n, events.len());
    });
}
