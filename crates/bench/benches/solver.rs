//! Micro-benchmarks for the solver, including the configuration
//! ablations DESIGN.md calls out (learning on/off, deletion on/off,
//! restarts on/off — paper §2.1 argues all combinations stay correct).
//! Uses the in-house harness in `rescheck_bench::micro` (no criterion;
//! the workspace builds offline).

use rescheck_bench::micro::bench;
use rescheck_solver::dp::{dp_solve, DpResult};
use rescheck_solver::{Solver, SolverConfig};
use rescheck_workloads::{bmc, equiv, pigeonhole, pipeline};

fn bench_families() {
    for inst in [
        pigeonhole::instance(6),
        equiv::adder_miter(10),
        bmc::longmult(4),
        bmc::barrel(8, 10),
        pipeline::pipe(10, 2),
    ] {
        bench(&format!("solve/{}", inst.name), || {
            let mut solver = Solver::from_cnf(&inst.cnf, SolverConfig::default());
            assert!(solver.solve().is_unsat());
        });
    }
}

fn bench_ablations() {
    let inst = pigeonhole::instance(6);
    let configs: [(&str, SolverConfig); 4] = [
        ("default", SolverConfig::default()),
        ("no_learning", SolverConfig::without_learning()),
        ("no_deletion", SolverConfig::without_deletion()),
        ("no_restarts", SolverConfig::without_restarts()),
    ];
    for (name, cfg) in configs {
        bench(&format!("solve_ablation/{name}"), || {
            let mut solver = Solver::from_cnf(&inst.cnf, cfg.clone());
            assert!(solver.solve().is_unsat());
        });
    }
}

fn bench_bcp_heavy() {
    // A propagation-dominated satisfiable chain: measures raw BCP.
    let mut cnf = rescheck_cnf::Cnf::new();
    let n = 20_000i64;
    cnf.add_dimacs_clause(&[1]);
    for i in 1..n {
        cnf.add_dimacs_clause(&[-i, i + 1]);
    }
    bench("bcp_chain_20k", || {
        let mut solver = Solver::from_cnf(&cnf, SolverConfig::default());
        assert!(solver.solve().is_sat());
    });
}

fn bench_dp_vs_cdcl() {
    // The paper's §1 framing: classic Davis–Putnam resolution vs. DLL
    // search. DP decides tiny pigeonholes but its clause count explodes;
    // CDCL scales. (Run both at a size DP can still finish.)
    let inst = pigeonhole::instance(4);
    bench("dp_vs_cdcl/cdcl_php4", || {
        let mut solver = Solver::from_cnf(&inst.cnf, SolverConfig::default());
        assert!(solver.solve().is_unsat());
    });
    bench("dp_vs_cdcl/dp_php4", || {
        let outcome = dp_solve(&inst.cnf, None);
        assert!(matches!(
            outcome.result,
            DpResult::Decided(rescheck_cnf::SatStatus::Unsatisfiable)
        ));
    });

    // Report the space story once.
    let outcome = dp_solve(&inst.cnf, None);
    println!(
        "dp space on php4: peak {} clauses from {} original ({} resolvents); \
         cdcl peak learned stays linear",
        outcome.peak_clauses,
        inst.cnf.num_clauses(),
        outcome.resolvents
    );
}

fn main() {
    bench_families();
    bench_ablations();
    bench_bcp_heavy();
    bench_dp_vs_cdcl();
}
