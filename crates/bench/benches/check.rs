//! Check-throughput benchmark: end-to-end validation time on
//! Table-2-class instances, sequential breadth-first against the sharded
//! breadth-first checker and the work-stealing parallel-dag executor at
//! increasing worker counts, plus the observability overhead
//! of running the same check under a recording [`MetricsSink`] instead
//! of the [`NullObserver`] (the hot path is allocation-free, so the gap
//! should be noise).
//!
//! Traces go through the production file path — solved once into a
//! binary temp file and checked through a [`FileTrace`] with its byte
//! map established up front (the `rescheck serve` reuse pattern) — so
//! the parallel rows exercise the mapped sharded ingestion front end.
//! The `pbf` rows keep the default `parallel_min_learned` threshold:
//! with the map's exact learned count both instances fall back to the
//! sequential pass, so those rows should sit at the `bf` baseline at
//! every worker count. The `pdag` rows override the threshold to 0 to
//! force the parallel path, and a `nommap` row re-checks under the
//! buffered backing; its work counters must match the mapped row
//! bit-for-bit.
//!
//! With `--json <path>` a `rescheck-metrics-v2` document is written with
//! one row per (instance, configuration) pair carrying the median check
//! time and the learned-clauses-per-second throughput, for the CI
//! bench-smoke job (which checks shape, never timing). The document
//! records the host's available parallelism: on a single-core runner
//! the multi-worker rows measure overhead, not scaling.

use rescheck_bench::micro::bench;
use rescheck_bench::report::{take_json_flag, write_json, SCHEMA};
use rescheck_checker::{
    check_unsat_claim, check_unsat_claim_observed, CheckConfig, CheckStats, Strategy,
};
use rescheck_obs::{Json, MetricsSink};
use rescheck_solver::{Solver, SolverConfig};
use rescheck_trace::{BinaryWriter, FileTrace, TraceSink, TraceSource};
use rescheck_workloads::{bmc, pigeonhole, Instance};
use std::path::{Path, PathBuf};

/// Solves `inst` into a binary trace file and opens it with the byte
/// map established, as the daemon's trace cache would hand it out.
fn trace_of(inst: &Instance) -> (FileTrace, PathBuf) {
    let dir = std::env::temp_dir().join("rescheck-bench-check");
    std::fs::create_dir_all(&dir).expect("create fixture dir");
    let path = dir.join(format!("{}-{}.rtb", inst.name, std::process::id()));
    let file = std::fs::File::create(&path).expect("create trace fixture");
    let mut writer = BinaryWriter::new(std::io::BufWriter::new(file)).expect("write magic");
    let mut solver = Solver::from_cnf(&inst.cnf, SolverConfig::default());
    assert!(solver.solve_traced(&mut writer).unwrap().is_unsat());
    writer.flush().expect("flush trace fixture");
    let trace = FileTrace::open(&path).expect("open trace fixture");
    trace.trace_map(true).expect("binary traces map");
    (trace, path)
}

fn config_with_jobs(jobs: usize) -> CheckConfig {
    CheckConfig {
        jobs,
        ..CheckConfig::default()
    }
}

/// The pdag rows force the parallel path: both bench instances sit
/// below the default `parallel_min_learned` threshold, which the mapped
/// block index now enforces with exact counts.
fn pdag_config(jobs: usize, no_mmap: bool) -> CheckConfig {
    CheckConfig {
        jobs,
        parallel_min_learned: 0,
        no_mmap,
        ..CheckConfig::default()
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = take_json_flag(&mut args);

    let mut rows: Vec<Json> = Vec::new();
    for inst in [pigeonhole::instance(6), bmc::longmult(4)] {
        let (trace, trace_path) = trace_of(&inst);
        let learned = check_unsat_claim(
            &inst.cnf,
            &trace,
            Strategy::BreadthFirst,
            &CheckConfig::default(),
        )
        .expect("genuine trace")
        .stats
        .learned_in_trace;

        let mut push_row = |config: &str, median_seconds: f64, stats: Option<&CheckStats>| {
            let mut row = Json::object();
            row.set("name", inst.name.as_str())
                .set("config", config)
                .set("learned_in_trace", learned)
                .set("median_seconds", median_seconds)
                .set(
                    "learned_per_second",
                    learned as f64 / median_seconds.max(1e-12),
                );
            // Work counters, for the determinism-across-jobs criterion
            // (compared bit-for-bit between pdag rows in CI).
            if let Some(stats) = stats {
                row.set("clauses_built", stats.clauses_built)
                    .set("resolutions", stats.resolutions)
                    .set("peak_memory_bytes", stats.peak_memory_bytes);
            }
            rows.push(row);
        };

        let seq = bench(&format!("check/bf/{}", inst.name), || {
            check_unsat_claim(
                &inst.cnf,
                &trace,
                Strategy::BreadthFirst,
                &CheckConfig::default(),
            )
            .expect("genuine trace");
        });
        push_row("bf", seq.median.as_secs_f64(), None);

        for jobs in [1usize, 2, 4] {
            let summary = bench(&format!("check/pbf-jobs{jobs}/{}", inst.name), || {
                check_unsat_claim(
                    &inst.cnf,
                    &trace,
                    Strategy::ParallelBf,
                    &config_with_jobs(jobs),
                )
                .expect("genuine trace");
            });
            push_row(
                &format!("pbf-jobs{jobs}"),
                summary.median.as_secs_f64(),
                None,
            );
        }

        let mut mapped_key = None;
        for jobs in [1usize, 2, 4, 8] {
            let config = pdag_config(jobs, false);
            let stats = check_unsat_claim(&inst.cnf, &trace, Strategy::ParallelDag, &config)
                .expect("genuine trace")
                .stats;
            let key = (
                stats.clauses_built,
                stats.resolutions,
                stats.peak_memory_bytes,
            );
            if let Some(prev) = mapped_key {
                assert_eq!(prev, key, "pdag stats drift across worker counts");
            }
            mapped_key = Some(key);
            let summary = bench(&format!("check/pdag-jobs{jobs}/{}", inst.name), || {
                check_unsat_claim(&inst.cnf, &trace, Strategy::ParallelDag, &config)
                    .expect("genuine trace");
            });
            push_row(
                &format!("pdag-jobs{jobs}"),
                summary.median.as_secs_f64(),
                Some(&stats),
            );
        }

        // The buffered-backing comparison row: a fresh handle (a
        // FileTrace keeps the first backing it establishes) checked
        // with `no_mmap`, which must reproduce the mapped rows' work
        // counters bit-for-bit.
        {
            let config = pdag_config(4, true);
            let unmapped = FileTrace::open(&trace_path).expect("open trace fixture");
            let stats = check_unsat_claim(&inst.cnf, &unmapped, Strategy::ParallelDag, &config)
                .expect("genuine trace")
                .stats;
            assert_eq!(
                mapped_key,
                Some((
                    stats.clauses_built,
                    stats.resolutions,
                    stats.peak_memory_bytes,
                )),
                "no_mmap pdag stats diverge from the mapped rows"
            );
            let summary = bench(&format!("check/pdag-jobs4-nommap/{}", inst.name), || {
                check_unsat_claim(&inst.cnf, &unmapped, Strategy::ParallelDag, &config)
                    .expect("genuine trace");
            });
            push_row(
                "pdag-jobs4-nommap",
                summary.median.as_secs_f64(),
                Some(&stats),
            );
        }

        // Observability overhead: the same breadth-first check with a
        // recording metrics sink (spans, counters, histograms) against
        // the NullObserver baseline measured above.
        let mut sink = MetricsSink::new();
        let observed = bench(&format!("check/bf-metrics/{}", inst.name), || {
            check_unsat_claim_observed(
                &inst.cnf,
                &trace,
                Strategy::BreadthFirst,
                &CheckConfig::default(),
                &mut sink,
            )
            .expect("genuine trace");
        });
        push_row("bf-metrics", observed.median.as_secs_f64(), None);
        let overhead =
            (observed.median.as_secs_f64() / seq.median.as_secs_f64().max(1e-12) - 1.0) * 100.0;
        println!("check/observer-overhead/{}: {overhead:+.2}%", inst.name);
        std::fs::remove_file(&trace_path).ok();
    }

    if let Some(path) = json_path {
        let mut doc = Json::object();
        doc.set("schema", SCHEMA)
            .set("command", "bench:check")
            .set(
                "available_parallelism",
                std::thread::available_parallelism()
                    .map(|n| n.get() as u64)
                    .unwrap_or(1),
            )
            .set("rows", Json::Array(rows));
        write_json(Path::new(&path), &doc).expect("write json");
        println!("wrote {path}");
    }
}
