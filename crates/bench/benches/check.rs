//! Check-throughput benchmark: end-to-end validation time on
//! Table-2-class instances, sequential breadth-first against the sharded
//! breadth-first checker and the work-stealing parallel-dag executor at
//! increasing worker counts, plus the observability overhead
//! of running the same check under a recording [`MetricsSink`] instead
//! of the [`NullObserver`] (the hot path is allocation-free, so the gap
//! should be noise).
//!
//! With `--json <path>` a `rescheck-metrics-v2` document is written with
//! one row per (instance, configuration) pair carrying the median check
//! time and the learned-clauses-per-second throughput, for the CI
//! bench-smoke job (which checks shape, never timing).

use rescheck_bench::micro::bench;
use rescheck_bench::report::{take_json_flag, write_json, SCHEMA};
use rescheck_checker::{
    check_unsat_claim, check_unsat_claim_observed, CheckConfig, CheckStats, Strategy,
};
use rescheck_obs::{Json, MetricsSink};
use rescheck_solver::{Solver, SolverConfig};
use rescheck_trace::MemorySink;
use rescheck_workloads::{bmc, pigeonhole, Instance};
use std::path::Path;

fn trace_of(inst: &Instance) -> MemorySink {
    let mut solver = Solver::from_cnf(&inst.cnf, SolverConfig::default());
    let mut sink = MemorySink::new();
    assert!(solver.solve_traced(&mut sink).unwrap().is_unsat());
    sink
}

fn config_with_jobs(jobs: usize) -> CheckConfig {
    CheckConfig {
        jobs,
        ..CheckConfig::default()
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = take_json_flag(&mut args);

    let mut rows: Vec<Json> = Vec::new();
    for inst in [pigeonhole::instance(6), bmc::longmult(4)] {
        let trace = trace_of(&inst);
        let learned = check_unsat_claim(
            &inst.cnf,
            &trace,
            Strategy::BreadthFirst,
            &CheckConfig::default(),
        )
        .expect("genuine trace")
        .stats
        .learned_in_trace;

        let mut push_row = |config: &str, median_seconds: f64, stats: Option<&CheckStats>| {
            let mut row = Json::object();
            row.set("name", inst.name.as_str())
                .set("config", config)
                .set("learned_in_trace", learned)
                .set("median_seconds", median_seconds)
                .set(
                    "learned_per_second",
                    learned as f64 / median_seconds.max(1e-12),
                );
            // Work counters, for the determinism-across-jobs criterion
            // (compared bit-for-bit between pdag rows in CI).
            if let Some(stats) = stats {
                row.set("clauses_built", stats.clauses_built)
                    .set("resolutions", stats.resolutions)
                    .set("peak_memory_bytes", stats.peak_memory_bytes);
            }
            rows.push(row);
        };

        let seq = bench(&format!("check/bf/{}", inst.name), || {
            check_unsat_claim(
                &inst.cnf,
                &trace,
                Strategy::BreadthFirst,
                &CheckConfig::default(),
            )
            .expect("genuine trace");
        });
        push_row("bf", seq.median.as_secs_f64(), None);

        for jobs in [1usize, 2, 4] {
            let summary = bench(&format!("check/pbf-jobs{jobs}/{}", inst.name), || {
                check_unsat_claim(
                    &inst.cnf,
                    &trace,
                    Strategy::ParallelBf,
                    &config_with_jobs(jobs),
                )
                .expect("genuine trace");
            });
            push_row(&format!("pbf-jobs{jobs}"), summary.median.as_secs_f64(), None);
        }

        for jobs in [1usize, 2, 4, 8] {
            let config = config_with_jobs(jobs);
            let stats = check_unsat_claim(&inst.cnf, &trace, Strategy::ParallelDag, &config)
                .expect("genuine trace")
                .stats;
            let summary = bench(&format!("check/pdag-jobs{jobs}/{}", inst.name), || {
                check_unsat_claim(&inst.cnf, &trace, Strategy::ParallelDag, &config)
                    .expect("genuine trace");
            });
            push_row(
                &format!("pdag-jobs{jobs}"),
                summary.median.as_secs_f64(),
                Some(&stats),
            );
        }

        // Observability overhead: the same breadth-first check with a
        // recording metrics sink (spans, counters, histograms) against
        // the NullObserver baseline measured above.
        let mut sink = MetricsSink::new();
        let observed = bench(&format!("check/bf-metrics/{}", inst.name), || {
            check_unsat_claim_observed(
                &inst.cnf,
                &trace,
                Strategy::BreadthFirst,
                &CheckConfig::default(),
                &mut sink,
            )
            .expect("genuine trace");
        });
        push_row("bf-metrics", observed.median.as_secs_f64(), None);
        let overhead =
            (observed.median.as_secs_f64() / seq.median.as_secs_f64().max(1e-12) - 1.0) * 100.0;
        println!("check/observer-overhead/{}: {overhead:+.2}%", inst.name);
    }

    if let Some(path) = json_path {
        let mut doc = Json::object();
        doc.set("schema", SCHEMA)
            .set("command", "bench:check")
            .set("rows", Json::Array(rows));
        write_json(Path::new(&path), &doc).expect("write json");
        println!("wrote {path}");
    }
}
