//! Micro-benchmarks for the checkers: depth-first vs breadth-first on
//! identical traces (ablation B of DESIGN.md — the Table 2 comparison
//! as a microbenchmark). Uses the in-house harness in
//! `rescheck_bench::micro` (no criterion; the workspace builds offline).

use rescheck_bench::micro::bench;
use rescheck_checker::{check_unsat_claim, CheckConfig, Strategy};
use rescheck_solver::{Solver, SolverConfig};
use rescheck_trace::MemorySink;
use rescheck_workloads::{bmc, pigeonhole, Instance};

fn trace_of(inst: &Instance) -> MemorySink {
    let mut solver = Solver::from_cnf(&inst.cnf, SolverConfig::default());
    let mut sink = MemorySink::new();
    assert!(solver.solve_traced(&mut sink).unwrap().is_unsat());
    sink
}

fn bench_strategies() {
    for inst in [
        pigeonhole::instance(6),
        bmc::longmult(4),
        bmc::barrel(8, 10),
    ] {
        let trace = trace_of(&inst);
        for strategy in [
            Strategy::DepthFirst,
            Strategy::BreadthFirst,
            Strategy::Hybrid,
        ] {
            bench(&format!("check/{strategy}/{}", inst.name), || {
                check_unsat_claim(&inst.cnf, &trace, strategy, &CheckConfig::default())
                    .expect("genuine trace");
            });
        }
    }
}

fn bench_check_vs_solve() {
    // The paper's headline ratio: checking is much cheaper than solving.
    let inst = pigeonhole::instance(6);
    let trace = trace_of(&inst);
    bench("check_vs_solve/solve_php6", || {
        let mut solver = Solver::from_cnf(&inst.cnf, SolverConfig::default());
        assert!(solver.solve().is_unsat());
    });
    bench("check_vs_solve/check_php6_df", || {
        check_unsat_claim(
            &inst.cnf,
            &trace,
            Strategy::DepthFirst,
            &CheckConfig::default(),
        )
        .expect("genuine trace");
    });
}

fn main() {
    bench_strategies();
    bench_check_vs_solve();
}
