//! Criterion benchmarks for the checkers: depth-first vs breadth-first
//! on identical traces (ablation B of DESIGN.md — the Table 2 comparison
//! as a statistical microbenchmark).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rescheck_checker::{check_unsat_claim, CheckConfig, Strategy};
use rescheck_solver::{Solver, SolverConfig};
use rescheck_trace::MemorySink;
use rescheck_workloads::{bmc, pigeonhole, Instance};

fn trace_of(inst: &Instance) -> MemorySink {
    let mut solver = Solver::from_cnf(&inst.cnf, SolverConfig::default());
    let mut sink = MemorySink::new();
    assert!(solver.solve_traced(&mut sink).unwrap().is_unsat());
    sink
}

fn bench_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("check");
    for inst in [pigeonhole::instance(6), bmc::longmult(4), bmc::barrel(8, 10)] {
        let trace = trace_of(&inst);
        for strategy in [Strategy::DepthFirst, Strategy::BreadthFirst, Strategy::Hybrid] {
            group.bench_with_input(
                BenchmarkId::new(strategy.to_string(), &inst.name),
                &(&inst, &trace),
                |b, (inst, trace)| {
                    b.iter(|| {
                        check_unsat_claim(&inst.cnf, *trace, strategy, &CheckConfig::default())
                            .expect("genuine trace")
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_check_vs_solve(c: &mut Criterion) {
    // The paper's headline ratio: checking is much cheaper than solving.
    let inst = pigeonhole::instance(6);
    let trace = trace_of(&inst);
    let mut group = c.benchmark_group("check_vs_solve");
    group.bench_function("solve_php6", |b| {
        b.iter(|| {
            let mut solver = Solver::from_cnf(&inst.cnf, SolverConfig::default());
            assert!(solver.solve().is_unsat());
        })
    });
    group.bench_function("check_php6_df", |b| {
        b.iter(|| {
            check_unsat_claim(
                &inst.cnf,
                &trace,
                Strategy::DepthFirst,
                &CheckConfig::default(),
            )
            .expect("genuine trace")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_strategies, bench_check_vs_solve);
criterion_main!(benches);
