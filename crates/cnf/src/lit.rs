//! Variables and literals.

use std::fmt;

/// A propositional variable, identified by a 0-based index.
///
/// Variables are cheap `Copy` handles; the formula or solver that owns them
/// defines how many exist. The DIMACS text format is 1-based; use
/// [`Var::to_dimacs`] / [`Var::from_dimacs`] at the boundary.
///
/// # Examples
///
/// ```
/// use rescheck_cnf::Var;
///
/// let v = Var::new(3);
/// assert_eq!(v.index(), 3);
/// assert_eq!(v.to_dimacs(), 4);
/// assert_eq!(Var::from_dimacs(4), v);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(u32);

impl Var {
    /// Creates a variable with the given 0-based index.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds the maximum supported index
    /// (`u32::MAX / 2`), which keeps every literal representable in a `u32`.
    #[inline]
    pub fn new(index: usize) -> Self {
        assert!(
            index <= (u32::MAX / 2) as usize,
            "variable index {index} out of range"
        );
        Var(index as u32)
    }

    /// Returns the 0-based index of this variable.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Converts a 1-based DIMACS variable number into a `Var`.
    ///
    /// # Panics
    ///
    /// Panics if `dimacs` is zero (DIMACS variable numbers start at 1).
    #[inline]
    pub fn from_dimacs(dimacs: u32) -> Self {
        assert!(dimacs > 0, "DIMACS variable numbers start at 1");
        Var(dimacs - 1)
    }

    /// Returns the 1-based DIMACS number of this variable.
    #[inline]
    pub fn to_dimacs(self) -> u32 {
        self.0 + 1
    }

    /// Returns the positive literal of this variable.
    #[inline]
    pub fn positive(self) -> Lit {
        Lit::positive(self)
    }

    /// Returns the negative literal of this variable.
    #[inline]
    pub fn negative(self) -> Lit {
        Lit::negative(self)
    }

    /// Returns the literal of this variable with the given phase.
    ///
    /// `phase == true` yields the positive literal.
    #[inline]
    pub fn lit(self, phase: bool) -> Lit {
        Lit::new(self, phase)
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Var({})", self.0)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.to_dimacs())
    }
}

/// A literal: a variable together with a phase (positive or negated).
///
/// Literals are encoded MiniSat-style as `var << 1 | sign` where `sign == 1`
/// means negated, so a literal fits in a `u32` and indexes arrays directly
/// via [`Lit::code`].
///
/// # Examples
///
/// ```
/// use rescheck_cnf::{Lit, Var};
///
/// let x = Var::new(0);
/// let p = Lit::positive(x);
/// assert!(p.is_positive());
/// assert_eq!(!p, Lit::negative(x));
/// assert_eq!(p.var(), x);
/// assert_eq!(p.to_dimacs(), 1);
/// assert_eq!((!p).to_dimacs(), -1);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// Creates a literal from a variable and a phase.
    ///
    /// `phase == true` yields the positive (non-negated) literal.
    #[inline]
    pub fn new(var: Var, phase: bool) -> Self {
        Lit(var.0 << 1 | u32::from(!phase))
    }

    /// Returns the positive literal of `var`.
    #[inline]
    pub fn positive(var: Var) -> Self {
        Lit::new(var, true)
    }

    /// Returns the negative literal of `var`.
    #[inline]
    pub fn negative(var: Var) -> Self {
        Lit::new(var, false)
    }

    /// Reconstructs a literal from its [`code`](Lit::code).
    #[inline]
    pub fn from_code(code: usize) -> Self {
        debug_assert!(code <= u32::MAX as usize);
        Lit(code as u32)
    }

    /// Returns the dense integer code of this literal (`var*2 + sign`).
    ///
    /// Codes are contiguous, so they index per-literal arrays such as
    /// watch lists.
    #[inline]
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// Returns the variable underlying this literal.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Returns `true` if the literal is positive (not negated).
    #[inline]
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// Returns `true` if the literal is negated.
    #[inline]
    pub fn is_negative(self) -> bool {
        self.0 & 1 == 1
    }

    /// Converts a non-zero DIMACS literal (`±var`) into a `Lit`.
    ///
    /// # Panics
    ///
    /// Panics if `dimacs` is zero.
    #[inline]
    pub fn from_dimacs(dimacs: i64) -> Self {
        assert!(dimacs != 0, "DIMACS literals are non-zero");
        let var = Var::from_dimacs(dimacs.unsigned_abs() as u32);
        Lit::new(var, dimacs > 0)
    }

    /// Returns the signed DIMACS representation of this literal.
    #[inline]
    pub fn to_dimacs(self) -> i64 {
        let v = self.var().to_dimacs() as i64;
        if self.is_positive() {
            v
        } else {
            -v
        }
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;

    /// Returns the complementary literal.
    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Lit({})", self.to_dimacs())
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_negative() {
            write!(f, "¬")?;
        }
        write!(f, "{}", self.var())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_roundtrips_through_dimacs() {
        for i in [0usize, 1, 2, 41, 10_000] {
            let v = Var::new(i);
            assert_eq!(Var::from_dimacs(v.to_dimacs()), v);
            assert_eq!(v.index(), i);
        }
    }

    #[test]
    fn lit_encoding_is_minisat_style() {
        let v = Var::new(5);
        assert_eq!(Lit::positive(v).code(), 10);
        assert_eq!(Lit::negative(v).code(), 11);
        assert_eq!(Lit::from_code(10), Lit::positive(v));
    }

    #[test]
    fn negation_is_involutive_and_flips_phase() {
        let l = Lit::from_dimacs(-7);
        assert!(l.is_negative());
        assert!((!l).is_positive());
        assert_eq!(!!l, l);
        assert_eq!((!l).var(), l.var());
    }

    #[test]
    fn lit_roundtrips_through_dimacs() {
        for d in [1i64, -1, 2, -2, 999, -999] {
            assert_eq!(Lit::from_dimacs(d).to_dimacs(), d);
        }
    }

    #[test]
    fn var_lit_constructors_agree() {
        let v = Var::new(3);
        assert_eq!(v.positive(), Lit::positive(v));
        assert_eq!(v.negative(), Lit::negative(v));
        assert_eq!(v.lit(true), v.positive());
        assert_eq!(v.lit(false), v.negative());
    }

    #[test]
    #[should_panic(expected = "DIMACS variable numbers start at 1")]
    fn var_from_dimacs_rejects_zero() {
        let _ = Var::from_dimacs(0);
    }

    #[test]
    #[should_panic(expected = "DIMACS literals are non-zero")]
    fn lit_from_dimacs_rejects_zero() {
        let _ = Lit::from_dimacs(0);
    }

    #[test]
    fn display_formats() {
        let v = Var::new(0);
        assert_eq!(v.to_string(), "x1");
        assert_eq!(Lit::positive(v).to_string(), "x1");
        assert_eq!(Lit::negative(v).to_string(), "¬x1");
    }

    #[test]
    fn ordering_groups_literals_by_variable() {
        let a = Var::new(1);
        let b = Var::new(2);
        assert!(Lit::positive(a) < Lit::negative(a));
        assert!(Lit::negative(a) < Lit::positive(b));
    }
}
