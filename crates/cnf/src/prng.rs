//! A small deterministic PRNG for workload generation and tests.
//!
//! The workspace builds offline, so instead of depending on `rand` we
//! ship SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): a 64-bit state,
//! full 2^64 period, and excellent statistical quality for its size.
//! It is explicitly *not* cryptographic — it seeds benchmark instances
//! and randomized tests, nothing else.

/// A SplitMix64 pseudo-random number generator.
///
/// Deterministic for a given seed, so generated instances and tests are
/// reproducible across platforms.
///
/// # Examples
///
/// ```
/// use rescheck_cnf::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let v = a.below(10);
/// assert!(v < 10);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, bound)`; `bound` must be non-zero.
    ///
    /// Uses Lemire's multiply-shift reduction with rejection, so the
    /// result is unbiased for every bound.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below() requires a non-zero bound");
        // Lemire 2019: take the high 64 bits of x * bound; reject the
        // small biased region of the low half.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let wide = (x as u128) * (bound as u128);
            if (wide as u64) >= threshold {
                return (wide >> 64) as u64;
            }
        }
    }

    /// A uniform `usize` in `[range.start, range.end)`.
    pub fn range_usize(&mut self, range: core::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "empty range");
        range.start + self.below((range.end - range.start) as u64) as usize
    }

    /// A uniform `u32` in `[range.start, range.end)`.
    pub fn range_u32(&mut self, range: core::ops::Range<u32>) -> u32 {
        assert!(range.start < range.end, "empty range");
        range.start + self.below(u64::from(range.end - range.start)) as u32
    }

    /// A uniform float in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_splitmix_vectors() {
        // Reference outputs for seed 1234567 from the canonical C
        // implementation (Vigna, prng.di.unimi.it).
        let mut rng = SplitMix64::new(1234567);
        assert_eq!(rng.next_u64(), 6457827717110365317);
        assert_eq!(rng.next_u64(), 3203168211198807973);
        assert_eq!(rng.next_u64(), 9817491932198370423);
    }

    #[test]
    fn determinism() {
        let a: Vec<u64> = {
            let mut rng = SplitMix64::new(99);
            (0..32).map(|_| rng.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut rng = SplitMix64::new(99);
            (0..32).map(|_| rng.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn below_stays_in_bounds_and_hits_everything() {
        let mut rng = SplitMix64::new(7);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = rng.below(5) as usize;
            assert!(v < 5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn ranges_respect_endpoints() {
        let mut rng = SplitMix64::new(11);
        for _ in 0..100 {
            let u = rng.range_usize(3..9);
            assert!((3..9).contains(&u));
            let w = rng.range_u32(10..500);
            assert!((10..500).contains(&w));
        }
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut rng = SplitMix64::new(5);
        for _ in 0..100 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SplitMix64::new(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let heads = (0..1000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((300..700).contains(&heads), "suspicious coin: {heads}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = SplitMix64::new(21);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
