//! Three-valued assignments.

use crate::{Lit, Var};
use std::fmt;
use std::ops::Not;

/// A three-valued truth value: true, false or unassigned.
///
/// # Examples
///
/// ```
/// use rescheck_cnf::LBool;
///
/// assert_eq!(!LBool::True, LBool::False);
/// assert_eq!(!LBool::Undef, LBool::Undef);
/// assert_eq!(LBool::from(true), LBool::True);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum LBool {
    /// The variable is assigned true.
    True,
    /// The variable is assigned false.
    False,
    /// The variable is unassigned.
    #[default]
    Undef,
}

impl LBool {
    /// Returns `true` if the value is [`LBool::Undef`].
    #[inline]
    pub fn is_undef(self) -> bool {
        matches!(self, LBool::Undef)
    }

    /// Converts to `Option<bool>`, with `None` for [`LBool::Undef`].
    #[inline]
    pub fn to_bool(self) -> Option<bool> {
        match self {
            LBool::True => Some(true),
            LBool::False => Some(false),
            LBool::Undef => None,
        }
    }
}

impl From<bool> for LBool {
    #[inline]
    fn from(b: bool) -> Self {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }
}

impl Not for LBool {
    type Output = LBool;

    #[inline]
    fn not(self) -> LBool {
        match self {
            LBool::True => LBool::False,
            LBool::False => LBool::True,
            LBool::Undef => LBool::Undef,
        }
    }
}

impl fmt::Display for LBool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LBool::True => f.write_str("1"),
            LBool::False => f.write_str("0"),
            LBool::Undef => f.write_str("?"),
        }
    }
}

/// A (possibly partial) assignment of truth values to variables.
///
/// Used both by the solver (partial assignments during search) and as a
/// *model*: a total assignment returned for satisfiable formulas.
///
/// # Examples
///
/// ```
/// use rescheck_cnf::{Assignment, LBool, Lit, Var};
///
/// let mut a = Assignment::new(2);
/// let x = Var::new(0);
/// a.assign(Lit::negative(x));
/// assert_eq!(a.value(x), LBool::False);
/// assert_eq!(a.lit_value(Lit::negative(x)), LBool::True);
/// assert!(!a.is_total());
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Assignment {
    values: Vec<LBool>,
}

impl Assignment {
    /// Creates an assignment over `num_vars` variables, all unassigned.
    pub fn new(num_vars: usize) -> Self {
        Assignment {
            values: vec![LBool::Undef; num_vars],
        }
    }

    /// Builds a total assignment from a slice of booleans (index = variable).
    pub fn from_bools(values: &[bool]) -> Self {
        Assignment {
            values: values.iter().map(|&b| LBool::from(b)).collect(),
        }
    }

    /// Number of variables this assignment covers.
    pub fn num_vars(&self) -> usize {
        self.values.len()
    }

    /// Grows the assignment to cover at least `num_vars` variables.
    pub fn grow_to(&mut self, num_vars: usize) {
        if self.values.len() < num_vars {
            self.values.resize(num_vars, LBool::Undef);
        }
    }

    /// Returns the value of a variable.
    ///
    /// Variables beyond [`num_vars`](Assignment::num_vars) are reported as
    /// [`LBool::Undef`].
    #[inline]
    pub fn value(&self, var: Var) -> LBool {
        self.values
            .get(var.index())
            .copied()
            .unwrap_or(LBool::Undef)
    }

    /// Returns the value of a literal under this assignment.
    #[inline]
    pub fn lit_value(&self, lit: Lit) -> LBool {
        let v = self.value(lit.var());
        if lit.is_positive() {
            v
        } else {
            !v
        }
    }

    /// Returns `true` if the literal evaluates to true.
    #[inline]
    pub fn satisfies(&self, lit: Lit) -> bool {
        self.lit_value(lit) == LBool::True
    }

    /// Returns `true` if the literal evaluates to false.
    #[inline]
    pub fn falsifies(&self, lit: Lit) -> bool {
        self.lit_value(lit) == LBool::False
    }

    /// Makes the given literal true.
    ///
    /// # Panics
    ///
    /// Panics if the variable is out of range.
    #[inline]
    pub fn assign(&mut self, lit: Lit) {
        self.values[lit.var().index()] = LBool::from(lit.is_positive());
    }

    /// Sets a variable to an explicit three-valued value.
    ///
    /// # Panics
    ///
    /// Panics if the variable is out of range.
    #[inline]
    pub fn set(&mut self, var: Var, value: LBool) {
        self.values[var.index()] = value;
    }

    /// Unassigns a variable.
    ///
    /// # Panics
    ///
    /// Panics if the variable is out of range.
    #[inline]
    pub fn unassign(&mut self, var: Var) {
        self.values[var.index()] = LBool::Undef;
    }

    /// Returns `true` if every variable has a definite value.
    pub fn is_total(&self) -> bool {
        self.values.iter().all(|v| !v.is_undef())
    }

    /// Number of variables with a definite value.
    pub fn num_assigned(&self) -> usize {
        self.values.iter().filter(|v| !v.is_undef()).count()
    }

    /// Iterates over `(Var, LBool)` pairs for all covered variables.
    pub fn iter(&self) -> impl Iterator<Item = (Var, LBool)> + '_ {
        self.values
            .iter()
            .enumerate()
            .map(|(i, &v)| (Var::new(i), v))
    }
}

impl fmt::Display for Assignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (var, value) in self.iter() {
            if value.is_undef() {
                continue;
            }
            if !first {
                f.write_str(" ")?;
            }
            first = false;
            write!(f, "{var}={value}")?;
        }
        if first {
            f.write_str("(empty)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lbool_negation_table() {
        assert_eq!(!LBool::True, LBool::False);
        assert_eq!(!LBool::False, LBool::True);
        assert_eq!(!LBool::Undef, LBool::Undef);
    }

    #[test]
    fn lbool_conversions() {
        assert_eq!(LBool::from(true), LBool::True);
        assert_eq!(LBool::from(false), LBool::False);
        assert_eq!(LBool::True.to_bool(), Some(true));
        assert_eq!(LBool::Undef.to_bool(), None);
        assert!(LBool::Undef.is_undef());
        assert_eq!(LBool::default(), LBool::Undef);
    }

    #[test]
    fn assign_and_query_literals() {
        let mut a = Assignment::new(3);
        let x = Var::new(0);
        let y = Var::new(1);
        a.assign(Lit::positive(x));
        a.assign(Lit::negative(y));

        assert!(a.satisfies(Lit::positive(x)));
        assert!(a.falsifies(Lit::negative(x)));
        assert!(a.satisfies(Lit::negative(y)));
        assert_eq!(a.lit_value(Lit::positive(Var::new(2))), LBool::Undef);
        assert_eq!(a.num_assigned(), 2);
        assert!(!a.is_total());
    }

    #[test]
    fn unassign_clears_value() {
        let mut a = Assignment::new(1);
        let x = Var::new(0);
        a.assign(Lit::positive(x));
        a.unassign(x);
        assert_eq!(a.value(x), LBool::Undef);
    }

    #[test]
    fn out_of_range_vars_read_as_undef() {
        let a = Assignment::new(1);
        assert_eq!(a.value(Var::new(10)), LBool::Undef);
    }

    #[test]
    fn from_bools_is_total() {
        let a = Assignment::from_bools(&[true, false, true]);
        assert!(a.is_total());
        assert_eq!(a.value(Var::new(1)), LBool::False);
        assert_eq!(a.num_vars(), 3);
    }

    #[test]
    fn grow_to_extends_with_undef() {
        let mut a = Assignment::from_bools(&[true]);
        a.grow_to(3);
        assert_eq!(a.num_vars(), 3);
        assert_eq!(a.value(Var::new(2)), LBool::Undef);
        // Growing smaller is a no-op.
        a.grow_to(1);
        assert_eq!(a.num_vars(), 3);
    }

    #[test]
    fn display_lists_assigned_vars_only() {
        let mut a = Assignment::new(3);
        a.assign(Lit::positive(Var::new(0)));
        a.assign(Lit::negative(Var::new(2)));
        assert_eq!(a.to_string(), "x1=1 x3=0");
        assert_eq!(Assignment::new(2).to_string(), "(empty)");
    }
}
