//! DIMACS CNF reading and writing.
//!
//! The standard exchange format for SAT instances: a header line
//! `p cnf <vars> <clauses>` followed by clauses as whitespace-separated
//! signed integers terminated by `0`. Comment lines start with `c`.
//!
//! Parsing is a block-buffered byte scanner: [`ByteParser`] consumes
//! arbitrary byte chunks in a single fused skip-whitespace/lex-integer
//! pass — no per-line `String`, no line splitting, no token slicing —
//! tracking line numbers inline so error diagnostics stay identical to
//! the line-oriented reference implementation, which is kept as
//! [`parse_str_lines`] so the two can be compared (see `benches/io.rs`
//! and the differential tests below). [`parse_str`] feeds the whole text
//! as one chunk; [`parse_reader`] refills a single reused
//! [`READ_BUFFER_BYTES`]-sized buffer, with tokens and header lines that
//! straddle chunk boundaries reassembled through a small pending buffer.
//!
//! [`READ_BUFFER_BYTES`]: crate::READ_BUFFER_BYTES
//!
//! # Examples
//!
//! ```
//! use rescheck_cnf::dimacs;
//!
//! let cnf = dimacs::parse_str("c tiny\np cnf 2 2\n1 -2 0\n2 0\n")?;
//! assert_eq!(cnf.num_vars(), 2);
//! assert_eq!(cnf.num_clauses(), 2);
//!
//! let text = dimacs::to_string(&cnf);
//! assert_eq!(dimacs::parse_str(&text)?, cnf);
//! # Ok::<(), rescheck_cnf::ParseDimacsError>(())
//! ```

use crate::error::ParseDimacsErrorKind;
use crate::{Cnf, Lit, ParseDimacsError, READ_BUFFER_BYTES};
use std::io::{self, Read, Write};

/// Parses DIMACS CNF text into a [`Cnf`].
///
/// The parser is tolerant in the ways common tools are: comments may appear
/// anywhere, clauses may span lines, `%`/trailing `0` end-markers used by
/// some generators are accepted, and extra whitespace is ignored. It is
/// strict about structural problems: a missing or malformed header, literal
/// tokens that are not integers, variables above the declared count, more
/// clauses than declared, or an unterminated final clause are errors.
///
/// # Errors
///
/// Returns a [`ParseDimacsError`] carrying the offending line number.
pub fn parse_str(text: &str) -> Result<Cnf, ParseDimacsError> {
    let mut parser = ByteParser::new();
    parser.feed(text.as_bytes())?;
    parser.finish()
}

/// Line-oriented reference parser.
///
/// This is the original implementation, retained as the oracle for the
/// byte scanner: it allocates an owned `String` per line and tokenizes
/// with `split_whitespace`, which made it the measured hot spot on
/// Table-1-scale formulas. [`parse_str`] must accept/reject exactly the
/// same inputs with the same diagnostics; `benches/io.rs` measures the
/// two against each other.
///
/// # Errors
///
/// Returns a [`ParseDimacsError`] carrying the offending line number.
pub fn parse_str_lines(text: &str) -> Result<Cnf, ParseDimacsError> {
    parse_lines(text.lines().map(|l| Ok::<_, io::Error>(l.to_owned()))).map_err(|e| match e {
        ReadError::Parse(p) => p,
        ReadError::Io(_) => unreachable!("string iteration cannot fail"),
    })
}

/// Line-oriented reference reader path: `BufRead::lines` feeding the
/// retained per-line parser — exactly the pre-scanner production path
/// for files (a `String` allocation and UTF-8 validation per line).
/// Kept for `benches/io.rs`; use [`parse_reader`] everywhere else.
///
/// # Errors
///
/// As for [`parse_reader`].
pub fn parse_reader_lines<R: io::BufRead>(reader: R) -> io::Result<Cnf> {
    parse_lines(reader.lines()).map_err(|e| match e {
        ReadError::Io(io) => io,
        ReadError::Parse(p) => io::Error::new(io::ErrorKind::InvalidData, p),
    })
}

/// Parses DIMACS CNF from a reader.
///
/// The reader is consumed through an internal [`READ_BUFFER_BYTES`]-sized
/// block buffer, so there is no benefit to wrapping it in a `BufReader`
/// first (any `Read` works now; the old `BufRead` bound is subsumed).
///
/// [`READ_BUFFER_BYTES`]: crate::READ_BUFFER_BYTES
///
/// # Errors
///
/// Returns [`io::Error`] for read failures; parse failures are converted to
/// `io::Error` with [`io::ErrorKind::InvalidData`] wrapping the
/// [`ParseDimacsError`]. Pass `&mut reader` if you need the reader back.
pub fn parse_reader<R: Read>(mut reader: R) -> io::Result<Cnf> {
    let to_io = |e: ParseDimacsError| io::Error::new(io::ErrorKind::InvalidData, e);
    let mut parser = ByteParser::new();
    let mut buf = vec![0u8; READ_BUFFER_BYTES];
    loop {
        match reader.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => parser.feed(&buf[..n]).map_err(to_io)?,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
        if parser.done {
            break;
        }
    }
    parser.finish().map_err(to_io)
}

/// Reads a DIMACS CNF file from disk.
///
/// # Errors
///
/// Propagates I/O errors; parse failures surface as
/// [`io::ErrorKind::InvalidData`].
pub fn read_file(path: impl AsRef<std::path::Path>) -> io::Result<Cnf> {
    // parse_reader buffers internally (READ_BUFFER_BYTES blocks), so the
    // file handle is passed through unwrapped.
    let file = std::fs::File::open(path)?;
    parse_reader(file)
}

/// Where the scanner stands relative to line structure and chunk
/// boundaries. Only `Clause` is hot; every other mode handles a rare
/// structural byte or a chunk-straddling fragment.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Mode {
    /// Before the first non-whitespace byte of a line.
    LineStart,
    /// Inside a `c` comment, skipping to the newline.
    Comment,
    /// Accumulating a `p` header line into `pending`.
    Header,
    /// Accumulating a `%`-led token into `pending`.
    PercentToken,
    /// A lone `%` token seen; verifying the rest of the line is blank.
    PercentTail,
    /// Lexing clause literals.
    Clause,
    /// A clause token cut off by a chunk boundary, held in `pending`.
    ClauseToken,
}

/// Incremental chunk-fed DIMACS scanner shared by [`parse_str`] (one
/// chunk) and [`parse_reader`] (block-sized chunks).
///
/// Feed byte chunks of any size with [`ByteParser::feed`], then call
/// [`ByteParser::finish`]. Accepts and rejects exactly the inputs the
/// line-oriented reference parser does, with identical diagnostics.
struct ByteParser {
    header: Option<(usize, usize)>,
    cnf: Cnf,
    mode: Mode,
    /// Fragment reassembly across chunk boundaries (header lines,
    /// `%` tokens, clause tokens).
    pending: Vec<u8>,
    /// 1-based number of the line currently being scanned.
    line_no: usize,
    saw_any: bool,
    ended_with_newline: bool,
    /// Set when a lone `%` end-marker is seen; callers stop feeding.
    done: bool,
}

impl ByteParser {
    fn new() -> Self {
        ByteParser {
            header: None,
            cnf: Cnf::new(),
            mode: Mode::LineStart,
            pending: Vec::new(),
            line_no: 1,
            saw_any: false,
            ended_with_newline: false,
            done: false,
        }
    }

    fn feed(&mut self, chunk: &[u8]) -> Result<(), ParseDimacsError> {
        if self.done || chunk.is_empty() {
            return Ok(());
        }
        self.saw_any = true;
        self.ended_with_newline = chunk[chunk.len() - 1] == b'\n';
        let len = chunk.len();
        let mut i = 0usize;
        while i < len {
            match self.mode {
                Mode::LineStart => {
                    while i < len {
                        let b = chunk[i];
                        if b == b'\n' {
                            self.line_no += 1;
                        } else if !b.is_ascii_whitespace() {
                            break;
                        }
                        i += 1;
                    }
                    if i == len {
                        break;
                    }
                    match chunk[i] {
                        b'c' => {
                            self.mode = Mode::Comment;
                            i += 1;
                        }
                        b'p' => {
                            self.pending.clear();
                            self.mode = Mode::Header;
                        }
                        // Some benchmark suites end files with a lone
                        // `%` marker; `%`-led junk is an invalid token.
                        b'%' => {
                            self.pending.clear();
                            self.pending.push(b'%');
                            self.mode = Mode::PercentToken;
                            i += 1;
                        }
                        _ => {
                            if self.header.is_none() {
                                return Err(ParseDimacsError::new(
                                    self.line_no,
                                    ParseDimacsErrorKind::MissingHeader,
                                ));
                            }
                            self.mode = Mode::Clause;
                        }
                    }
                }
                Mode::Comment => match chunk[i..].iter().position(|&b| b == b'\n') {
                    Some(p) => {
                        i += p + 1;
                        self.line_no += 1;
                        self.mode = Mode::LineStart;
                    }
                    None => break,
                },
                Mode::Header => match chunk[i..].iter().position(|&b| b == b'\n') {
                    Some(p) => {
                        self.pending.extend_from_slice(&chunk[i..i + p]);
                        i += p + 1;
                        self.flush_header()?;
                        self.line_no += 1;
                        self.mode = Mode::LineStart;
                    }
                    None => {
                        self.pending.extend_from_slice(&chunk[i..]);
                        break;
                    }
                },
                Mode::PercentToken => {
                    while i < len && !chunk[i].is_ascii_whitespace() {
                        self.pending.push(chunk[i]);
                        i += 1;
                    }
                    if i == len {
                        break;
                    }
                    if self.pending == b"%" {
                        self.mode = Mode::PercentTail;
                    } else {
                        return Err(self.percent_error());
                    }
                }
                Mode::PercentTail => {
                    while i < len {
                        let b = chunk[i];
                        if b == b'\n' {
                            self.done = true;
                            return Ok(());
                        }
                        if !b.is_ascii_whitespace() {
                            return Err(self.percent_error());
                        }
                        i += 1;
                    }
                }
                Mode::Clause => self.scan_clause(chunk, &mut i)?,
                Mode::ClauseToken => {
                    while i < len && !chunk[i].is_ascii_whitespace() {
                        self.pending.push(chunk[i]);
                        i += 1;
                    }
                    if i == len {
                        break;
                    }
                    self.flush_clause_token()?;
                    self.mode = Mode::Clause;
                }
            }
        }
        Ok(())
    }

    /// The hot path: a fused skip-whitespace / lex-integer loop over the
    /// chunk, no token slicing and no second scan per literal. Anything
    /// the fast lexer cannot prove well-formed (no digits, > 19 digits,
    /// trailing junk, out of `i64` range) drops to a cold path that
    /// re-derives the token and defers to [`parse_i64`], so diagnostics
    /// stay identical to the reference parser's.
    fn scan_clause(&mut self, chunk: &[u8], i: &mut usize) -> Result<(), ParseDimacsError> {
        let (declared_vars, _) = self.header.expect("clause scanning requires a header");
        let declared_max = declared_vars as u64;
        // Slice patterns instead of indexed access: the tail shrinks
        // monotonically, so the compiler drops every per-byte bounds
        // check from the hot loops below.
        let mut tail = &chunk[*i..];
        let mut at_line_start = false;
        'tokens: loop {
            loop {
                match tail {
                    [b' ', rest @ ..] => tail = rest,
                    [b'\n', rest @ ..] => {
                        tail = rest;
                        self.line_no += 1;
                        at_line_start = true;
                    }
                    [b, rest @ ..] if b.is_ascii_whitespace() => tail = rest,
                    // Comment / header / `%` lines need the structural
                    // dispatch; consecutive clause lines stay in here.
                    [b'c' | b'p' | b'%', ..] if at_line_start => {
                        self.mode = Mode::LineStart;
                        break 'tokens;
                    }
                    [] => {
                        if at_line_start {
                            self.mode = Mode::LineStart;
                        }
                        break 'tokens;
                    }
                    _ => break,
                }
            }
            at_line_start = false;
            let token = tail;
            let (negative, rest) = match tail {
                [b'-', rest @ ..] => (true, rest),
                [b'+', rest @ ..] => (false, rest),
                _ => (false, tail),
            };
            tail = rest;
            let digits_len = tail.len();
            let mut magnitude: u64 = 0;
            if let Some(&word) = tail.first_chunk::<8>() {
                // SWAR: classify eight bytes at once and parse the digit
                // prefix branchlessly. The per-byte loop's exit branch
                // mispredicts on every literal (digit counts vary); this
                // replaces it with one predictable `n < 8` test.
                let x = u64::from_le_bytes(word) ^ 0x3030_3030_3030_3030;
                let nondigit = ((x & 0x7f7f_7f7f_7f7f_7f7f).wrapping_add(0x7676_7676_7676_7676)
                    | x)
                    & 0x8080_8080_8080_8080;
                let n = (nondigit.trailing_zeros() >> 3) as usize;
                if n > 0 {
                    if n < 8 {
                        // Shift the digit lanes up; vacated low bytes are
                        // zero lanes, i.e. leading zero digits.
                        magnitude = parse_8_digit_lanes(x << ((8 - n) * 8));
                        tail = &tail[n..];
                    } else {
                        magnitude = parse_8_digit_lanes(x);
                        tail = &tail[8..];
                        // 9+ digit literals are rare; finish per byte.
                        while let [b, rest @ ..] = tail {
                            let digit = b.wrapping_sub(b'0');
                            if digit >= 10 {
                                break;
                            }
                            magnitude = magnitude.wrapping_mul(10).wrapping_add(u64::from(digit));
                            tail = rest;
                        }
                    }
                }
            } else {
                // Near the end of the chunk: per-byte fallback.
                while let [b, rest @ ..] = tail {
                    let digit = b.wrapping_sub(b'0');
                    if digit >= 10 {
                        break;
                    }
                    magnitude = magnitude.wrapping_mul(10).wrapping_add(u64::from(digit));
                    tail = rest;
                }
            }
            let Some(&next) = tail.first() else {
                // The token may continue in the next chunk.
                self.pending.clear();
                self.pending.extend_from_slice(token);
                self.mode = Mode::ClauseToken;
                break;
            };
            // ≤ 19 digits cannot wrap a u64, so `magnitude` is exact.
            let digit_count = digits_len - tail.len();
            let fast_ok = digit_count > 0
                && digit_count <= 19
                && next.is_ascii_whitespace()
                && magnitude <= (1u64 << 63) - u64::from(!negative);
            if fast_ok {
                if magnitude == 0 {
                    self.close_clause()?;
                } else if magnitude <= declared_max {
                    // The exact encoding `Lit::from_dimacs` produces
                    // (`(var-1)*2 + sign`), minus its signed round trip.
                    let code = ((magnitude as u32 - 1) << 1) | u32::from(negative);
                    self.cnf.push_covered_lit(Lit::from_code(code as usize));
                } else {
                    return Err(ParseDimacsError::new(
                        self.line_no,
                        ParseDimacsErrorKind::VarOutOfRange {
                            var: magnitude as u32,
                            declared: declared_vars,
                        },
                    ));
                }
            } else {
                let value = match token.iter().position(u8::is_ascii_whitespace) {
                    Some(p) => {
                        tail = &token[p..];
                        parse_i64(&token[..p]).ok_or_else(|| self.invalid_literal(&token[..p]))?
                    }
                    None => {
                        self.pending.clear();
                        self.pending.extend_from_slice(token);
                        self.mode = Mode::ClauseToken;
                        tail = &[];
                        break;
                    }
                };
                self.emit(value)?;
            }
        }
        *i = chunk.len() - tail.len();
        Ok(())
    }

    /// Applies one lexed literal value: `0` closes the current clause,
    /// anything else range-checks and collects. Only the cold lexer
    /// paths route through here; `scan_clause` inlines the equivalent.
    fn emit(&mut self, value: i64) -> Result<(), ParseDimacsError> {
        if value == 0 {
            return self.close_clause();
        }
        let (declared_vars, _) = self.header.expect("clause scanning requires a header");
        let var = value.unsigned_abs();
        if var as usize > declared_vars {
            return Err(ParseDimacsError::new(
                self.line_no,
                ParseDimacsErrorKind::VarOutOfRange {
                    var: var as u32,
                    declared: declared_vars,
                },
            ));
        }
        self.cnf.push_covered_lit(Lit::from_dimacs(value));
        Ok(())
    }

    fn close_clause(&mut self) -> Result<(), ParseDimacsError> {
        let (_, declared_clauses) = self.header.expect("clause scanning requires a header");
        if self.cnf.num_clauses() == declared_clauses {
            return Err(ParseDimacsError::new(
                self.line_no,
                ParseDimacsErrorKind::TooManyClauses {
                    declared: declared_clauses,
                },
            ));
        }
        // Literals were lexed straight into the formula's flat storage
        // (each one range-checked against the declared count the header
        // already ensured), so sealing the clause is a single index push:
        // no per-clause allocation, copy, or `max_var` scan.
        self.cnf.close_covered_clause();
        Ok(())
    }

    fn invalid_literal(&self, token: &[u8]) -> ParseDimacsError {
        ParseDimacsError::new(
            self.line_no,
            ParseDimacsErrorKind::InvalidLiteral(String::from_utf8_lossy(token).into_owned()),
        )
    }

    /// Error for a line whose first token starts with `%` but which is
    /// not the lone end-marker. The reference parser treats it as a
    /// clause line: missing header first, invalid first token otherwise.
    fn percent_error(&self) -> ParseDimacsError {
        if self.header.is_none() {
            ParseDimacsError::new(self.line_no, ParseDimacsErrorKind::MissingHeader)
        } else {
            self.invalid_literal(&self.pending)
        }
    }

    fn flush_clause_token(&mut self) -> Result<(), ParseDimacsError> {
        let token = std::mem::take(&mut self.pending);
        let value = parse_i64(&token).ok_or_else(|| self.invalid_literal(&token))?;
        self.pending = token;
        self.pending.clear();
        self.emit(value)
    }

    fn flush_header(&mut self) -> Result<(), ParseDimacsError> {
        let line_no = self.line_no;
        let line = self.pending.trim_ascii();
        let malformed = || {
            ParseDimacsError::new(
                line_no,
                ParseDimacsErrorKind::MalformedHeader(String::from_utf8_lossy(line).into_owned()),
            )
        };
        // Exactly four whitespace-separated fields: `p cnf <vars> <clauses>`.
        let mut fields: [&[u8]; 4] = [b""; 4];
        let mut count = 0usize;
        let mut rest = line;
        loop {
            rest = skip_ascii_whitespace(rest);
            if rest.is_empty() {
                break;
            }
            let token_len = rest
                .iter()
                .position(u8::is_ascii_whitespace)
                .unwrap_or(rest.len());
            let (token, tail) = rest.split_at(token_len);
            rest = tail;
            if count == 4 {
                return Err(malformed());
            }
            fields[count] = token;
            count += 1;
        }
        if count != 4 || fields[0] != b"p" || fields[1] != b"cnf" {
            return Err(malformed());
        }
        let (Some(vars), Some(clauses)) = (parse_usize(fields[2]), parse_usize(fields[3])) else {
            return Err(malformed());
        };
        self.header = Some((vars, clauses));
        self.cnf.ensure_vars(vars);
        // Bound the speculative reservations: the count is untrusted
        // input until that many clauses actually parse. Literals are
        // sized for the ~4-per-clause shape of typical inputs; larger
        // clauses just grow the flat array normally.
        self.cnf.reserve_clauses(clauses.min(1 << 20));
        self.cnf.reserve_literals(clauses.min(1 << 20) * 4);
        self.pending.clear();
        Ok(())
    }

    /// The line number `str::lines` iteration would have reported last,
    /// used by end-of-input diagnostics.
    fn last_line(&self) -> usize {
        if self.done {
            self.line_no
        } else if !self.saw_any {
            0
        } else if self.ended_with_newline {
            self.line_no - 1
        } else {
            self.line_no
        }
    }

    fn finish(mut self) -> Result<Cnf, ParseDimacsError> {
        match self.mode {
            Mode::Header => self.flush_header()?,
            Mode::PercentToken => {
                if self.pending == b"%" {
                    self.done = true;
                } else {
                    return Err(self.percent_error());
                }
            }
            Mode::PercentTail => self.done = true,
            Mode::ClauseToken => self.flush_clause_token()?,
            Mode::LineStart | Mode::Comment | Mode::Clause => {}
        }
        let last_line = self.last_line();
        if self.header.is_none() {
            return Err(ParseDimacsError::new(
                last_line.max(1),
                ParseDimacsErrorKind::MissingHeader,
            ));
        }
        if self.cnf.has_open_clause() {
            return Err(ParseDimacsError::new(
                last_line,
                ParseDimacsErrorKind::UnterminatedClause,
            ));
        }
        Ok(self.cnf)
    }
}

/// Parses eight ASCII-digit lanes (already XORed with `'0'`, first digit
/// in the lowest byte) into their decimal value, branch-free.
///
/// Pair-combines lanes: digits → two-digit pairs → four-digit groups →
/// the full value. Each step's lane values stay below the lane width, so
/// no cross-lane carries occur.
#[inline]
fn parse_8_digit_lanes(x: u64) -> u64 {
    let pairs = x.wrapping_mul(10).wrapping_add(x >> 8) & 0x00ff_00ff_00ff_00ff;
    let quads = pairs.wrapping_mul(100).wrapping_add(pairs >> 16) & 0x0000_ffff_0000_ffff;
    (quads & 0xffff) * 10_000 + (quads >> 32)
}

fn skip_ascii_whitespace(mut s: &[u8]) -> &[u8] {
    while let [first, rest @ ..] = s {
        if !first.is_ascii_whitespace() {
            break;
        }
        s = rest;
    }
    s
}

/// Hand-rolled signed-integer lexer matching `str::parse::<i64>`: an
/// optional `+`/`-` sign, then one or more ASCII digits, nothing else;
/// out-of-range magnitudes are rejected rather than wrapped.
fn parse_i64(token: &[u8]) -> Option<i64> {
    let (negative, digits) = match token {
        [b'-', rest @ ..] => (true, rest),
        [b'+', rest @ ..] => (false, rest),
        _ => (false, token),
    };
    let magnitude = parse_u64(digits)?;
    if negative {
        // i64::MIN's magnitude is one past i64::MAX.
        if magnitude > (1u64 << 63) {
            return None;
        }
        Some((magnitude as i64).wrapping_neg())
    } else {
        i64::try_from(magnitude).ok()
    }
}

fn parse_u64(digits: &[u8]) -> Option<u64> {
    if digits.is_empty() {
        return None;
    }
    let mut value: u64 = 0;
    for &b in digits {
        let digit = match b {
            b'0'..=b'9' => u64::from(b - b'0'),
            _ => return None,
        };
        value = value.checked_mul(10)?.checked_add(digit)?;
    }
    Some(value)
}

/// Unsigned counterpart used for header fields (`str::parse::<usize>`
/// also accepts a leading `+`).
fn parse_usize(token: &[u8]) -> Option<usize> {
    let digits = match token {
        [b'+', rest @ ..] => rest,
        _ => token,
    };
    usize::try_from(parse_u64(digits)?).ok()
}

enum ReadError {
    Io(io::Error),
    Parse(ParseDimacsError),
}

fn parse_lines<E, I>(lines: I) -> Result<Cnf, ReadError>
where
    E: Into<io::Error>,
    I: Iterator<Item = Result<String, E>>,
{
    let mut header: Option<(usize, usize)> = None;
    let mut cnf = Cnf::new();
    let mut current: Vec<Lit> = Vec::new();
    let mut last_line = 0usize;

    for (idx, line) in lines.enumerate() {
        let line_no = idx + 1;
        last_line = line_no;
        let line = line.map_err(|e| ReadError::Io(e.into()))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('c') {
            continue;
        }
        // Some benchmark suites end files with a lone `%` marker.
        if trimmed == "%" {
            break;
        }
        if trimmed.starts_with('p') {
            let fields: Vec<&str> = trimmed.split_whitespace().collect();
            if fields.len() != 4 || fields[0] != "p" || fields[1] != "cnf" {
                return Err(ReadError::Parse(ParseDimacsError::new(
                    line_no,
                    ParseDimacsErrorKind::MalformedHeader(trimmed.to_owned()),
                )));
            }
            let vars = fields[2].parse::<usize>();
            let clauses = fields[3].parse::<usize>();
            match (vars, clauses) {
                (Ok(v), Ok(c)) => {
                    header = Some((v, c));
                    cnf.ensure_vars(v);
                }
                _ => {
                    return Err(ReadError::Parse(ParseDimacsError::new(
                        line_no,
                        ParseDimacsErrorKind::MalformedHeader(trimmed.to_owned()),
                    )))
                }
            }
            continue;
        }

        let (declared_vars, declared_clauses) = header.ok_or_else(|| {
            ReadError::Parse(ParseDimacsError::new(
                line_no,
                ParseDimacsErrorKind::MissingHeader,
            ))
        })?;

        for token in trimmed.split_whitespace() {
            let value: i64 = token.parse().map_err(|_| {
                ReadError::Parse(ParseDimacsError::new(
                    line_no,
                    ParseDimacsErrorKind::InvalidLiteral(token.to_owned()),
                ))
            })?;
            if value == 0 {
                if cnf.num_clauses() == declared_clauses {
                    return Err(ReadError::Parse(ParseDimacsError::new(
                        line_no,
                        ParseDimacsErrorKind::TooManyClauses {
                            declared: declared_clauses,
                        },
                    )));
                }
                cnf.push_clause(std::mem::take(&mut current).into());
                // Clauses must not silently widen the variable space.
                cnf.ensure_vars(declared_vars);
            } else {
                let var = value.unsigned_abs();
                if var as usize > declared_vars {
                    return Err(ReadError::Parse(ParseDimacsError::new(
                        line_no,
                        ParseDimacsErrorKind::VarOutOfRange {
                            var: var as u32,
                            declared: declared_vars,
                        },
                    )));
                }
                current.push(Lit::from_dimacs(value));
            }
        }
    }

    if header.is_none() {
        return Err(ReadError::Parse(ParseDimacsError::new(
            last_line.max(1),
            ParseDimacsErrorKind::MissingHeader,
        )));
    }
    if !current.is_empty() {
        return Err(ReadError::Parse(ParseDimacsError::new(
            last_line,
            ParseDimacsErrorKind::UnterminatedClause,
        )));
    }
    Ok(cnf)
}

/// Writes a [`Cnf`] in DIMACS format.
///
/// # Errors
///
/// Propagates I/O errors from the writer. Pass `&mut writer` if you need
/// the writer back afterwards.
pub fn write<W: Write>(mut writer: W, cnf: &Cnf) -> io::Result<()> {
    writeln!(writer, "p cnf {} {}", cnf.num_vars(), cnf.num_clauses())?;
    for clause in cnf.clauses() {
        for lit in clause {
            write!(writer, "{} ", lit.to_dimacs())?;
        }
        writeln!(writer, "0")?;
    }
    Ok(())
}

/// Renders a [`Cnf`] as a DIMACS string.
pub fn to_string(cnf: &Cnf) -> String {
    let mut buf = Vec::new();
    write(&mut buf, cnf).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("DIMACS output is ASCII")
}

/// Writes a [`Cnf`] to a file in DIMACS format.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_file(path: impl AsRef<std::path::Path>, cnf: &Cnf) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut writer = io::BufWriter::new(file);
    write(&mut writer, cnf)?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_file() {
        let cnf = parse_str("c comment\np cnf 3 2\n1 -2 0\n3 0\n").unwrap();
        assert_eq!(cnf.num_vars(), 3);
        assert_eq!(cnf.num_clauses(), 2);
        assert_eq!(cnf.clause(0).unwrap().len(), 2);
    }

    #[test]
    fn clauses_may_span_lines_and_share_lines() {
        let cnf = parse_str("p cnf 3 3\n1 2\n3 0 -1 0\n-2 -3 0\n").unwrap();
        assert_eq!(cnf.num_clauses(), 3);
        assert_eq!(cnf.clause(0).unwrap().len(), 3);
        assert_eq!(cnf.clause(1).unwrap().len(), 1);
    }

    #[test]
    fn comments_and_blank_lines_anywhere() {
        let cnf = parse_str("c a\n\np cnf 1 1\nc inner\n1 0\nc end\n").unwrap();
        assert_eq!(cnf.num_clauses(), 1);
    }

    #[test]
    fn percent_terminator_is_accepted() {
        let cnf = parse_str("p cnf 1 1\n1 0\n%\n0\n").unwrap();
        assert_eq!(cnf.num_clauses(), 1);
    }

    #[test]
    fn empty_clause_parses() {
        let cnf = parse_str("p cnf 1 1\n0\n").unwrap();
        assert!(cnf.has_empty_clause());
    }

    #[test]
    fn missing_header_is_an_error() {
        let err = parse_str("1 0\n").unwrap_err();
        assert_eq!(err.line(), 1);
        assert!(err.to_string().contains("header"));
    }

    #[test]
    fn header_only_required_before_clauses() {
        assert!(parse_str("").is_err());
        assert!(parse_str("c nothing\n").is_err());
    }

    #[test]
    fn malformed_header_is_an_error() {
        assert!(parse_str("p cnf nope 2\n").is_err());
        assert!(parse_str("p sat 1 1\n1 0\n").is_err());
        assert!(parse_str("p cnf 1\n1 0\n").is_err());
    }

    #[test]
    fn invalid_literal_token_is_an_error() {
        let err = parse_str("p cnf 1 1\n1 x 0\n").unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(err.to_string().contains("invalid literal"));
    }

    #[test]
    fn unterminated_clause_is_an_error() {
        let err = parse_str("p cnf 2 1\n1 2\n").unwrap_err();
        assert!(err.to_string().contains("not terminated"));
    }

    #[test]
    fn var_above_declared_is_an_error() {
        let err = parse_str("p cnf 2 1\n3 0\n").unwrap_err();
        assert!(err.to_string().contains("exceeds"));
    }

    #[test]
    fn extra_clauses_are_an_error() {
        let err = parse_str("p cnf 1 1\n1 0\n-1 0\n").unwrap_err();
        assert!(err.to_string().contains("more clauses"));
    }

    #[test]
    fn declared_vars_beyond_used_are_kept() {
        let cnf = parse_str("p cnf 10 1\n1 0\n").unwrap();
        assert_eq!(cnf.num_vars(), 10);
        assert_eq!(cnf.num_used_vars(), 1);
    }

    #[test]
    fn roundtrip_through_string() {
        let cnf = parse_str("p cnf 4 3\n1 -2 0\n-3 4 0\n2 0\n").unwrap();
        let text = to_string(&cnf);
        let reparsed = parse_str(&text).unwrap();
        assert_eq!(reparsed, cnf);
    }

    #[test]
    fn reader_and_file_roundtrip() {
        let cnf = parse_str("p cnf 2 1\n1 -2 0\n").unwrap();
        let text = to_string(&cnf);
        let parsed = parse_reader(std::io::Cursor::new(text.as_bytes())).unwrap();
        assert_eq!(parsed, cnf);

        let dir = std::env::temp_dir().join("rescheck-cnf-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.cnf");
        write_file(&path, &cnf).unwrap();
        assert_eq!(read_file(&path).unwrap(), cnf);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn parse_reader_reports_invalid_data() {
        let err = parse_reader(std::io::Cursor::new(b"garbage\n".to_vec())).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    /// Inputs covering every parser decision point, used to pin the byte
    /// scanner to the line-oriented reference implementation.
    const DIFFERENTIAL_INPUTS: &[&str] = &[
        "",
        "c nothing\n",
        "c comment\np cnf 3 2\n1 -2 0\n3 0\n",
        "p cnf 3 3\n1 2\n3 0 -1 0\n-2 -3 0\n",
        "c a\n\np cnf 1 1\nc inner\n1 0\nc end\n",
        "p cnf 1 1\n1 0\n%\n0\n",
        "%\np cnf 1 1\n1 0\n",
        "p cnf 1 1\n1 0\n  % \n",
        "p cnf 1 1\n1 0\n% trailing\n",
        "p cnf 1 1\n0\n",
        "1 0\n",
        "p cnf nope 2\n",
        "p sat 1 1\n1 0\n",
        "p cnf 1\n1 0\n",
        "p  cnf\t1 1\n1 0\n",
        "p cnf 1 1 extra\n1 0\n",
        "p cnf +1 +1\n1 0\n",
        "p cnf 1 1\n1 x 0\n",
        "p cnf 1 1\n%foo\n1 0\n",
        "p cnf 2 1\n1 2\n",
        "p cnf 2 1\n3 0\n",
        "p cnf 1 1\n1 0\n-1 0\n",
        "p cnf 10 1\n1 0\n",
        "p cnf 2 1\r\n1 -2 0\r\n",
        "p cnf 2 1\n  1\t-2  0  \n",
        "p cnf 2 1\n+1 -2 0\n",
        "p cnf 2 1\n--1 0\n",
        "p cnf 2 1\n1- 0\n",
        "p cnf 2 1\n1.5 0\n",
        "p cnf 2 1\n00000000000000000001 -2 0\n",
        "p cnf 2 1\n9223372036854775808 0\n",
        "p cnf 2 1\n-9223372036854775808 0\n",
        "p cnf 2 1\n99999999999999999999999999 0\n",
        "p cnf 2 1\n1 -2 0",
        "p cnf 2 1\n1 -2 0\n\n\n",
        "p cnf 2 2\n1 0\np cnf 2 2\n2 0\n",
    ];

    #[test]
    fn scanner_matches_line_oriented_reference() {
        for input in DIFFERENTIAL_INPUTS {
            let scanner = parse_str(input);
            let reference = parse_str_lines(input);
            assert_eq!(
                scanner, reference,
                "parse_str and parse_str_lines disagree on {input:?}"
            );
        }
    }

    /// Feeds `input` to a [`ByteParser`] in `chunk`-byte pieces.
    fn parse_chunked(input: &str, chunk: usize) -> Result<Cnf, ParseDimacsError> {
        let mut parser = ByteParser::new();
        for piece in input.as_bytes().chunks(chunk) {
            parser.feed(piece)?;
            if parser.done {
                break;
            }
        }
        parser.finish()
    }

    #[test]
    fn chunked_feeding_matches_whole_text_at_any_boundary() {
        // Force tokens, header lines and `%` markers to straddle chunk
        // boundaries: every chunk size from pathological (1 byte) up
        // must yield the same result as the single-chunk parse.
        for input in DIFFERENTIAL_INPUTS {
            let expected = parse_str(input);
            for chunk in [1, 2, 3, 5, 7, 16, 64] {
                assert_eq!(
                    parse_chunked(input, chunk),
                    expected,
                    "chunk size {chunk} diverged on {input:?}"
                );
            }
        }
    }

    #[test]
    fn long_clause_lines_span_chunk_boundaries() {
        let mut text = String::from("p cnf 1000 1\n");
        for v in 1..=1000 {
            text.push_str(&format!("{} ", if v % 2 == 0 { -v } else { v }));
        }
        text.push_str("0\n");
        let expected = parse_str(&text).unwrap();
        for chunk in [1, 16, 4096] {
            assert_eq!(parse_chunked(&text, chunk).unwrap(), expected);
        }
    }

    #[test]
    fn crlf_line_endings_are_stripped() {
        let cnf = parse_reader(std::io::Cursor::new(b"p cnf 2 1\r\n1 -2 0\r\n".to_vec())).unwrap();
        assert_eq!(cnf.num_clauses(), 1);
        assert_eq!(cnf.clause(0).unwrap().len(), 2);
    }

    #[test]
    fn final_line_without_newline_is_parsed() {
        let cnf = parse_reader(std::io::Cursor::new(b"p cnf 2 1\n1 -2 0".to_vec())).unwrap();
        assert_eq!(cnf.num_clauses(), 1);
    }

    #[test]
    fn integer_lexer_matches_str_parse() {
        let tokens: &[&str] = &[
            "0",
            "1",
            "-1",
            "+7",
            "007",
            "-007",
            "",
            "-",
            "+",
            "--1",
            "+-1",
            "1-",
            "1.5",
            "x",
            "9223372036854775807",
            "-9223372036854775807",
            "9223372036854775808",
            "-9223372036854775808",
            "-9223372036854775809",
            "18446744073709551616",
        ];
        for token in tokens {
            assert_eq!(
                parse_i64(token.as_bytes()),
                token.parse::<i64>().ok(),
                "parse_i64 disagrees with str::parse on {token:?}"
            );
            assert_eq!(
                parse_usize(token.as_bytes()),
                token.parse::<usize>().ok(),
                "parse_usize disagrees with str::parse on {token:?}"
            );
        }
    }
}
