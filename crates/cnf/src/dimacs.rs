//! DIMACS CNF reading and writing.
//!
//! The standard exchange format for SAT instances: a header line
//! `p cnf <vars> <clauses>` followed by clauses as whitespace-separated
//! signed integers terminated by `0`. Comment lines start with `c`.
//!
//! # Examples
//!
//! ```
//! use rescheck_cnf::dimacs;
//!
//! let cnf = dimacs::parse_str("c tiny\np cnf 2 2\n1 -2 0\n2 0\n")?;
//! assert_eq!(cnf.num_vars(), 2);
//! assert_eq!(cnf.num_clauses(), 2);
//!
//! let text = dimacs::to_string(&cnf);
//! assert_eq!(dimacs::parse_str(&text)?, cnf);
//! # Ok::<(), rescheck_cnf::ParseDimacsError>(())
//! ```

use crate::error::ParseDimacsErrorKind;
use crate::{Cnf, Lit, ParseDimacsError};
use std::io::{self, BufRead, Write};

/// Parses DIMACS CNF text into a [`Cnf`].
///
/// The parser is tolerant in the ways common tools are: comments may appear
/// anywhere, clauses may span lines, `%`/trailing `0` end-markers used by
/// some generators are accepted, and extra whitespace is ignored. It is
/// strict about structural problems: a missing or malformed header, literal
/// tokens that are not integers, variables above the declared count, more
/// clauses than declared, or an unterminated final clause are errors.
///
/// # Errors
///
/// Returns a [`ParseDimacsError`] carrying the offending line number.
pub fn parse_str(text: &str) -> Result<Cnf, ParseDimacsError> {
    parse_lines(text.lines().map(|l| Ok::<_, io::Error>(l.to_owned()))).map_err(|e| match e {
        ReadError::Parse(p) => p,
        ReadError::Io(_) => unreachable!("string iteration cannot fail"),
    })
}

/// Parses DIMACS CNF from a buffered reader.
///
/// # Errors
///
/// Returns [`io::Error`] for read failures; parse failures are converted to
/// `io::Error` with [`io::ErrorKind::InvalidData`] wrapping the
/// [`ParseDimacsError`]. Pass `&mut reader` if you need the reader back.
pub fn parse_reader<R: BufRead>(reader: R) -> io::Result<Cnf> {
    parse_lines(reader.lines()).map_err(|e| match e {
        ReadError::Io(io) => io,
        ReadError::Parse(p) => io::Error::new(io::ErrorKind::InvalidData, p),
    })
}

/// Reads a DIMACS CNF file from disk.
///
/// # Errors
///
/// Propagates I/O errors; parse failures surface as
/// [`io::ErrorKind::InvalidData`].
pub fn read_file(path: impl AsRef<std::path::Path>) -> io::Result<Cnf> {
    let file = std::fs::File::open(path)?;
    parse_reader(io::BufReader::new(file))
}

enum ReadError {
    Io(io::Error),
    Parse(ParseDimacsError),
}

fn parse_lines<E, I>(lines: I) -> Result<Cnf, ReadError>
where
    E: Into<io::Error>,
    I: Iterator<Item = Result<String, E>>,
{
    let mut header: Option<(usize, usize)> = None;
    let mut cnf = Cnf::new();
    let mut current: Vec<Lit> = Vec::new();
    let mut last_line = 0usize;

    for (idx, line) in lines.enumerate() {
        let line_no = idx + 1;
        last_line = line_no;
        let line = line.map_err(|e| ReadError::Io(e.into()))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('c') {
            continue;
        }
        // Some benchmark suites end files with a lone `%` marker.
        if trimmed == "%" {
            break;
        }
        if trimmed.starts_with('p') {
            let fields: Vec<&str> = trimmed.split_whitespace().collect();
            if fields.len() != 4 || fields[0] != "p" || fields[1] != "cnf" {
                return Err(ReadError::Parse(ParseDimacsError::new(
                    line_no,
                    ParseDimacsErrorKind::MalformedHeader(trimmed.to_owned()),
                )));
            }
            let vars = fields[2].parse::<usize>();
            let clauses = fields[3].parse::<usize>();
            match (vars, clauses) {
                (Ok(v), Ok(c)) => {
                    header = Some((v, c));
                    cnf.ensure_vars(v);
                }
                _ => {
                    return Err(ReadError::Parse(ParseDimacsError::new(
                        line_no,
                        ParseDimacsErrorKind::MalformedHeader(trimmed.to_owned()),
                    )))
                }
            }
            continue;
        }

        let (declared_vars, declared_clauses) = header.ok_or_else(|| {
            ReadError::Parse(ParseDimacsError::new(
                line_no,
                ParseDimacsErrorKind::MissingHeader,
            ))
        })?;

        for token in trimmed.split_whitespace() {
            let value: i64 = token.parse().map_err(|_| {
                ReadError::Parse(ParseDimacsError::new(
                    line_no,
                    ParseDimacsErrorKind::InvalidLiteral(token.to_owned()),
                ))
            })?;
            if value == 0 {
                if cnf.num_clauses() == declared_clauses {
                    return Err(ReadError::Parse(ParseDimacsError::new(
                        line_no,
                        ParseDimacsErrorKind::TooManyClauses {
                            declared: declared_clauses,
                        },
                    )));
                }
                cnf.push_clause(std::mem::take(&mut current).into());
                // Clauses must not silently widen the variable space.
                cnf.ensure_vars(declared_vars);
            } else {
                let var = value.unsigned_abs();
                if var as usize > declared_vars {
                    return Err(ReadError::Parse(ParseDimacsError::new(
                        line_no,
                        ParseDimacsErrorKind::VarOutOfRange {
                            var: var as u32,
                            declared: declared_vars,
                        },
                    )));
                }
                current.push(Lit::from_dimacs(value));
            }
        }
    }

    if header.is_none() {
        return Err(ReadError::Parse(ParseDimacsError::new(
            last_line.max(1),
            ParseDimacsErrorKind::MissingHeader,
        )));
    }
    if !current.is_empty() {
        return Err(ReadError::Parse(ParseDimacsError::new(
            last_line,
            ParseDimacsErrorKind::UnterminatedClause,
        )));
    }
    Ok(cnf)
}

/// Writes a [`Cnf`] in DIMACS format.
///
/// # Errors
///
/// Propagates I/O errors from the writer. Pass `&mut writer` if you need
/// the writer back afterwards.
pub fn write<W: Write>(mut writer: W, cnf: &Cnf) -> io::Result<()> {
    writeln!(writer, "p cnf {} {}", cnf.num_vars(), cnf.num_clauses())?;
    for clause in cnf.clauses() {
        for lit in clause {
            write!(writer, "{} ", lit.to_dimacs())?;
        }
        writeln!(writer, "0")?;
    }
    Ok(())
}

/// Renders a [`Cnf`] as a DIMACS string.
pub fn to_string(cnf: &Cnf) -> String {
    let mut buf = Vec::new();
    write(&mut buf, cnf).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("DIMACS output is ASCII")
}

/// Writes a [`Cnf`] to a file in DIMACS format.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_file(path: impl AsRef<std::path::Path>, cnf: &Cnf) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut writer = io::BufWriter::new(file);
    write(&mut writer, cnf)?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_file() {
        let cnf = parse_str("c comment\np cnf 3 2\n1 -2 0\n3 0\n").unwrap();
        assert_eq!(cnf.num_vars(), 3);
        assert_eq!(cnf.num_clauses(), 2);
        assert_eq!(cnf.clause(0).unwrap().literals().len(), 2);
    }

    #[test]
    fn clauses_may_span_lines_and_share_lines() {
        let cnf = parse_str("p cnf 3 3\n1 2\n3 0 -1 0\n-2 -3 0\n").unwrap();
        assert_eq!(cnf.num_clauses(), 3);
        assert_eq!(cnf.clause(0).unwrap().len(), 3);
        assert_eq!(cnf.clause(1).unwrap().len(), 1);
    }

    #[test]
    fn comments_and_blank_lines_anywhere() {
        let cnf = parse_str("c a\n\np cnf 1 1\nc inner\n1 0\nc end\n").unwrap();
        assert_eq!(cnf.num_clauses(), 1);
    }

    #[test]
    fn percent_terminator_is_accepted() {
        let cnf = parse_str("p cnf 1 1\n1 0\n%\n0\n").unwrap();
        assert_eq!(cnf.num_clauses(), 1);
    }

    #[test]
    fn empty_clause_parses() {
        let cnf = parse_str("p cnf 1 1\n0\n").unwrap();
        assert!(cnf.has_empty_clause());
    }

    #[test]
    fn missing_header_is_an_error() {
        let err = parse_str("1 0\n").unwrap_err();
        assert_eq!(err.line(), 1);
        assert!(err.to_string().contains("header"));
    }

    #[test]
    fn header_only_required_before_clauses() {
        assert!(parse_str("").is_err());
        assert!(parse_str("c nothing\n").is_err());
    }

    #[test]
    fn malformed_header_is_an_error() {
        assert!(parse_str("p cnf nope 2\n").is_err());
        assert!(parse_str("p sat 1 1\n1 0\n").is_err());
        assert!(parse_str("p cnf 1\n1 0\n").is_err());
    }

    #[test]
    fn invalid_literal_token_is_an_error() {
        let err = parse_str("p cnf 1 1\n1 x 0\n").unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(err.to_string().contains("invalid literal"));
    }

    #[test]
    fn unterminated_clause_is_an_error() {
        let err = parse_str("p cnf 2 1\n1 2\n").unwrap_err();
        assert!(err.to_string().contains("not terminated"));
    }

    #[test]
    fn var_above_declared_is_an_error() {
        let err = parse_str("p cnf 2 1\n3 0\n").unwrap_err();
        assert!(err.to_string().contains("exceeds"));
    }

    #[test]
    fn extra_clauses_are_an_error() {
        let err = parse_str("p cnf 1 1\n1 0\n-1 0\n").unwrap_err();
        assert!(err.to_string().contains("more clauses"));
    }

    #[test]
    fn declared_vars_beyond_used_are_kept() {
        let cnf = parse_str("p cnf 10 1\n1 0\n").unwrap();
        assert_eq!(cnf.num_vars(), 10);
        assert_eq!(cnf.num_used_vars(), 1);
    }

    #[test]
    fn roundtrip_through_string() {
        let cnf = parse_str("p cnf 4 3\n1 -2 0\n-3 4 0\n2 0\n").unwrap();
        let text = to_string(&cnf);
        let reparsed = parse_str(&text).unwrap();
        assert_eq!(reparsed, cnf);
    }

    #[test]
    fn reader_and_file_roundtrip() {
        let cnf = parse_str("p cnf 2 1\n1 -2 0\n").unwrap();
        let text = to_string(&cnf);
        let parsed = parse_reader(std::io::Cursor::new(text.as_bytes())).unwrap();
        assert_eq!(parsed, cnf);

        let dir = std::env::temp_dir().join("rescheck-cnf-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.cnf");
        write_file(&path, &cnf).unwrap();
        assert_eq!(read_file(&path).unwrap(), cnf);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn parse_reader_reports_invalid_data() {
        let err = parse_reader(std::io::Cursor::new(b"garbage\n".to_vec())).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
