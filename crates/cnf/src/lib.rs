//! CNF substrate for the `rescheck` SAT-validation toolkit.
//!
//! This crate provides the propositional-logic data model shared by the
//! solver, the resolution checker and the workload generators:
//!
//! - [`Var`] and [`Lit`]: compact variable/literal handles,
//! - [`Clause`]: a disjunction of literals,
//! - [`Cnf`]: a formula in conjunctive normal form,
//! - [`Assignment`] and [`LBool`]: three-valued variable assignments,
//! - [`dimacs`]: DIMACS CNF reading and writing,
//! - [`SplitMix64`]: a tiny deterministic PRNG so workload generators
//!   and randomized tests need no external `rand` dependency.
//!
//! # Examples
//!
//! Build the unsatisfiable formula `(x) (¬x ∨ y) (¬y)` and evaluate it:
//!
//! ```
//! use rescheck_cnf::{Cnf, Lit, Assignment, LBool};
//!
//! let mut cnf = Cnf::new();
//! let x = cnf.fresh_var();
//! let y = cnf.fresh_var();
//! cnf.add_clause([Lit::positive(x)]);
//! cnf.add_clause([Lit::negative(x), Lit::positive(y)]);
//! cnf.add_clause([Lit::negative(y)]);
//!
//! let mut a = Assignment::new(cnf.num_vars());
//! a.assign(Lit::positive(x));
//! a.assign(Lit::positive(y));
//! // The last clause is falsified under x=1, y=1.
//! assert!(!cnf.is_satisfied_by(&a));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Shared read-buffer size for the toolkit's file readers, in bytes.
///
/// The DIMACS scanner and the trace readers (see `rescheck-trace`) refill
/// from disk in blocks of this size. The old per-reader default was
/// `BufReader`'s 8 KiB, which put a syscall roughly every 8 KiB of trace;
/// Table-2-scale traces run to hundreds of megabytes, where a larger
/// block measurably reduces read overhead while staying small enough to
/// be irrelevant next to the checkers' accounted memory.
pub const READ_BUFFER_BYTES: usize = 256 * 1024;

mod assignment;
mod clause;
pub mod dimacs;
mod error;
mod formula;
mod lit;
mod prng;

pub use assignment::{Assignment, LBool};
pub use clause::{evaluate_lits, Clause};
pub use error::ParseDimacsError;
pub use formula::{Cnf, SatStatus};
pub use lit::{Lit, Var};
pub use prng::SplitMix64;
