//! CNF formulas.

use crate::{Assignment, Clause, LBool, Lit, Var};
use std::fmt;

/// The answer a complete SAT procedure gives for a formula.
///
/// # Examples
///
/// ```
/// use rescheck_cnf::SatStatus;
///
/// assert!(SatStatus::Satisfiable.is_sat());
/// assert!(SatStatus::Unsatisfiable.is_unsat());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SatStatus {
    /// Some assignment satisfies the formula.
    Satisfiable,
    /// No assignment satisfies the formula.
    Unsatisfiable,
}

impl SatStatus {
    /// Returns `true` for [`SatStatus::Satisfiable`].
    pub fn is_sat(self) -> bool {
        self == SatStatus::Satisfiable
    }

    /// Returns `true` for [`SatStatus::Unsatisfiable`].
    pub fn is_unsat(self) -> bool {
        self == SatStatus::Unsatisfiable
    }
}

impl fmt::Display for SatStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SatStatus::Satisfiable => f.write_str("SATISFIABLE"),
            SatStatus::Unsatisfiable => f.write_str("UNSATISFIABLE"),
        }
    }
}

/// A propositional formula in conjunctive normal form.
///
/// Clause indices double as the *clause IDs* "agreed to by both the solver
/// and the checker" (paper §3.1): clause `i` is the `i`-th clause added.
///
/// # Examples
///
/// ```
/// use rescheck_cnf::{Cnf, Lit};
///
/// let mut cnf = Cnf::new();
/// let x = cnf.fresh_var();
/// let y = cnf.fresh_var();
/// cnf.add_clause([x.positive(), y.positive()]);
/// cnf.add_clause([x.negative()]);
/// assert_eq!(cnf.num_vars(), 2);
/// assert_eq!(cnf.num_clauses(), 2);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Cnf {
    num_vars: usize,
    /// Every clause's literals, concatenated in clause-ID order.
    ///
    /// Flat storage: one growable buffer instead of a heap allocation
    /// per clause, so building a formula (e.g. in the DIMACS parser) is
    /// allocation-free per clause and iteration is cache-friendly.
    lits: Vec<Lit>,
    /// End offset of clause `i` in `lits`; clause `i` spans
    /// `ends[i - 1]..ends[i]`, with the start of clause 0 read as 0.
    ends: Vec<usize>,
}

impl Cnf {
    /// Creates an empty formula with no variables.
    pub fn new() -> Self {
        Cnf::default()
    }

    /// Creates an empty formula that already declares `num_vars` variables.
    pub fn with_vars(num_vars: usize) -> Self {
        Cnf {
            num_vars,
            lits: Vec::new(),
            ends: Vec::new(),
        }
    }

    /// Number of declared variables.
    ///
    /// This can exceed the number of variables actually mentioned by
    /// clauses, matching the DIMACS header convention the paper notes under
    /// Table 3.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.ends.len()
    }

    /// Returns `true` if the formula has no clauses.
    pub fn is_empty(&self) -> bool {
        self.ends.is_empty()
    }

    /// Total number of literal occurrences across all clauses.
    pub fn num_literals(&self) -> usize {
        self.lits.len()
    }

    /// Allocates and returns a fresh variable.
    pub fn fresh_var(&mut self) -> Var {
        let v = Var::new(self.num_vars);
        self.num_vars += 1;
        v
    }

    /// Allocates `n` fresh variables and returns them.
    pub fn fresh_vars(&mut self, n: usize) -> Vec<Var> {
        (0..n).map(|_| self.fresh_var()).collect()
    }

    /// Declares that variables up to `num_vars` exist.
    ///
    /// Never shrinks the variable count.
    pub fn ensure_vars(&mut self, num_vars: usize) {
        self.num_vars = self.num_vars.max(num_vars);
    }

    /// Reserves capacity for at least `additional` more clauses.
    ///
    /// Lets callers that know the clause count up front (e.g. the DIMACS
    /// parser, from the `p cnf` header) avoid repeated table growth.
    pub fn reserve_clauses(&mut self, additional: usize) {
        self.ends.reserve(additional);
    }

    /// Reserves capacity for at least `additional` more literals across
    /// all future clauses.
    pub fn reserve_literals(&mut self, additional: usize) {
        self.lits.reserve(additional);
    }

    /// Appends a clause and returns its ID (index).
    ///
    /// The variable count is extended to cover every literal in the clause.
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) -> usize {
        let start = self.lits.len();
        self.lits.extend(lits);
        let mut max_var = self.num_vars;
        for lit in &self.lits[start..] {
            max_var = max_var.max(lit.var().index() + 1);
        }
        self.num_vars = max_var;
        self.ends.push(self.lits.len());
        self.ends.len() - 1
    }

    /// Appends an already-built clause and returns its ID (index).
    pub fn push_clause(&mut self, clause: Clause) -> usize {
        self.add_clause(clause.literals().iter().copied())
    }

    /// Appends one literal to the clause currently being built directly
    /// in the flat storage. The caller guarantees the variable is already
    /// covered by [`Cnf::num_vars`] (the DIMACS parser range-checks every
    /// literal against the declared count while lexing), so the per-literal
    /// `max_var` scan of [`Cnf::add_clause`] is skipped. The clause does
    /// not exist until [`Cnf::close_covered_clause`] seals it; a caller
    /// that aborts mid-clause must not hand out the `Cnf`.
    #[inline]
    pub fn push_covered_lit(&mut self, lit: Lit) {
        debug_assert!(
            lit.var().index() < self.num_vars,
            "push_covered_lit requires a literal within num_vars"
        );
        self.lits.push(lit);
    }

    /// Returns `true` if literals have been pushed with
    /// [`Cnf::push_covered_lit`] since the last
    /// [`Cnf::close_covered_clause`].
    pub fn has_open_clause(&self) -> bool {
        self.lits.len() > self.ends.last().copied().unwrap_or(0)
    }

    /// Seals the clause built up by [`Cnf::push_covered_lit`] calls and
    /// returns its ID. Together with the flat storage this makes appending
    /// a parsed clause allocation- and scan-free.
    #[inline]
    pub fn close_covered_clause(&mut self) -> usize {
        self.ends.push(self.lits.len());
        self.ends.len() - 1
    }

    /// Appends a clause given as signed DIMACS literals, returning its ID.
    ///
    /// # Panics
    ///
    /// Panics if any literal is zero.
    pub fn add_dimacs_clause(&mut self, lits: &[i64]) -> usize {
        self.add_clause(lits.iter().map(|&l| Lit::from_dimacs(l)))
    }

    /// Iterates over the clauses as literal slices, in ID order.
    pub fn clauses(&self) -> impl ExactSizeIterator<Item = &[Lit]> {
        let mut start = 0usize;
        self.ends.iter().map(move |&end| {
            let clause = &self.lits[start..end];
            start = end;
            clause
        })
    }

    /// Returns the literals of the clause with the given ID, if it exists.
    pub fn clause(&self, id: usize) -> Option<&[Lit]> {
        let end = *self.ends.get(id)?;
        let start = if id == 0 { 0 } else { self.ends[id - 1] };
        Some(&self.lits[start..end])
    }

    /// Iterates over `(id, clause)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &[Lit])> {
        self.clauses().enumerate()
    }

    /// Returns `true` if some clause is empty (the formula is trivially
    /// unsatisfiable).
    pub fn has_empty_clause(&self) -> bool {
        self.clauses().any(|c| c.is_empty())
    }

    /// Evaluates the formula under a (possibly partial) assignment.
    ///
    /// Returns [`LBool::True`] if every clause is satisfied,
    /// [`LBool::False`] if some clause is falsified, and [`LBool::Undef`]
    /// otherwise.
    pub fn evaluate(&self, assignment: &Assignment) -> LBool {
        let mut undef = false;
        for clause in self.clauses() {
            match crate::clause::evaluate_lits(clause, assignment) {
                LBool::False => return LBool::False,
                LBool::Undef => undef = true,
                LBool::True => {}
            }
        }
        if undef {
            LBool::Undef
        } else {
            LBool::True
        }
    }

    /// Returns `true` if the assignment satisfies every clause.
    ///
    /// This is the paper's "independent check" for SAT claims: linear in
    /// the size of the formula.
    pub fn is_satisfied_by(&self, assignment: &Assignment) -> bool {
        self.evaluate(assignment) == LBool::True
    }

    /// Returns the IDs of all clauses falsified by `assignment`.
    ///
    /// Useful for diagnosing an invalid model claimed by a buggy solver.
    pub fn falsified_clauses(&self, assignment: &Assignment) -> Vec<usize> {
        self.iter()
            .filter(|(_, c)| crate::clause::evaluate_lits(c, assignment) == LBool::False)
            .map(|(id, _)| id)
            .collect()
    }

    /// Number of *distinct* variables actually mentioned by some clause.
    ///
    /// Table 3 of the paper distinguishes declared variables (DIMACS
    /// header) from used variables; this returns the latter.
    pub fn num_used_vars(&self) -> usize {
        let mut used = vec![false; self.num_vars];
        for lit in &self.lits {
            used[lit.var().index()] = true;
        }
        used.iter().filter(|&&u| u).count()
    }

    /// Builds the sub-formula consisting of the clauses whose IDs are in
    /// `ids`, preserving the variable space.
    ///
    /// Unknown IDs are ignored. This is how an extracted unsat core is
    /// turned back into a solvable instance (paper §4, Table 3).
    pub fn subformula(&self, ids: impl IntoIterator<Item = usize>) -> Cnf {
        let mut sub = Cnf::with_vars(self.num_vars);
        for id in ids {
            if let Some(c) = self.clause(id) {
                sub.lits.extend_from_slice(c);
                sub.ends.push(sub.lits.len());
            }
        }
        sub
    }

    /// Exhaustively decides satisfiability by trying all assignments.
    ///
    /// Only usable for tiny formulas (tests and cross-checking); cost is
    /// `O(2^num_vars · |F|)`.
    ///
    /// # Panics
    ///
    /// Panics if the formula has more than 24 variables.
    pub fn brute_force_status(&self) -> SatStatus {
        assert!(
            self.num_vars <= 24,
            "brute force is limited to 24 variables"
        );
        let n = self.num_vars;
        for bits in 0u64..(1u64 << n) {
            let mut a = Assignment::new(n);
            for i in 0..n {
                a.set(Var::new(i), LBool::from(bits >> i & 1 == 1));
            }
            if self.is_satisfied_by(&a) {
                return SatStatus::Satisfiable;
            }
        }
        SatStatus::Unsatisfiable
    }
}

impl FromIterator<Clause> for Cnf {
    fn from_iter<I: IntoIterator<Item = Clause>>(iter: I) -> Self {
        let mut cnf = Cnf::new();
        for clause in iter {
            cnf.push_clause(clause);
        }
        cnf
    }
}

impl Extend<Clause> for Cnf {
    fn extend<I: IntoIterator<Item = Clause>>(&mut self, iter: I) {
        for clause in iter {
            self.push_clause(clause);
        }
    }
}

impl fmt::Display for Cnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "p cnf {} {}", self.num_vars, self.ends.len())?;
        for clause in self.clauses() {
            for lit in clause {
                write!(f, "{} ", lit.to_dimacs())?;
            }
            writeln!(f, "0")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_unsat() -> Cnf {
        // (x) (¬x ∨ y) (¬y)
        let mut cnf = Cnf::new();
        cnf.add_dimacs_clause(&[1]);
        cnf.add_dimacs_clause(&[-1, 2]);
        cnf.add_dimacs_clause(&[-2]);
        cnf
    }

    #[test]
    fn fresh_vars_are_sequential() {
        let mut cnf = Cnf::new();
        let a = cnf.fresh_var();
        let b = cnf.fresh_var();
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(cnf.fresh_vars(3).len(), 3);
        assert_eq!(cnf.num_vars(), 5);
    }

    #[test]
    fn add_clause_extends_vars_and_assigns_ids() {
        let mut cnf = Cnf::new();
        let id0 = cnf.add_dimacs_clause(&[1, -3]);
        let id1 = cnf.add_dimacs_clause(&[2]);
        assert_eq!(id0, 0);
        assert_eq!(id1, 1);
        assert_eq!(cnf.num_vars(), 3);
        assert_eq!(cnf.num_clauses(), 2);
        assert_eq!(cnf.num_literals(), 3);
        assert_eq!(cnf.clause(0).unwrap().len(), 2);
        assert!(cnf.clause(5).is_none());
    }

    #[test]
    fn evaluate_and_satisfaction() {
        let cnf = tiny_unsat();
        let mut a = Assignment::new(2);
        assert_eq!(cnf.evaluate(&a), LBool::Undef);
        a.assign(Lit::from_dimacs(1));
        a.assign(Lit::from_dimacs(2));
        assert_eq!(cnf.evaluate(&a), LBool::False);
        assert!(!cnf.is_satisfied_by(&a));
        assert_eq!(cnf.falsified_clauses(&a), vec![2]);
    }

    #[test]
    fn satisfied_formula() {
        let mut cnf = Cnf::new();
        cnf.add_dimacs_clause(&[1, 2]);
        cnf.add_dimacs_clause(&[-1, 2]);
        let a = Assignment::from_bools(&[false, true]);
        assert!(cnf.is_satisfied_by(&a));
        assert!(cnf.falsified_clauses(&a).is_empty());
    }

    #[test]
    fn empty_formula_is_satisfied_by_anything() {
        let cnf = Cnf::with_vars(3);
        assert!(cnf.is_satisfied_by(&Assignment::new(3)));
        assert!(cnf.is_empty());
    }

    #[test]
    fn has_empty_clause() {
        let mut cnf = Cnf::new();
        assert!(!cnf.has_empty_clause());
        cnf.push_clause(Clause::empty());
        assert!(cnf.has_empty_clause());
    }

    #[test]
    fn used_vars_vs_declared_vars() {
        let mut cnf = Cnf::with_vars(10);
        cnf.add_dimacs_clause(&[1, -3]);
        assert_eq!(cnf.num_vars(), 10);
        assert_eq!(cnf.num_used_vars(), 2);
    }

    #[test]
    fn subformula_selects_by_id() {
        let cnf = tiny_unsat();
        let sub = cnf.subformula([0, 2, 99]);
        assert_eq!(sub.num_clauses(), 2);
        assert_eq!(sub.num_vars(), cnf.num_vars());
        assert!(sub.clause(0).unwrap().contains(&Lit::from_dimacs(1)));
        assert!(sub.clause(1).unwrap().contains(&Lit::from_dimacs(-2)));
    }

    #[test]
    fn brute_force_agrees_on_tiny_instances() {
        assert_eq!(tiny_unsat().brute_force_status(), SatStatus::Unsatisfiable);
        let mut sat = Cnf::new();
        sat.add_dimacs_clause(&[1, 2]);
        sat.add_dimacs_clause(&[-1, -2]);
        assert_eq!(sat.brute_force_status(), SatStatus::Satisfiable);
    }

    #[test]
    fn collect_from_clauses() {
        let cnf: Cnf = vec![Clause::from_dimacs(&[1]), Clause::from_dimacs(&[-1, 2])]
            .into_iter()
            .collect();
        assert_eq!(cnf.num_clauses(), 2);
        assert_eq!(cnf.num_vars(), 2);
    }

    #[test]
    fn display_emits_dimacs() {
        let cnf = tiny_unsat();
        let text = cnf.to_string();
        assert!(text.starts_with("p cnf 2 3\n"));
        assert!(text.contains("-1 2 0\n"));
    }

    #[test]
    fn status_helpers() {
        assert!(SatStatus::Satisfiable.is_sat());
        assert!(!SatStatus::Satisfiable.is_unsat());
        assert_eq!(SatStatus::Unsatisfiable.to_string(), "UNSATISFIABLE");
    }
}
