//! Error types for CNF parsing.

use std::error::Error;
use std::fmt;

/// An error produced while parsing DIMACS CNF text.
///
/// Carries the 1-based line number where the problem was found.
///
/// # Examples
///
/// ```
/// use rescheck_cnf::dimacs;
///
/// let err = dimacs::parse_str("p cnf 1 1\n1 x 0\n").unwrap_err();
/// assert_eq!(err.line(), 2);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseDimacsError {
    line: usize,
    kind: ParseDimacsErrorKind,
}

#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum ParseDimacsErrorKind {
    MissingHeader,
    MalformedHeader(String),
    InvalidLiteral(String),
    UnterminatedClause,
    TooManyClauses { declared: usize },
    VarOutOfRange { var: u32, declared: usize },
}

impl ParseDimacsError {
    pub(crate) fn new(line: usize, kind: ParseDimacsErrorKind) -> Self {
        ParseDimacsError { line, kind }
    }

    /// The 1-based line number where parsing failed.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: ", self.line)?;
        match &self.kind {
            ParseDimacsErrorKind::MissingHeader => {
                f.write_str("missing `p cnf <vars> <clauses>` header")
            }
            ParseDimacsErrorKind::MalformedHeader(s) => {
                write!(f, "malformed problem header {s:?}")
            }
            ParseDimacsErrorKind::InvalidLiteral(s) => {
                write!(f, "invalid literal token {s:?}")
            }
            ParseDimacsErrorKind::UnterminatedClause => {
                f.write_str("last clause is not terminated by 0")
            }
            ParseDimacsErrorKind::TooManyClauses { declared } => {
                write!(f, "more clauses than the {declared} declared in the header")
            }
            ParseDimacsErrorKind::VarOutOfRange { var, declared } => {
                write!(
                    f,
                    "variable {var} exceeds the {declared} variables declared in the header"
                )
            }
        }
    }
}

impl Error for ParseDimacsError {}
