//! Clauses: disjunctions of literals.

use crate::{Assignment, LBool, Lit, Var};
use std::fmt;

/// A clause: a disjunction of literals.
///
/// The empty clause is unsatisfiable; it is the goal of every resolution
/// refutation. Clauses preserve the literal order they were built with —
/// the solver relies on positional watched literals — but expose
/// order-insensitive helpers ([`Clause::normalized`], [`Clause::same_literals`])
/// for the checker, which treats clauses as literal sets.
///
/// # Examples
///
/// ```
/// use rescheck_cnf::{Clause, Lit};
///
/// let c = Clause::from_dimacs(&[1, -2]);
/// assert_eq!(c.len(), 2);
/// assert!(c.contains(Lit::from_dimacs(-2)));
/// assert!(!Clause::empty().is_satisfiable());
/// ```
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Clause {
    lits: Vec<Lit>,
}

impl Clause {
    /// Creates a clause from literals, keeping their order.
    pub fn new(lits: impl IntoIterator<Item = Lit>) -> Self {
        Clause {
            lits: lits.into_iter().collect(),
        }
    }

    /// Creates the empty clause.
    pub fn empty() -> Self {
        Clause::default()
    }

    /// Creates a clause from signed DIMACS literals.
    ///
    /// # Panics
    ///
    /// Panics if any literal is zero.
    pub fn from_dimacs(lits: &[i64]) -> Self {
        Clause::new(lits.iter().map(|&d| Lit::from_dimacs(d)))
    }

    /// Number of literals.
    #[inline]
    pub fn len(&self) -> usize {
        self.lits.len()
    }

    /// Returns `true` for the empty clause.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lits.is_empty()
    }

    /// Returns `true` unless this is the empty clause.
    ///
    /// A non-empty clause can always be satisfied in isolation; the empty
    /// clause never can.
    #[inline]
    pub fn is_satisfiable(&self) -> bool {
        !self.lits.is_empty()
    }

    /// Returns `true` if the clause has exactly one literal.
    #[inline]
    pub fn is_unit(&self) -> bool {
        self.lits.len() == 1
    }

    /// The literals of the clause, in construction order.
    #[inline]
    pub fn literals(&self) -> &[Lit] {
        &self.lits
    }

    /// Mutable access to the literals (the solver reorders watches in place).
    #[inline]
    pub fn literals_mut(&mut self) -> &mut [Lit] {
        &mut self.lits
    }

    /// Iterates over the literals.
    pub fn iter(&self) -> std::slice::Iter<'_, Lit> {
        self.lits.iter()
    }

    /// Returns `true` if the clause contains the literal.
    pub fn contains(&self, lit: Lit) -> bool {
        self.lits.contains(&lit)
    }

    /// Returns `true` if the clause contains either literal of `var`.
    pub fn mentions(&self, var: Var) -> bool {
        self.lits.iter().any(|l| l.var() == var)
    }

    /// Returns `true` if the clause contains both `l` and `¬l` for some `l`.
    pub fn is_tautology(&self) -> bool {
        let mut sorted = self.lits.clone();
        sorted.sort_unstable();
        sorted.windows(2).any(|w| w[0] == !w[1])
    }

    /// Returns a copy with literals sorted and duplicates removed.
    ///
    /// Tautologies are *not* collapsed; both phases remain present so the
    /// caller can still detect them with [`Clause::is_tautology`].
    pub fn normalized(&self) -> Clause {
        let mut lits = self.lits.clone();
        lits.sort_unstable();
        lits.dedup();
        Clause { lits }
    }

    /// Returns `true` if the two clauses contain the same literal sets.
    pub fn same_literals(&self, other: &Clause) -> bool {
        self.normalized().lits == other.normalized().lits
    }

    /// Evaluates the clause under a (possibly partial) assignment.
    ///
    /// Returns [`LBool::True`] if some literal is true, [`LBool::False`] if
    /// all literals are false (a *conflicting* clause), and
    /// [`LBool::Undef`] otherwise.
    pub fn evaluate(&self, assignment: &Assignment) -> LBool {
        evaluate_lits(&self.lits, assignment)
    }

    /// If the clause is unit under `assignment` (exactly one unassigned
    /// literal, all others false), returns that unit literal.
    pub fn unit_literal(&self, assignment: &Assignment) -> Option<Lit> {
        let mut unit = None;
        for &lit in &self.lits {
            match assignment.lit_value(lit) {
                LBool::True => return None,
                LBool::False => {}
                LBool::Undef => {
                    if unit.is_some() {
                        return None;
                    }
                    unit = Some(lit);
                }
            }
        }
        unit
    }

    /// The largest variable index mentioned, if any.
    pub fn max_var(&self) -> Option<Var> {
        self.lits.iter().map(|l| l.var()).max()
    }

    /// Consumes the clause and returns its literal vector.
    pub fn into_literals(self) -> Vec<Lit> {
        self.lits
    }
}

/// Evaluates a clause given as a bare literal slice (e.g. one lent by
/// [`Cnf::clauses`](crate::Cnf::clauses)) under a (possibly partial)
/// assignment: true if some literal is true, false if all are false,
/// undefined otherwise.
pub fn evaluate_lits(lits: &[Lit], assignment: &Assignment) -> LBool {
    let mut undef = false;
    for &lit in lits {
        match assignment.lit_value(lit) {
            LBool::True => return LBool::True,
            LBool::Undef => undef = true,
            LBool::False => {}
        }
    }
    if undef {
        LBool::Undef
    } else {
        LBool::False
    }
}

impl FromIterator<Lit> for Clause {
    fn from_iter<I: IntoIterator<Item = Lit>>(iter: I) -> Self {
        Clause::new(iter)
    }
}

impl Extend<Lit> for Clause {
    fn extend<I: IntoIterator<Item = Lit>>(&mut self, iter: I) {
        self.lits.extend(iter);
    }
}

impl From<Vec<Lit>> for Clause {
    fn from(lits: Vec<Lit>) -> Self {
        Clause { lits }
    }
}

impl<'a> IntoIterator for &'a Clause {
    type Item = &'a Lit;
    type IntoIter = std::slice::Iter<'a, Lit>;

    fn into_iter(self) -> Self::IntoIter {
        self.lits.iter()
    }
}

impl IntoIterator for Clause {
    type Item = Lit;
    type IntoIter = std::vec::IntoIter<Lit>;

    fn into_iter(self) -> Self::IntoIter {
        self.lits.into_iter()
    }
}

impl fmt::Debug for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Clause(")?;
        let mut first = true;
        for lit in &self.lits {
            if !first {
                f.write_str(" ")?;
            }
            first = false;
            write!(f, "{}", lit.to_dimacs())?;
        }
        f.write_str(")")
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.lits.is_empty() {
            return f.write_str("⊥");
        }
        let mut first = true;
        for lit in &self.lits {
            if !first {
                f.write_str(" ∨ ")?;
            }
            first = false;
            write!(f, "{lit}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(d: i64) -> Lit {
        Lit::from_dimacs(d)
    }

    #[test]
    fn empty_clause_properties() {
        let c = Clause::empty();
        assert!(c.is_empty());
        assert!(!c.is_satisfiable());
        assert!(!c.is_unit());
        assert_eq!(c.len(), 0);
        assert_eq!(c.max_var(), None);
        assert_eq!(c.to_string(), "⊥");
    }

    #[test]
    fn unit_and_membership() {
        let c = Clause::from_dimacs(&[3]);
        assert!(c.is_unit());
        assert!(c.contains(lit(3)));
        assert!(!c.contains(lit(-3)));
        assert!(c.mentions(Var::from_dimacs(3)));
        assert!(!c.mentions(Var::from_dimacs(4)));
    }

    #[test]
    fn tautology_detection() {
        assert!(Clause::from_dimacs(&[1, -2, -1]).is_tautology());
        assert!(!Clause::from_dimacs(&[1, -2, 3]).is_tautology());
        assert!(!Clause::empty().is_tautology());
    }

    #[test]
    fn normalized_sorts_and_dedups() {
        let c = Clause::from_dimacs(&[3, -1, 3, 2]);
        let n = c.normalized();
        assert_eq!(n.len(), 3);
        assert!(n.same_literals(&Clause::from_dimacs(&[-1, 2, 3])));
        // Order-insensitive equality.
        assert!(Clause::from_dimacs(&[1, 2]).same_literals(&Clause::from_dimacs(&[2, 1, 1])));
        assert!(!Clause::from_dimacs(&[1, 2]).same_literals(&Clause::from_dimacs(&[1, -2])));
    }

    #[test]
    fn evaluate_three_cases() {
        let c = Clause::from_dimacs(&[1, -2]);
        let mut a = Assignment::new(2);
        assert_eq!(c.evaluate(&a), LBool::Undef);

        a.assign(lit(-1));
        assert_eq!(c.evaluate(&a), LBool::Undef);

        a.assign(lit(2));
        assert_eq!(c.evaluate(&a), LBool::False); // conflicting

        a.assign(lit(-2));
        assert_eq!(c.evaluate(&a), LBool::True);
    }

    #[test]
    fn empty_clause_evaluates_false() {
        let a = Assignment::new(0);
        assert_eq!(Clause::empty().evaluate(&a), LBool::False);
    }

    #[test]
    fn unit_literal_detection() {
        let c = Clause::from_dimacs(&[1, -2, 3]);
        let mut a = Assignment::new(3);
        assert_eq!(c.unit_literal(&a), None); // 3 unassigned

        a.assign(lit(-1));
        a.assign(lit(2));
        assert_eq!(c.unit_literal(&a), Some(lit(3)));

        a.assign(lit(3));
        assert_eq!(c.unit_literal(&a), None); // satisfied
    }

    #[test]
    fn collect_and_extend() {
        let mut c: Clause = [lit(1), lit(2)].into_iter().collect();
        c.extend([lit(-3)]);
        assert_eq!(c.len(), 3);
        let lits: Vec<Lit> = (&c).into_iter().copied().collect();
        assert_eq!(lits, vec![lit(1), lit(2), lit(-3)]);
        assert_eq!(c.clone().into_literals(), lits);
    }

    #[test]
    fn display_and_debug() {
        let c = Clause::from_dimacs(&[1, -2]);
        assert_eq!(c.to_string(), "x1 ∨ ¬x2");
        assert_eq!(format!("{c:?}"), "Clause(1 -2)");
    }

    #[test]
    fn max_var() {
        assert_eq!(
            Clause::from_dimacs(&[1, -5, 3]).max_var(),
            Some(Var::from_dimacs(5))
        );
    }
}
