//! Randomized property tests for the CNF substrate.
//!
//! These were originally `proptest` properties; they are now driven by
//! the in-house [`SplitMix64`] generator so the workspace builds with no
//! network access. Each test sweeps a fixed seed range, so failures are
//! reproducible from the printed seed. The `heavy-tests` feature raises
//! the case count for soak runs.

use rescheck_cnf::{dimacs, Assignment, Clause, Cnf, LBool, Lit, SplitMix64, Var};

const CASES: u64 = if cfg!(feature = "heavy-tests") {
    2048
} else {
    128
};

/// A random clause over `max_vars` variables as DIMACS literals
/// (0 to 7 literals, possibly with duplicates and tautologies).
fn random_dimacs_clause(rng: &mut SplitMix64, max_vars: u32) -> Vec<i64> {
    let len = rng.below(8) as usize;
    (0..len)
        .map(|_| {
            let v = rng.range_u32(1..max_vars + 1) as i64;
            if rng.gen_bool(0.5) {
                v
            } else {
                -v
            }
        })
        .collect()
}

fn random_cnf(rng: &mut SplitMix64, max_vars: u32, max_clauses: u64) -> Cnf {
    let mut cnf = Cnf::with_vars(max_vars as usize);
    for _ in 0..rng.below(max_clauses) {
        let clause = random_dimacs_clause(rng, max_vars);
        cnf.add_dimacs_clause(&clause);
    }
    cnf
}

/// A total assignment over `n` variables from the low bits of `bits`.
fn assignment_from_bits(n: usize, bits: u64) -> Assignment {
    let mut a = Assignment::new(n);
    for i in 0..n {
        a.set(Var::new(i), LBool::from(bits >> i & 1 == 1));
    }
    a
}

#[test]
fn lit_code_roundtrip() {
    let mut rng = SplitMix64::new(0xC0DE);
    for _ in 0..CASES {
        let code = rng.below(1_000_000) as usize;
        let lit = Lit::from_code(code);
        assert_eq!(lit.code(), code);
        assert_eq!((!lit).code() ^ 1, code);
    }
}

#[test]
fn lit_dimacs_roundtrip() {
    let mut rng = SplitMix64::new(0xD1AC5);
    for _ in 0..CASES {
        let magnitude = rng.range_u32(1..100_000) as i64;
        let d = if rng.gen_bool(0.5) {
            magnitude
        } else {
            -magnitude
        };
        assert_eq!(Lit::from_dimacs(d).to_dimacs(), d, "literal {d}");
    }
}

#[test]
fn dimacs_roundtrip() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(seed);
        let cnf = random_cnf(&mut rng, 20, 30);
        let text = dimacs::to_string(&cnf);
        let reparsed = dimacs::parse_str(&text).unwrap();
        assert_eq!(reparsed, cnf, "seed {seed}");
    }
}

#[test]
fn clause_eval_matches_literal_semantics() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(seed);
        let lits = random_dimacs_clause(&mut rng, 8);
        let bits = rng.below(256);
        let clause = Clause::from_dimacs(&lits);
        let a = assignment_from_bits(8, bits);
        let expected = lits.iter().any(|&d| a.satisfies(Lit::from_dimacs(d)));
        assert_eq!(clause.evaluate(&a) == LBool::True, expected, "seed {seed}");
        // Under a total assignment the clause is never Undef.
        assert_ne!(clause.evaluate(&a), LBool::Undef, "seed {seed}");
    }
}

#[test]
fn formula_eval_is_conjunction_of_clauses() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(seed);
        let cnf = random_cnf(&mut rng, 8, 12);
        let bits = rng.below(256);
        let a = assignment_from_bits(8, bits);
        let expected = cnf
            .clauses()
            .all(|c| rescheck_cnf::evaluate_lits(c, &a) == LBool::True);
        assert_eq!(cnf.is_satisfied_by(&a), expected, "seed {seed}");
    }
}

#[test]
fn normalized_preserves_semantics() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(seed);
        let lits = random_dimacs_clause(&mut rng, 8);
        let bits = rng.below(256);
        let clause = Clause::from_dimacs(&lits);
        let norm = clause.normalized();
        let a = assignment_from_bits(8, bits);
        assert_eq!(clause.evaluate(&a), norm.evaluate(&a), "seed {seed}");
        assert!(clause.same_literals(&norm), "seed {seed}");
    }
}

#[test]
fn subformula_of_all_ids_is_identity() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(seed);
        let cnf = random_cnf(&mut rng, 10, 10);
        let sub = cnf.subformula(0..cnf.num_clauses());
        assert_eq!(sub, cnf, "seed {seed}");
    }
}

#[test]
fn unit_literal_is_sound() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(seed);
        let lits = random_dimacs_clause(&mut rng, 6);
        let bits = rng.below(64);
        let mask = rng.below(64);
        let clause = Clause::from_dimacs(&lits);
        let mut a = Assignment::new(6);
        for i in 0..6 {
            if mask >> i & 1 == 1 {
                a.set(Var::new(i), LBool::from(bits >> i & 1 == 1));
            }
        }
        if let Some(unit) = clause.unit_literal(&a) {
            // The reported literal is in the clause and unassigned, and all
            // other literals are false.
            assert!(clause.contains(unit), "seed {seed}");
            assert_eq!(a.lit_value(unit), LBool::Undef, "seed {seed}");
            for &l in clause.literals() {
                if l != unit {
                    assert_eq!(a.lit_value(l), LBool::False, "seed {seed}");
                }
            }
        }
    }
}
