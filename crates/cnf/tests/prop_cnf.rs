//! Property-based tests for the CNF substrate.

use proptest::prelude::*;
use rescheck_cnf::{dimacs, Assignment, Clause, Cnf, LBool, Lit, Var};

/// Strategy: an arbitrary clause over `max_vars` variables.
fn clause_strategy(max_vars: u32) -> impl Strategy<Value = Vec<i64>> {
    prop::collection::vec(
        (1..=max_vars as i64).prop_flat_map(|v| prop_oneof![Just(v), Just(-v)]),
        0..8,
    )
}

fn cnf_strategy(max_vars: u32, max_clauses: usize) -> impl Strategy<Value = Cnf> {
    prop::collection::vec(clause_strategy(max_vars), 0..max_clauses).prop_map(move |clauses| {
        let mut cnf = Cnf::with_vars(max_vars as usize);
        for c in clauses {
            cnf.add_dimacs_clause(&c);
        }
        cnf
    })
}

proptest! {
    #[test]
    fn lit_code_roundtrip(code in 0usize..1_000_000) {
        let lit = Lit::from_code(code);
        prop_assert_eq!(lit.code(), code);
        prop_assert_eq!((!lit).code() ^ 1, code);
    }

    #[test]
    fn lit_dimacs_roundtrip(d in prop_oneof![1i64..100_000, -100_000i64..-1]) {
        prop_assert_eq!(Lit::from_dimacs(d).to_dimacs(), d);
    }

    #[test]
    fn dimacs_roundtrip(cnf in cnf_strategy(20, 30)) {
        let text = dimacs::to_string(&cnf);
        let reparsed = dimacs::parse_str(&text).unwrap();
        prop_assert_eq!(reparsed, cnf);
    }

    #[test]
    fn clause_eval_matches_literal_semantics(
        lits in clause_strategy(8),
        bits in 0u32..256,
    ) {
        let clause = Clause::from_dimacs(&lits);
        let mut a = Assignment::new(8);
        for i in 0..8 {
            a.set(Var::new(i), LBool::from(bits >> i & 1 == 1));
        }
        let expected = lits.iter().any(|&d| {
            let lit = Lit::from_dimacs(d);
            a.satisfies(lit)
        });
        prop_assert_eq!(clause.evaluate(&a) == LBool::True, expected);
        // Under a total assignment the clause is never Undef.
        prop_assert_ne!(clause.evaluate(&a), LBool::Undef);
    }

    #[test]
    fn formula_eval_is_conjunction_of_clauses(
        cnf in cnf_strategy(8, 12),
        bits in 0u32..256,
    ) {
        let mut a = Assignment::new(8);
        for i in 0..8 {
            a.set(Var::new(i), LBool::from(bits >> i & 1 == 1));
        }
        let expected = cnf
            .clauses()
            .iter()
            .all(|c| c.evaluate(&a) == LBool::True);
        prop_assert_eq!(cnf.is_satisfied_by(&a), expected);
    }

    #[test]
    fn normalized_preserves_semantics(
        lits in clause_strategy(8),
        bits in 0u32..256,
    ) {
        let clause = Clause::from_dimacs(&lits);
        let norm = clause.normalized();
        let mut a = Assignment::new(8);
        for i in 0..8 {
            a.set(Var::new(i), LBool::from(bits >> i & 1 == 1));
        }
        prop_assert_eq!(clause.evaluate(&a), norm.evaluate(&a));
        prop_assert!(clause.same_literals(&norm));
    }

    #[test]
    fn subformula_of_all_ids_is_identity(cnf in cnf_strategy(10, 10)) {
        let sub = cnf.subformula(0..cnf.num_clauses());
        prop_assert_eq!(sub, cnf);
    }

    #[test]
    fn unit_literal_is_sound(lits in clause_strategy(6), bits in 0u32..64, mask in 0u32..64) {
        let clause = Clause::from_dimacs(&lits);
        let mut a = Assignment::new(6);
        for i in 0..6 {
            if mask >> i & 1 == 1 {
                a.set(Var::new(i), LBool::from(bits >> i & 1 == 1));
            }
        }
        if let Some(unit) = clause.unit_literal(&a) {
            // The reported literal is in the clause and unassigned, and all
            // other literals are false.
            prop_assert!(clause.contains(unit));
            prop_assert_eq!(a.lit_value(unit), LBool::Undef);
            for &l in clause.literals() {
                if l != unit {
                    prop_assert_eq!(a.lit_value(l), LBool::False);
                }
            }
        }
    }
}
