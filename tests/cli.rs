//! End-to-end tests of the `rescheck` command-line binary.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rescheck"))
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("rescheck-cli-test").join(name);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn gen_solve_check_roundtrip() {
    let dir = tmp_dir("roundtrip");
    let cnf_path = dir.join("php.cnf");
    let trace_path = dir.join("php.rt");

    // gen
    let out = bin().args(["gen", "pigeonhole", "4"]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("p cnf 20 45"));
    std::fs::write(&cnf_path, text).unwrap();

    // solve (exit 20 = UNSAT, competition convention)
    let out = bin()
        .args(["solve"])
        .arg(&cnf_path)
        .arg("--trace")
        .arg(&trace_path)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(20));
    assert!(String::from_utf8_lossy(&out.stdout).contains("s UNSATISFIABLE"));
    assert!(trace_path.exists());

    // check, both strategies
    for strategy in ["df", "bf"] {
        let out = bin()
            .args(["check"])
            .arg(&cnf_path)
            .arg(&trace_path)
            .args(["--strategy", strategy])
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(0), "{strategy}");
        assert!(String::from_utf8_lossy(&out.stdout).contains("VALID UNSAT proof"));
    }
}

#[test]
fn binary_traces_are_smaller_and_check() {
    let dir = tmp_dir("binary");
    let cnf_path = dir.join("p.cnf");
    let ascii = dir.join("p.rt");
    let binary = dir.join("p.rtb");

    let out = bin().args(["gen", "parity", "11"]).output().unwrap();
    std::fs::write(&cnf_path, out.stdout).unwrap();

    let st = bin()
        .arg("solve")
        .arg(&cnf_path)
        .arg("--trace")
        .arg(&ascii)
        .status()
        .unwrap();
    assert_eq!(st.code(), Some(20));
    let st = bin()
        .arg("solve")
        .arg(&cnf_path)
        .arg("--trace")
        .arg(&binary)
        .arg("--binary")
        .status()
        .unwrap();
    assert_eq!(st.code(), Some(20));

    let a = std::fs::metadata(&ascii).unwrap().len();
    let b = std::fs::metadata(&binary).unwrap().len();
    assert!(b < a, "binary {b} < ascii {a}");

    let out = bin()
        .arg("check")
        .arg(&cnf_path)
        .arg(&binary)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
}

#[test]
fn parallel_strategies_check_and_pbf_is_jobs_deterministic() {
    let dir = tmp_dir("parallel");
    let cnf_path = dir.join("php.cnf");
    let trace_path = dir.join("php.rt");
    let out = bin().args(["gen", "pigeonhole", "5"]).output().unwrap();
    std::fs::write(&cnf_path, out.stdout).unwrap();
    let st = bin()
        .arg("solve")
        .arg(&cnf_path)
        .arg("--trace")
        .arg(&trace_path)
        .status()
        .unwrap();
    assert_eq!(st.code(), Some(20));

    // Both parallel strategies validate the genuine proof.
    for strategy in ["portfolio", "pbf"] {
        let out = bin()
            .arg("check")
            .arg(&cnf_path)
            .arg(&trace_path)
            .args(["--strategy", strategy, "--jobs", "4"])
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(0), "{strategy}");
        assert!(String::from_utf8_lossy(&out.stdout).contains("VALID UNSAT proof"));
    }

    // The sharded breadth-first checker reports identical statistics
    // regardless of the worker count (runtime excluded, of course).
    let stats_line = |jobs: &str| -> String {
        let out = bin()
            .arg("check")
            .arg(&cnf_path)
            .arg(&trace_path)
            .args(["--strategy", "pbf", "--jobs", jobs])
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(0), "--jobs {jobs}");
        let text = String::from_utf8_lossy(&out.stdout).to_string();
        let line = text
            .lines()
            .find(|l| l.starts_with("parallel-bf:"))
            .unwrap_or_else(|| panic!("no stats line in {text}"))
            .to_string();
        // Drop the trailing wall-clock figure.
        line.rsplit_once(',').unwrap().0.to_string()
    };
    assert_eq!(stats_line("1"), stats_line("4"));
}

#[test]
fn sat_instances_print_a_model() {
    let dir = tmp_dir("sat");
    let cnf_path = dir.join("sat.cnf");
    std::fs::write(&cnf_path, "p cnf 2 2\n1 2 0\n-1 0\n").unwrap();
    let out = bin().arg("solve").arg(&cnf_path).output().unwrap();
    assert_eq!(out.status.code(), Some(10));
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("s SATISFIABLE"));
    assert!(text.contains("v -1 2 0"));
}

#[test]
fn corrupted_trace_is_reported_invalid() {
    let dir = tmp_dir("invalid");
    let cnf_path = dir.join("u.cnf");
    let trace_path = dir.join("u.rt");
    std::fs::write(&cnf_path, "p cnf 1 2\n1 0\n-1 0\n").unwrap();
    bin()
        .arg("solve")
        .arg(&cnf_path)
        .arg("--trace")
        .arg(&trace_path)
        .status()
        .unwrap();
    // Point the final conflict at a satisfied clause.
    let trace = std::fs::read_to_string(&trace_path).unwrap();
    std::fs::write(&trace_path, trace.replace("f 1", "f 0")).unwrap();
    let out = bin()
        .arg("check")
        .arg(&cnf_path)
        .arg(&trace_path)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stdout).contains("INVALID proof"));
}

#[test]
fn core_command_writes_a_core() {
    let dir = tmp_dir("core");
    let cnf_path = dir.join("r.cnf");
    let core_path = dir.join("core.cnf");
    let out = bin()
        .args(["gen", "routing", "3", "10", "1"])
        .output()
        .unwrap();
    std::fs::write(&cnf_path, out.stdout).unwrap();
    let out = bin()
        .arg("core")
        .arg(&cnf_path)
        .args(["--iterations", "10", "--out"])
        .arg(&core_path)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    assert!(core_path.exists());
    // The extracted core is smaller than the input and still UNSAT.
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("final core:"), "{text}");
    let st = bin().arg("solve").arg(&core_path).status().unwrap();
    assert_eq!(st.code(), Some(20));
}

#[test]
fn trim_produces_a_smaller_trace_that_still_checks() {
    let dir = tmp_dir("trim");
    let cnf_path = dir.join("t.cnf");
    let trace_path = dir.join("t.rt");
    let trimmed_path = dir.join("t.trimmed.rt");
    let out = bin().args(["gen", "pigeonhole", "6"]).output().unwrap();
    std::fs::write(&cnf_path, out.stdout).unwrap();
    bin()
        .arg("solve")
        .arg(&cnf_path)
        .arg("--trace")
        .arg(&trace_path)
        .status()
        .unwrap();
    let out = bin()
        .arg("trim")
        .arg(&cnf_path)
        .arg(&trace_path)
        .arg("--out")
        .arg(&trimmed_path)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let before = std::fs::metadata(&trace_path).unwrap().len();
    let after = std::fs::metadata(&trimmed_path).unwrap().len();
    assert!(after <= before);
    for strategy in ["df", "bf", "hybrid"] {
        let out = bin()
            .arg("check")
            .arg(&cnf_path)
            .arg(&trimmed_path)
            .args(["--strategy", strategy])
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(0), "{strategy}");
    }
}

#[test]
fn stats_prints_proof_metrics() {
    let dir = tmp_dir("stats");
    let cnf_path = dir.join("s.cnf");
    let trace_path = dir.join("s.rt");
    let out = bin().args(["gen", "pigeonhole", "4"]).output().unwrap();
    std::fs::write(&cnf_path, out.stdout).unwrap();
    bin()
        .arg("solve")
        .arg(&cnf_path)
        .arg("--trace")
        .arg(&trace_path)
        .status()
        .unwrap();
    let out = bin()
        .arg("stats")
        .arg(&cnf_path)
        .arg(&trace_path)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("learned clauses needed"), "{text}");
    assert!(text.contains("depth"), "{text}");
}

#[test]
fn check_metrics_writes_schema_conformant_json() {
    let dir = tmp_dir("metrics");
    let cnf_path = dir.join("m.cnf");
    let trace_path = dir.join("m.rt");
    let metrics_path = dir.join("m.json");
    let out = bin().args(["gen", "pigeonhole", "6"]).output().unwrap();
    std::fs::write(&cnf_path, out.stdout).unwrap();
    bin()
        .arg("solve")
        .arg(&cnf_path)
        .arg("--trace")
        .arg(&trace_path)
        .status()
        .unwrap();
    let out = bin()
        .arg("check")
        .arg(&cnf_path)
        .arg(&trace_path)
        .arg("--metrics-out")
        .arg(&metrics_path)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{out:?}");

    let text = std::fs::read_to_string(&metrics_path).unwrap();
    let doc = rescheck_obs::json::parse(&text).expect("metrics file parses as JSON");
    assert_eq!(
        doc.path("schema").and_then(|j| j.as_str()),
        Some("rescheck-metrics-v2")
    );
    assert_eq!(doc.path("command").and_then(|j| j.as_str()), Some("check"));
    // The span tree nests at least three levels deep:
    // check > check:df > check:pass1.
    let spans = doc.path("spans").expect("spans array");
    let Some(rescheck_obs::Json::Array(roots)) = Some(spans) else {
        panic!("spans is not an array: {text}");
    };
    let root = roots
        .iter()
        .find(|s| s.get("name").and_then(|j| j.as_str()) == Some("check"))
        .expect("root check span");
    let Some(rescheck_obs::Json::Array(level2)) = root.get("children") else {
        panic!("root span has no children: {text}");
    };
    let strategy_span = level2
        .iter()
        .find(|s| s.get("name").and_then(|j| j.as_str()) == Some("check:df"))
        .expect("check:df span under the root");
    let Some(rescheck_obs::Json::Array(level3)) = strategy_span.get("children") else {
        panic!("strategy span has no children: {text}");
    };
    assert!(
        level3
            .iter()
            .any(|s| s.get("name").and_then(|j| j.as_str()) == Some("check:pass1")),
        "check:pass1 span under check:df: {text}"
    );
    // Resolution-shape histograms with at least one sample.
    for hist in ["check.resolve.chain_len", "check.resolve.clause_len"] {
        let count = doc
            .path("histograms")
            .and_then(|h| h.get(hist))
            .and_then(|h| h.get("count"))
            .and_then(|j| j.as_u64())
            .unwrap_or_else(|| panic!("missing histogram {hist}: {text}"));
        assert!(count > 0, "{hist} is empty");
    }
    // Phase timers for every checker phase, all positive.
    for phase in ["parse", "check:pass1", "check:resolve", "final-phase"] {
        let secs = doc
            .path("phases")
            .and_then(|p| p.get(phase))
            .and_then(|j| j.as_f64())
            .unwrap_or_else(|| panic!("missing phase timer {phase}: {text}"));
        assert!(secs >= 0.0, "{phase}: {secs}");
    }
    // Checker gauges.
    for gauge in [
        "check.clauses_built",
        "check.resolutions",
        "check.use_count_entries",
        "check.peak_memory_bytes",
    ] {
        let value = doc
            .path("gauges")
            .and_then(|g| g.get(gauge))
            .and_then(|j| j.as_f64())
            .unwrap_or_else(|| panic!("missing gauge {gauge}: {text}"));
        assert!(value > 0.0, "{gauge}: {value}");
    }
    // The check section mirrors CheckStats.
    let check = doc.path("check").expect("check section");
    let built = check.get("clauses_built").and_then(|j| j.as_u64()).unwrap();
    assert!(built > 0);
    let pct = check.get("built_percent").and_then(|j| j.as_f64()).unwrap();
    assert!(pct > 0.0 && pct <= 100.0, "built_percent: {pct}");
    let peak = check
        .get("peak_memory_bytes")
        .and_then(|j| j.as_u64())
        .unwrap();
    assert!(peak > 0);
}

#[test]
fn solve_metrics_and_progress_report_trace_encoding() {
    let dir = tmp_dir("solve-metrics");
    let cnf_path = dir.join("s.cnf");
    let trace_path = dir.join("s.rt");
    let metrics_path = dir.join("s.json");
    let out = bin().args(["gen", "pigeonhole", "5"]).output().unwrap();
    std::fs::write(&cnf_path, out.stdout).unwrap();
    let out = bin()
        .arg("solve")
        .arg(&cnf_path)
        .arg("--trace")
        .arg(&trace_path)
        .arg("--metrics-out")
        .arg(&metrics_path)
        .arg("--progress")
        .env("RESCHECK_LOG", "info")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(20));

    let text = std::fs::read_to_string(&metrics_path).unwrap();
    let doc = rescheck_obs::json::parse(&text).unwrap();
    for phase in ["parse", "solve", "trace-encode"] {
        assert!(
            doc.path("phases").and_then(|p| p.get(phase)).is_some(),
            "missing phase {phase}: {text}"
        );
    }
    let conflicts = doc
        .path("counters")
        .and_then(|c| c.get("solver.conflicts"))
        .and_then(|j| j.as_u64())
        .unwrap();
    assert!(conflicts > 0);
    let bytes = doc
        .path("gauges")
        .and_then(|g| g.get("trace.bytes_written"))
        .and_then(|j| j.as_f64())
        .unwrap();
    assert_eq!(bytes as u64, std::fs::metadata(&trace_path).unwrap().len());
}

#[test]
fn metrics_go_to_stderr_and_stdout_carries_only_the_verdict() {
    let dir = tmp_dir("metrics-stderr");
    let cnf_path = dir.join("v.cnf");
    let trace_path = dir.join("v.rt");
    let out = bin().args(["gen", "pigeonhole", "4"]).output().unwrap();
    std::fs::write(&cnf_path, out.stdout).unwrap();
    bin()
        .arg("solve")
        .arg(&cnf_path)
        .arg("--trace")
        .arg(&trace_path)
        .status()
        .unwrap();
    let out = bin()
        .arg("check")
        .arg(&cnf_path)
        .arg(&trace_path)
        .arg("--metrics")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("VALID UNSAT proof"), "{stdout}");
    assert!(
        !stdout.contains('{') && !stdout.contains("schema"),
        "stdout must carry only the verdict, got: {stdout}"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("rescheck-metrics-v2"),
        "metrics document on stderr: {stderr}"
    );
}

#[test]
fn prom_format_renders_text_exposition() {
    let dir = tmp_dir("prom");
    let cnf_path = dir.join("p.cnf");
    let trace_path = dir.join("p.rt");
    let prom_path = dir.join("m.prom");
    let out = bin().args(["gen", "pigeonhole", "4"]).output().unwrap();
    std::fs::write(&cnf_path, out.stdout).unwrap();
    bin()
        .arg("solve")
        .arg(&cnf_path)
        .arg("--trace")
        .arg(&trace_path)
        .status()
        .unwrap();
    let st = bin()
        .arg("check")
        .arg(&cnf_path)
        .arg(&trace_path)
        .arg("--metrics-out")
        .arg(&prom_path)
        .args(["--metrics-format", "prom"])
        .status()
        .unwrap();
    assert_eq!(st.code(), Some(0));
    let text = std::fs::read_to_string(&prom_path).unwrap();
    assert!(text.contains("# TYPE"), "{text}");
    assert!(
        text.contains("rescheck_check_resolve_chain_len_bucket"),
        "{text}"
    );
    // Every non-empty line is a comment or a `name{labels} value` sample.
    for line in text.lines().filter(|l| !l.is_empty()) {
        assert!(
            line.starts_with('#')
                || line
                    .rsplit_once(' ')
                    .is_some_and(|(_, v)| v.parse::<f64>().is_ok()),
            "malformed exposition line: {line}"
        );
    }

    // An unknown format is a usage error.
    let st = bin()
        .arg("check")
        .arg(&cnf_path)
        .arg(&trace_path)
        .args(["--metrics-format", "yaml"])
        .status()
        .unwrap();
    assert_eq!(st.code(), Some(2));
}

#[test]
fn failed_check_dumps_a_flight_recording() {
    let dir = tmp_dir("flight");
    let cnf_path = dir.join("f.cnf");
    let trace_path = dir.join("f.rt");
    std::fs::write(&cnf_path, "p cnf 1 2\n1 0\n-1 0\n").unwrap();
    bin()
        .arg("solve")
        .arg(&cnf_path)
        .arg("--trace")
        .arg(&trace_path)
        .status()
        .unwrap();
    let trace = std::fs::read_to_string(&trace_path).unwrap();
    std::fs::write(&trace_path, trace.replace("f 1", "f 0")).unwrap();

    let out = bin()
        .arg("check")
        .arg(&cnf_path)
        .arg(&trace_path)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let flight_path = dir.join("f.rt.flight.json");
    assert!(
        flight_path.is_file(),
        "default flight dump next to the trace"
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("flight recorder dump written to"),
        "stderr announces the dump"
    );
    let doc = rescheck_obs::json::parse(&std::fs::read_to_string(&flight_path).unwrap()).unwrap();
    assert_eq!(
        doc.path("schema").and_then(|j| j.as_str()),
        Some("rescheck-flight-v1")
    );
    let Some(rescheck_obs::Json::Array(events)) = doc.get("events") else {
        panic!("flight dump has no events array");
    };
    assert!(!events.is_empty(), "flight ring captured the failing check");

    // --flight-out overrides the destination; a valid check dumps nothing.
    let custom = dir.join("custom-flight.json");
    let st = bin()
        .arg("check")
        .arg(&cnf_path)
        .arg(&trace_path)
        .arg("--flight-out")
        .arg(&custom)
        .status()
        .unwrap();
    assert_eq!(st.code(), Some(1));
    assert!(custom.is_file());
}

#[test]
fn parallel_check_attributes_per_worker_metrics() {
    let dir = tmp_dir("worker-metrics");
    let cnf_path = dir.join("w.cnf");
    let trace_path = dir.join("w.rt");
    let metrics_path = dir.join("w.json");
    let out = bin().args(["gen", "pigeonhole", "7"]).output().unwrap();
    std::fs::write(&cnf_path, out.stdout).unwrap();
    bin()
        .arg("solve")
        .arg(&cnf_path)
        .arg("--trace")
        .arg(&trace_path)
        .status()
        .unwrap();
    let st = bin()
        .arg("check")
        .arg(&cnf_path)
        .arg(&trace_path)
        .args(["--strategy", "pbf", "--jobs", "4"])
        .arg("--metrics-out")
        .arg(&metrics_path)
        .status()
        .unwrap();
    assert_eq!(st.code(), Some(0));
    let text = std::fs::read_to_string(&metrics_path).unwrap();
    let doc = rescheck_obs::json::parse(&text).unwrap();
    let hists = doc.path("histograms").expect("histograms section");
    let wall_count = hists
        .get("check.pass1.worker_wall_us")
        .and_then(|h| h.get("count"))
        .and_then(|j| j.as_u64())
        .unwrap_or_else(|| panic!("missing worker wall histogram: {text}"));
    assert_eq!(wall_count, 4, "one wall-time sample per worker");
    for w in 0..4 {
        assert!(
            doc.path("gauges")
                .and_then(|g| g.get(&format!("check.worker.{w}.pass1.events")))
                .is_some(),
            "missing per-worker gauge for worker {w}: {text}"
        );
    }
}

#[test]
fn usage_errors_exit_2() {
    let out = bin().arg("frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = bin().args(["check", "only-one-arg"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = bin().args(["gen", "nonsense"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn help_prints_usage() {
    let out = bin().arg("--help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}

#[test]
fn mem_limit_reproduces_memory_out() {
    let dir = tmp_dir("memlimit");
    let cnf_path = dir.join("m.cnf");
    let trace_path = dir.join("m.rt");
    let out = bin().args(["gen", "pigeonhole", "5"]).output().unwrap();
    std::fs::write(&cnf_path, out.stdout).unwrap();
    bin()
        .arg("solve")
        .arg(&cnf_path)
        .arg("--trace")
        .arg(&trace_path)
        .status()
        .unwrap();
    let out = bin()
        .arg("check")
        .arg(&cnf_path)
        .arg(&trace_path)
        .args(["--mem-limit", "64"])
        .output()
        .unwrap();
    // Resource exhaustion exits 3, distinct from a proof defect (1).
    assert_eq!(out.status.code(), Some(3));
    assert!(String::from_utf8_lossy(&out.stdout).contains("memory limit"));
}

#[test]
fn check_exit_codes_distinguish_failure_classes() {
    let dir = tmp_dir("exitcodes");
    let cnf_path = dir.join("e.cnf");
    let trace_path = dir.join("e.rt");
    let out = bin().args(["gen", "pigeonhole", "4"]).output().unwrap();
    std::fs::write(&cnf_path, out.stdout).unwrap();
    bin()
        .arg("solve")
        .arg(&cnf_path)
        .arg("--trace")
        .arg(&trace_path)
        .arg("--binary")
        .status()
        .unwrap();

    // 0: valid proof.
    let st = bin()
        .arg("check")
        .arg(&cnf_path)
        .arg(&trace_path)
        .status()
        .unwrap();
    assert_eq!(st.code(), Some(0));

    // 1: proof defect (truncated trace).
    let bytes = std::fs::read(&trace_path).unwrap();
    let cut = dir.join("cut.rt");
    std::fs::write(&cut, &bytes[..bytes.len() / 2]).unwrap();
    let st = bin()
        .arg("check")
        .arg(&cnf_path)
        .arg(&cut)
        .status()
        .unwrap();
    assert_eq!(st.code(), Some(1));

    // 4: missing input file (environmental, not a proof problem).
    let out = bin()
        .arg("check")
        .arg(dir.join("nonexistent.cnf"))
        .arg(&trace_path)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(4));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));

    // 2: usage error.
    let st = bin().arg("check").arg(&cnf_path).status().unwrap();
    assert_eq!(st.code(), Some(2));
}

#[test]
fn gen_seed_flag_matches_positional_seed() {
    let positional = bin()
        .args(["gen", "random", "8", "30", "7"])
        .output()
        .unwrap();
    assert!(positional.status.success());
    let flagged = bin()
        .args(["gen", "random", "8", "30", "--seed", "7"])
        .output()
        .unwrap();
    assert!(flagged.status.success());
    assert_eq!(positional.stdout, flagged.stdout);

    // The flag wins over a contradictory positional seed.
    let override_out = bin()
        .args(["gen", "random", "8", "30", "999", "--seed", "7"])
        .output()
        .unwrap();
    assert_eq!(override_out.stdout, flagged.stdout);

    // Routing accepts it too; deterministic families reject it.
    let routed = bin()
        .args(["gen", "routing", "3", "2", "--seed", "5"])
        .output()
        .unwrap();
    assert!(routed.status.success());
    let rejected = bin()
        .args(["gen", "parity", "5", "--seed", "5"])
        .output()
        .unwrap();
    assert_eq!(rejected.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&rejected.stderr).contains("--seed only applies"));
}

#[test]
fn fuzz_is_deterministic_and_clean_on_smoke_seed() {
    let run = || {
        bin()
            .args(["fuzz", "--seed", "20030310", "--iters", "15"])
            .output()
            .unwrap()
    };
    let a = run();
    assert_eq!(
        a.status.code(),
        Some(0),
        "smoke campaign found a disagreement:\n{}",
        String::from_utf8_lossy(&a.stdout)
    );
    let b = run();
    assert_eq!(a.stdout, b.stdout, "same seed must replay byte-for-byte");
    let text = String::from_utf8_lossy(&a.stdout);
    assert!(text.contains("findings: 0"));
    assert!(text.contains("digest"));
}

#[test]
fn fuzz_injected_bug_writes_shrunk_repro_and_exits_one() {
    let dir = tmp_dir("fuzz-inject");
    let artifacts = dir.join("artifacts");
    let _ = std::fs::remove_dir_all(&artifacts);
    let out = bin()
        .args(["fuzz", "--seed", "7", "--iters", "50", "--quiet"])
        .args(["--inject", "reject-valid"])
        .arg("--artifacts")
        .arg(&artifacts)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("strategy-disagreement"), "{text}");
    assert!(text.contains("repro written to"), "{text}");
    let case: Vec<_> = std::fs::read_dir(&artifacts)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    assert_eq!(case.len(), 1);
    assert!(case[0].join("input.cnf").is_file());
    assert!(case[0].join("repro.json").is_file());
    let json = std::fs::read_to_string(case[0].join("repro.json")).unwrap();
    assert!(json.contains("rescheck-repro-v1"));
}

/// Runs the binary with `input` piped to stdin and the working
/// directory set to `dir`, returning `(exit-code, stdout, stderr)`.
fn run_with_stdin(dir: &PathBuf, args: &[&str], input: &[u8]) -> (Option<i32>, String, String) {
    use std::io::Write;
    use std::process::Stdio;
    let mut child = bin()
        .args(args)
        .current_dir(dir)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child.stdin.take().unwrap().write_all(input).unwrap();
    let out = child.wait_with_output().unwrap();
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).to_string(),
        String::from_utf8_lossy(&out.stderr).to_string(),
    )
}

#[test]
fn check_reads_trace_from_stdin_and_flight_dump_lands_in_cwd() {
    let dir = tmp_dir("stdin-trace");
    let cnf_path = dir.join("u.cnf");
    let trace_path = dir.join("u.rt");
    std::fs::write(&cnf_path, "p cnf 1 2\n1 0\n-1 0\n").unwrap();
    bin()
        .arg("solve")
        .arg(&cnf_path)
        .arg("--trace")
        .arg(&trace_path)
        .status()
        .unwrap();
    let trace = std::fs::read(&trace_path).unwrap();

    // A valid proof piped through `-` checks like the file would.
    let (code, stdout, _) = run_with_stdin(&dir, &["check", "u.cnf", "-"], &trace);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("VALID UNSAT proof"), "{stdout}");

    // A defective proof on stdin still dumps a flight recording — and
    // the default path falls back to the working directory instead of
    // the nonsensical `-.flight.json`.
    let bad = String::from_utf8(trace).unwrap().replace("f 1", "f 0");
    let (code, stdout, stderr) = run_with_stdin(&dir, &["check", "u.cnf", "-"], bad.as_bytes());
    assert_eq!(code, Some(1), "{stdout}");
    assert!(stdout.contains("INVALID proof"), "{stdout}");
    let flight = dir.join("rescheck.flight.json");
    assert!(flight.is_file(), "flight dump in cwd; stderr: {stderr}");
    assert!(!dir.join("-.flight.json").exists());
    let doc = rescheck_obs::json::parse(&std::fs::read_to_string(&flight).unwrap()).unwrap();
    assert_eq!(
        doc.path("schema").and_then(|j| j.as_str()),
        Some("rescheck-flight-v1")
    );
}

#[test]
fn serve_stdin_answers_every_frame_and_winds_down_on_shutdown() {
    let dir = tmp_dir("serve-smoke");
    // SAT, UNSAT, proof defect (trace for a different formula), and
    // garbage — four frames, four verdicts, then a summary.
    let sat = r#"{"id":"sat","cnf":"p cnf 1 1\n1 0\n","model":[1]}"#;
    let out = bin().args(["gen", "pigeonhole", "2"]).output().unwrap();
    let cnf = String::from_utf8(out.stdout).unwrap();
    let cnf_path = dir.join("php.cnf");
    let trace_path = dir.join("php.rt");
    std::fs::write(&cnf_path, &cnf).unwrap();
    bin()
        .arg("solve")
        .arg(&cnf_path)
        .arg("--trace")
        .arg(&trace_path)
        .status()
        .unwrap();
    let trace = std::fs::read_to_string(&trace_path).unwrap();
    let escape = |s: &str| {
        s.replace('\\', "\\\\")
            .replace('\n', "\\n")
            .replace('"', "\\\"")
    };
    let unsat = format!(
        r#"{{"id":"unsat","cnf":"{}","trace":"{}"}}"#,
        escape(&cnf),
        escape(&trace)
    );
    // Raw string: `\n` below reaches the daemon as a JSON newline escape.
    let defect = format!(
        r#"{{"id":"defect","cnf":"p cnf 1 2\n1 0\n-1 0\n","trace":"{}"}}"#,
        escape(&trace)
    );
    // Parseable JSON but an invalid job (no claim evidence), so the
    // malformed verdict can echo the id back.
    let garbage = r#"{"id":"oops","cnf":"p cnf 1 1\n1 0\n"}"#;
    let input = format!("{sat}\n{unsat}\n{defect}\n{garbage}\n{{\"op\":\"shutdown\"}}\n");

    let (code, stdout, stderr) =
        run_with_stdin(&dir, &["serve", "--stdin", "--jobs", "2"], input.as_bytes());
    assert_eq!(code, Some(0), "stdout: {stdout}\nstderr: {stderr}");

    let frames: Vec<rescheck_obs::Json> = stdout
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| rescheck_obs::json::parse(l).unwrap_or_else(|e| panic!("{e}: {l}")))
        .collect();
    let status_for = |id: &str| -> String {
        frames
            .iter()
            .find(|f| f.get("id").and_then(|j| j.as_str()) == Some(id))
            .unwrap_or_else(|| panic!("no verdict for {id}: {stdout}"))
            .get("status")
            .and_then(|j| j.as_str())
            .unwrap()
            .to_string()
    };
    assert_eq!(status_for("sat"), "valid");
    assert_eq!(status_for("unsat"), "valid");
    assert_eq!(status_for("defect"), "proof-defect");
    assert_eq!(status_for("oops"), "malformed");

    let summary = frames
        .iter()
        .find(|f| f.get("rescheck").and_then(|j| j.as_str()) == Some("rescheck-serve-summary-v1"))
        .unwrap_or_else(|| panic!("no summary frame: {stdout}"));
    assert_eq!(
        summary.get("jobs_submitted").and_then(|j| j.as_u64()),
        Some(3)
    );
    assert_eq!(
        summary.get("jobs_completed").and_then(|j| j.as_u64()),
        Some(3)
    );
    assert_eq!(
        summary.get("frames_malformed").and_then(|j| j.as_u64()),
        Some(1)
    );
    assert!(stderr.contains("wound down cleanly"), "{stderr}");
}

#[test]
fn fuzz_metrics_document_counts_iterations() {
    let dir = tmp_dir("fuzz-metrics");
    let metrics = dir.join("fuzz.json");
    let st = bin()
        .args(["fuzz", "--seed", "3", "--iters", "8", "--quiet"])
        .arg("--metrics-out")
        .arg(&metrics)
        .status()
        .unwrap();
    assert_eq!(st.code(), Some(0));
    let doc = std::fs::read_to_string(&metrics).unwrap();
    assert!(doc.contains("rescheck-metrics-v2"));
    assert!(doc.contains("fuzz.iterations"));
    assert!(doc.contains("fuzz.mutants_tested"));
}

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

#[test]
fn export_lrat_and_recheck_agrees_with_native() {
    let dir = tmp_dir("export-lrat");
    let cnf_path = dir.join("php.cnf");
    let trace_path = dir.join("php.rt");
    let lrat_text = dir.join("php.lrat");
    let lrat_binary = dir.join("php.lratb");

    let out = bin().args(["gen", "pigeonhole", "4"]).output().unwrap();
    std::fs::write(&cnf_path, out.stdout).unwrap();
    let st = bin()
        .arg("solve")
        .arg(&cnf_path)
        .arg("--trace")
        .arg(&trace_path)
        .status()
        .unwrap();
    assert_eq!(st.code(), Some(20));

    // Text and binary export both succeed; binary is smaller.
    for (path, extra) in [(&lrat_text, None), (&lrat_binary, Some("--binary"))] {
        let mut cmd = bin();
        cmd.arg("export")
            .arg(&cnf_path)
            .arg(&trace_path)
            .arg("--out")
            .arg(path);
        if let Some(flag) = extra {
            cmd.arg(flag);
        }
        let out = cmd.output().unwrap();
        assert_eq!(out.status.code(), Some(0), "{out:?}");
        assert!(String::from_utf8_lossy(&out.stdout).contains("export:"));
    }
    let text_len = std::fs::metadata(&lrat_text).unwrap().len();
    let binary_len = std::fs::metadata(&lrat_binary).unwrap().len();
    assert!(
        binary_len < text_len,
        "binary {binary_len} < text {text_len}"
    );

    // Both encodings re-ingest and validate under every strategy the
    // native trace validates under.
    for proof in [&lrat_text, &lrat_binary] {
        for strategy in ["df", "bf", "pdag"] {
            let out = bin()
                .arg("check")
                .arg(&cnf_path)
                .arg(proof)
                .args(["--proof-format", "lrat", "--strategy", strategy])
                .output()
                .unwrap();
            assert_eq!(out.status.code(), Some(0), "{strategy}: {out:?}");
            let text = String::from_utf8_lossy(&out.stdout).to_string();
            assert!(text.contains("VALID UNSAT proof"), "{text}");
            assert!(text.contains("ingest:"), "{text}");
        }
    }
}

#[test]
fn drat_fixture_checks_and_missing_deletion_is_a_warning() {
    let out = bin()
        .arg("check")
        .arg(fixture("interop.cnf"))
        .arg(fixture("interop.drat"))
        .args(["--proof-format", "drat"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("VALID UNSAT proof"), "{text}");
    // The deletion of a never-added clause is warned in the stats, not
    // treated as a defect.
    assert!(text.contains("(1 missing"), "{text}");
}

#[test]
fn proof_format_exit_codes_distinguish_defect_from_input_error() {
    let dir = tmp_dir("proof-exit-codes");

    // A well-formed proof that never derives the empty clause is a
    // proof defect: exit 1.
    let out = bin()
        .arg("check")
        .arg(fixture("interop.cnf"))
        .arg(fixture("interop-stall.drat"))
        .args(["--proof-format", "drat"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("INVALID proof"));

    // Unparseable bytes are an input error: exit 4, message on stderr.
    let garbage = dir.join("garbage.drat");
    std::fs::write(&garbage, "this is not a proof\n").unwrap();
    for format in ["drat", "lrat"] {
        let out = bin()
            .arg("check")
            .arg(fixture("interop.cnf"))
            .arg(&garbage)
            .args(["--proof-format", format])
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(4), "{format}: {out:?}");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("error:"),
            "{format}"
        );
    }

    // A missing proof file is also an input error: exit 4.
    let out = bin()
        .arg("check")
        .arg(fixture("interop.cnf"))
        .arg(dir.join("does-not-exist.drat"))
        .args(["--proof-format", "drat"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(4), "{out:?}");
}

#[test]
fn exported_proof_pipes_through_stdin_check() {
    let dir = tmp_dir("proof-stdin");
    let cnf_path = dir.join("par.cnf");
    let trace_path = dir.join("par.rt");
    let out = bin().args(["gen", "parity", "5"]).output().unwrap();
    std::fs::write(&cnf_path, out.stdout).unwrap();
    let st = bin()
        .arg("solve")
        .arg(&cnf_path)
        .arg("--trace")
        .arg(&trace_path)
        .status()
        .unwrap();
    assert_eq!(st.code(), Some(20));

    // Export binary LRAT to stdout, feed it back through `check -`.
    let out = bin()
        .arg("export")
        .arg(&cnf_path)
        .arg(&trace_path)
        .arg("--binary")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    let proof = out.stdout;
    assert!(!proof.is_empty());
    let cnf_str = cnf_path.to_str().unwrap().to_string();
    let (code, stdout, _) = run_with_stdin(
        &dir,
        &["check", &cnf_str, "-", "--proof-format", "lrat"],
        &proof,
    );
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("VALID UNSAT proof"), "{stdout}");
}
