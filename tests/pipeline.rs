//! Cross-crate integration tests: every workload family through the full
//! solve → trace → check → core pipeline, via the umbrella crate's
//! public API only.

use rescheck::prelude::*;
use rescheck::workloads::{self, quick_suite};

#[test]
fn every_quick_suite_family_checks_end_to_end() {
    for instance in quick_suite() {
        let cnf = &instance.cnf;
        let mut solver = Solver::from_cnf(cnf, SolverConfig::default());
        let mut trace = MemorySink::new();
        let result = solver.solve_traced(&mut trace).expect("memory sink");
        assert_eq!(
            result.status(),
            instance.expected.expect("quick suite is labelled"),
            "{}",
            instance.name
        );
        for strategy in [
            Strategy::DepthFirst,
            Strategy::BreadthFirst,
            Strategy::Hybrid,
        ] {
            let outcome = check_unsat_claim(cnf, &trace, strategy, &CheckConfig::default())
                .unwrap_or_else(|e| panic!("{} ({strategy}): {e}", instance.name));
            assert_eq!(
                outcome.stats.learned_in_trace,
                solver.stats().learned_clauses,
                "{}",
                instance.name
            );
        }
        // The depth-first core is itself unsatisfiable.
        let outcome =
            check_unsat_claim(cnf, &trace, Strategy::DepthFirst, &CheckConfig::default()).unwrap();
        let core = outcome.core.unwrap();
        let sub = core.to_subformula(cnf);
        let mut sub_solver = Solver::from_cnf(&sub, SolverConfig::default());
        assert!(sub_solver.solve().is_unsat(), "{} core", instance.name);
    }
}

#[test]
fn satisfiable_twins_verify_their_models() {
    let sat_instances = vec![
        workloads::pigeonhole::satisfiable_instance(4),
        workloads::equiv::buggy_adder_miter(6),
        workloads::routing::routable_channel(3, 8, 5),
        workloads::planning::exact_horizon(4),
        workloads::bmc::barrel_broken(4, 8),
        workloads::pipeline::buggy_pipe(5, 2),
    ];
    for instance in sat_instances {
        let mut solver = Solver::from_cnf(&instance.cnf, SolverConfig::default());
        let result = solver.solve();
        assert!(result.is_sat(), "{}", instance.name);
        check_sat_claim(&instance.cnf, result.model().unwrap())
            .unwrap_or_else(|e| panic!("{}: {e}", instance.name));
    }
}

#[test]
fn dimacs_roundtrip_preserves_solver_behaviour() {
    // Serialize each instance to DIMACS, reparse, and confirm the solver
    // and checkers behave identically (clause IDs must line up).
    for instance in quick_suite().into_iter().take(4) {
        let text = dimacs::to_string(&instance.cnf);
        let reparsed = dimacs::parse_str(&text).expect("own output parses");
        assert_eq!(reparsed, instance.cnf);

        let mut solver = Solver::from_cnf(&reparsed, SolverConfig::default());
        let mut trace = MemorySink::new();
        assert!(solver.solve_traced(&mut trace).unwrap().is_unsat());
        // The trace from the reparsed formula checks against the original.
        check_unsat_claim(
            &instance.cnf,
            &trace,
            Strategy::BreadthFirst,
            &CheckConfig::default(),
        )
        .unwrap();
    }
}

#[test]
fn file_traces_in_both_formats_check() {
    let dir = std::env::temp_dir().join("rescheck-root-it");
    std::fs::create_dir_all(&dir).unwrap();
    let instance = workloads::parity::tseitin_cubic(10);

    let ascii_path = dir.join("cubic.rt");
    {
        let file = std::io::BufWriter::new(std::fs::File::create(&ascii_path).unwrap());
        let mut sink = AsciiWriter::new(file);
        let mut solver = Solver::from_cnf(&instance.cnf, SolverConfig::default());
        assert!(solver.solve_traced(&mut sink).unwrap().is_unsat());
        sink.flush().unwrap();
    }
    let bin_path = dir.join("cubic.rtb");
    {
        let file = std::io::BufWriter::new(std::fs::File::create(&bin_path).unwrap());
        let mut sink = BinaryWriter::new(file).unwrap();
        let mut solver = Solver::from_cnf(&instance.cnf, SolverConfig::default());
        assert!(solver.solve_traced(&mut sink).unwrap().is_unsat());
        sink.flush().unwrap();
    }

    for path in [&ascii_path, &bin_path] {
        let trace = FileTrace::open(path).unwrap();
        for strategy in [
            Strategy::DepthFirst,
            Strategy::BreadthFirst,
            Strategy::Hybrid,
        ] {
            check_unsat_claim(&instance.cnf, &trace, strategy, &CheckConfig::default())
                .unwrap_or_else(|e| panic!("{path:?} {strategy}: {e}"));
        }
    }
    std::fs::remove_file(&ascii_path).ok();
    std::fs::remove_file(&bin_path).ok();
}

#[test]
fn core_minimization_over_families_with_padding() {
    // Embed each family's contradiction among satisfiable padding and
    // confirm minimization strips the padding (Table 3's application).
    let base = workloads::graph_color::clique_instance(3);
    let mut cnf = base.cnf.clone();
    let first_pad = cnf.num_clauses();
    let v0 = cnf.num_vars();
    for i in 0..25 {
        let a = Var::new(v0 + 2 * i);
        let b = Var::new(v0 + 2 * i + 1);
        cnf.add_clause([a.positive(), b.negative()]);
        cnf.add_clause([a.negative(), b.positive()]);
    }
    let result = minimize_core(&cnf, &SolverConfig::default(), 30).unwrap();
    assert!(
        result.core_ids.iter().all(|&id| id < first_pad),
        "padding must not appear in the core"
    );
}
