//! # rescheck — validating SAT solvers with an independent resolution-based checker
//!
//! A from-scratch Rust reproduction of Zhang & Malik, *"Validating SAT
//! Solvers Using an Independent Resolution-Based Checker: Practical
//! Implementations and Other Applications"* (DATE 2003).
//!
//! The toolkit contains everything the paper builds or depends on:
//!
//! - [`cnf`] — the propositional substrate (literals, clauses, DIMACS),
//! - [`solver`] — a Chaff-style CDCL solver that emits *resolve traces*,
//! - [`trace`] — the trace format (ASCII and compact binary),
//! - [`checker`] — the paper's contribution: depth-first and
//!   breadth-first resolution checkers, failure diagnostics, unsat-core
//!   extraction and iterative core minimization,
//! - [`circuit`] — gate-level netlists, Tseitin encoding, miters and BMC
//!   unrolling (the EDA substrate behind the benchmarks),
//! - [`workloads`] — generators for every benchmark family of the
//!   paper's evaluation.
//!
//! # Quickstart
//!
//! ```
//! use rescheck::prelude::*;
//!
//! // A formula the solver will refute…
//! let mut cnf = Cnf::new();
//! cnf.add_dimacs_clause(&[1, 2]);
//! cnf.add_dimacs_clause(&[1, -2]);
//! cnf.add_dimacs_clause(&[-1, 2]);
//! cnf.add_dimacs_clause(&[-1, -2]);
//!
//! // …solving while recording the resolution trace…
//! let mut solver = Solver::from_cnf(&cnf, SolverConfig::default());
//! let mut trace = MemorySink::new();
//! let result = solver.solve_traced(&mut trace)?;
//! assert!(result.is_unsat());
//!
//! // …and an independent checker re-derives the empty clause.
//! let outcome = check_unsat_claim(&cnf, &trace, Strategy::DepthFirst, &CheckConfig::default())?;
//! println!("validated: {}", outcome.stats);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rescheck_checker as checker;
pub use rescheck_circuit as circuit;
pub use rescheck_cnf as cnf;
pub use rescheck_interop as interop;
pub use rescheck_solver as solver;
pub use rescheck_trace as trace;
pub use rescheck_workloads as workloads;

/// The most common imports, re-exported flat.
pub mod prelude {
    pub use rescheck_checker::{
        check_breadth_first, check_depth_first, check_hybrid, check_sat_claim, check_unsat_claim,
        minimize_core, proof_stats, trim_trace, CheckConfig, CheckError, CheckOutcome, ProofStats,
        Strategy, TrimmedTrace, UnsatCore,
    };
    pub use rescheck_cnf::{dimacs, Assignment, Clause, Cnf, LBool, Lit, SatStatus, Var};
    pub use rescheck_solver::{SolveResult, Solver, SolverConfig, SolverStats};
    pub use rescheck_trace::{
        AsciiWriter, BinaryWriter, FileTrace, MemorySink, TraceSink, TraceSource,
    };
}
