//! `rescheck` — command-line front end for solving, checking and core
//! extraction on DIMACS CNF files.
//!
//! ```text
//! rescheck solve <file.cnf> [--trace <out>] [--binary] [--no-learning]
//!                [--no-deletion] [--no-restarts]
//! rescheck check <file.cnf> <trace> [--strategy df|bf|dfd|hybrid|portfolio|pbf|pdag]
//!                [--mem-limit <bytes>] [--jobs <n>]
//!                [--proof-format native|drat|drup|lrat]
//! rescheck export <file.cnf> <trace> [--out <proof.lrat>] [--binary]
//! rescheck core  <file.cnf> [--iterations <n>] [--out <core.cnf>]
//! rescheck gen   <family> [args…]        # writes DIMACS to stdout
//! rescheck serve [--stdin | --listen <addr>] [--jobs <n>]  # daemon mode
//! ```
//!
//! Every command (except `gen`) accepts `--metrics` (print a
//! `rescheck-metrics-v2` document to stderr), `--metrics-out <path>`
//! (write it to a file instead), `--metrics-format json|prom`, and
//! `--progress` to stream heartbeat lines to stderr (filtered by the
//! `RESCHECK_LOG` environment variable). `check` additionally keeps a
//! flight recorder of recent events and dumps it next to the trace
//! whenever the proof is rejected. Stdout carries only the verdict.

use rescheck::prelude::*;
use rescheck::workloads;
use rescheck_bench::report;
use rescheck_obs::{
    Event, FlightRecorder, Json, LogConfig, MetricsSink, Observer, Phase, ProgressReporter, Span,
};
use std::io::Write;
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("solve") => cmd_solve(&args[1..]),
        Some("check") => cmd_check(&args[1..]),
        Some("export") => cmd_export(&args[1..]),
        Some("core") => cmd_core(&args[1..]),
        Some("trim") => cmd_trim(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("gen") => cmd_gen(&args[1..]),
        Some("fuzz") => cmd_fuzz(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            eprint!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown command {other:?}\n{USAGE}").into()),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            // A closed stdout (e.g. piping into `head`) is not an error.
            if let Some(io) = e.downcast_ref::<std::io::Error>() {
                if io.kind() == std::io::ErrorKind::BrokenPipe {
                    return ExitCode::SUCCESS;
                }
            }
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
rescheck — validate SAT solver results with a resolution-based checker

USAGE:
  rescheck solve <file.cnf> [--trace <out>] [--binary]
                 [--no-learning] [--no-deletion] [--no-restarts]
  rescheck check <file.cnf> <trace> [--strategy df|bf|dfd|hybrid|portfolio|pbf|pdag]
                 [--mem-limit <bytes>] [--jobs <n>] [--no-mmap]
                 (pass `-` as <trace> to read the trace from stdin,
                 ASCII or binary, sniffed by magic)
                 (dfd is depth-first with the trace left on disk — same
                 verdict, core and resolution stats as df under a far
                 smaller memory budget; portfolio races df against bf on
                 two threads; pbf is breadth-first with <n> counting
                 workers and a pipelined resolution pass; pdag schedules
                 the resolution pass itself as a dependency DAG across
                 <n> work-stealing workers with bit-identical stats for
                 any worker count — --jobs 0 = auto)
                 (binary file traces are memory-mapped and decoded in
                 place by dfd/pbf/pdag; --no-mmap, or RESCHECK_NO_MMAP=1
                 in the environment, swaps the mapping for a buffered
                 read of the whole file — verdict and every stat are
                 bit-identical either way)
                 [--proof-format native|drat|drup|lrat]
                 (native is the resolve-trace format above; drat/drup and
                 lrat ingest a clausal proof instead, re-deriving a
                 resolution trace by unit propagation / hint replay and
                 then checking it with the chosen strategy. A proof whose
                 RAT steps have no resolution derivation is verified by
                 the ingestion itself and reported as such. Deleting a
                 clause that is not in the database is a warning, not an
                 error — the drat-trim convention.)
  rescheck export <file.cnf> <trace> [--out <proof.lrat>] [--binary]
                 (converts a resolve trace to LRAT: antecedent chains
                 become RUP hint lines, spent clauses get deletion lines;
                 --binary emits the binary LRAT encoding; without --out
                 the proof goes to stdout and the summary to stderr)
  rescheck core  <file.cnf> [--iterations <n>] [--out <core.cnf>]
  rescheck trim  <file.cnf> <trace> --out <trimmed> [--binary]
  rescheck stats <file.cnf> <trace>
  rescheck gen   <family> [args…] [--seed <s>]
                 (families: pigeonhole <holes>,
                 parity <n>, adder <width>, longmult <width>,
                 barrel <positions> <bound>, routing <tracks> <easy> [seed],
                 planning <path> <horizon>, pipe <width> <depth>,
                 atpg <width> <redundancy>, random <vars> <clauses> [seed];
                 --seed overrides the positional seed of the randomized
                 families and is rejected by the deterministic ones)
  rescheck fuzz  --seed <s> --iters <n> [--max-vars <v>] [--mutants <m>]
                 [--conflict-limit <c>] [--shrink-budget <b>]
                 [--max-findings <k>] [--artifacts <dir>] [--quiet]
                 [--inject reject-valid|accept-mutants]
                 (deterministic differential fuzzing: every iteration
                 solves a seeded random instance, cross-validates all seven
                 check strategies, verifies SAT models, and feeds
                 corrupted traces to the checker; disagreements are
                 delta-debugged to a minimal repro under --artifacts.
                 Same seed ⇒ byte-identical campaign, log and repros.)
  rescheck serve [--stdin | --listen <addr>] [--jobs <n>]
                 [--queue-depth <d>] [--mem-total <bytes>]
                 [--timeout-ms <t>] [--max-frame-bytes <b>]
                 (persistent validation daemon: newline-delimited JSON job
                 frames in — {\"id\":…,\"cnf\":…,\"trace\":…,\"strategy\":…} —
                 one verdict frame per job out, each embedding a
                 rescheck-metrics-v2 document. A full queue sheds new jobs
                 with status \"busy\"; a worker panic costs that job an
                 \"internal-error\" verdict and the worker is respawned —
                 the daemon never dies. --mem-total is leased out across
                 concurrent jobs; per-job deadlines verdict as \"timeout\".
                 {\"op\":\"shutdown\"} or stdin EOF winds down with a
                 summary frame. Default front end is --stdin.)

Observability (solve, check, core, trim, stats, fuzz):
  --metrics              print the metrics document to stderr (stdout
                         stays reserved for the verdict)
  --metrics-out <path>   write the metrics document to a file instead
  --metrics-format <f>   json (default): rescheck-metrics-v2 with phase
                         timers, counters, gauges, log-bucketed
                         histograms (check.resolve.*, check.worker.N.*)
                         and the hierarchical span tree;
                         prom: Prometheus text exposition of the
                         counters, gauges, phases and histograms
  --flight-out <path>    (check only) where to dump the flight recorder
                         on failure; default <trace>.flight.json. The
                         dump is a rescheck-flight-v1 ring of the most
                         recent events leading up to the rejection.
  --progress             stream heartbeat lines to stderr; tune with
                         RESCHECK_LOG=level[,heartbeat-conflicts=N]
                         [,heartbeat-events=M][,interval-ms=T]

Exit codes: solve → 10 SAT / 20 UNSAT (competition convention);
check → 0 valid proof, 1 proof defect, 3 resource limit exceeded,
4 input I/O error, 5 internal checker error (worker panic);
export → 0 success, 1 defective trace, 4 input I/O error;
fuzz → 0 clean campaign, 1 disagreements found;
core → 0 on success, 1 on an invalid proof; all → 2 on usage errors.
";

type CliResult = Result<ExitCode, Box<dyn std::error::Error>>;

fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(pos) = args.iter().position(|a| a == flag) {
        args.remove(pos);
        true
    } else {
        false
    }
}

fn take_opt(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    if let Some(pos) = args.iter().position(|a| a == flag) {
        if pos + 1 >= args.len() {
            return Err(format!("{flag} needs a value"));
        }
        args.remove(pos);
        Ok(Some(args.remove(pos)))
    } else {
        Ok(None)
    }
}

/// How the metrics document is rendered.
enum MetricsFormat {
    Json,
    Prom,
}

/// Per-command observability: a metrics registry that always accumulates
/// (it is cheap), an optional stderr progress reporter, and — for
/// `check` — a flight recorder ring of the most recent events.
struct CliObserver {
    metrics: MetricsSink,
    progress: Option<ProgressReporter<std::io::Stderr>>,
    metrics_out: Option<String>,
    metrics_stderr: bool,
    format: MetricsFormat,
    flight: Option<FlightRecorder>,
}

impl CliObserver {
    /// Extracts `--metrics`, `--metrics-out <path>`,
    /// `--metrics-format json|prom` and `--progress` from the argument
    /// list and builds the corresponding observer.
    fn from_args(args: &mut Vec<String>) -> Result<Self, String> {
        let metrics_out = take_opt(args, "--metrics-out")?;
        let metrics_stderr = take_flag(args, "--metrics");
        let format = match take_opt(args, "--metrics-format")?.as_deref() {
            None | Some("json") => MetricsFormat::Json,
            Some("prom") => MetricsFormat::Prom,
            Some(other) => return Err(format!("unknown --metrics-format {other:?} (json|prom)")),
        };
        let progress =
            take_flag(args, "--progress").then(|| ProgressReporter::stderr(LogConfig::from_env()));
        Ok(CliObserver {
            metrics: MetricsSink::new(),
            progress,
            metrics_out,
            metrics_stderr,
            format,
            flight: None,
        })
    }

    /// Writes the metrics document if `--metrics` or `--metrics-out` was
    /// given — to the file, or to stderr so stdout stays reserved for
    /// the verdict. `extend` adds command-specific sections to the JSON
    /// skeleton (the Prometheus rendition carries the registry only).
    fn write_metrics(
        &self,
        command: &str,
        extend: impl FnOnce(&mut Json),
    ) -> Result<(), Box<dyn std::error::Error>> {
        if self.metrics_out.is_none() && !self.metrics_stderr {
            return Ok(());
        }
        let rendered = match self.format {
            MetricsFormat::Prom => rescheck_obs::prom::render(self.metrics.registry()),
            MetricsFormat::Json => {
                let mut doc = report::metrics_document(command, self.metrics.registry());
                extend(&mut doc);
                let mut text = doc.to_pretty_string();
                text.push('\n');
                text
            }
        };
        if let Some(path) = &self.metrics_out {
            std::fs::write(Path::new(path), rendered.as_bytes())?;
            eprintln!("c metrics written to {path}");
        } else {
            eprint!("{rendered}");
        }
        Ok(())
    }

    /// Dumps the flight recorder (if one is attached) to `path`,
    /// best-effort. The default path derives from the trace argument,
    /// which may live in a read-only directory; in that case the dump
    /// falls back to the current directory instead of erroring — a lost
    /// dump must never mask the verdict's exit code.
    fn dump_flight(&self, path: &str) {
        let Some(flight) = &self.flight else {
            return;
        };
        let mut text = flight.to_json().to_pretty_string();
        text.push('\n');
        let first = match std::fs::write(Path::new(path), text.as_bytes()) {
            Ok(()) => {
                eprintln!("c flight recorder dump written to {path}");
                return;
            }
            Err(e) => e,
        };
        let fallback = Path::new(path)
            .file_name()
            .map(|name| name.to_string_lossy().into_owned())
            .unwrap_or_else(|| "rescheck.flight.json".to_string());
        if fallback == path {
            eprintln!("c flight recorder dump lost: {path}: {first}");
            return;
        }
        match std::fs::write(Path::new(&fallback), text.as_bytes()) {
            Ok(()) => eprintln!(
                "c flight recorder dump written to ./{fallback} ({path} unwritable: {first})"
            ),
            Err(second) => {
                eprintln!("c flight recorder dump lost: {path}: {first}; ./{fallback}: {second}")
            }
        }
    }
}

impl Observer for CliObserver {
    fn observe(&mut self, event: &Event<'_>) {
        self.metrics.observe(event);
        if let Some(flight) = &mut self.flight {
            flight.observe(event);
        }
        if let Some(progress) = &mut self.progress {
            progress.observe(event);
        }
    }
}

/// Writes `events` to `path`, returning `(bytes, events)` written.
fn encode_trace_file(
    path: &str,
    binary: bool,
    events: &[rescheck::trace::TraceEvent],
) -> std::io::Result<(u64, u64)> {
    let file = std::io::BufWriter::new(std::fs::File::create(path)?);
    if binary {
        let mut sink = BinaryWriter::new(file)?;
        for e in events {
            sink.event(e)?;
        }
        sink.flush()?;
        Ok((sink.bytes_written(), sink.events_written()))
    } else {
        let mut sink = AsciiWriter::new(file);
        for e in events {
            sink.event(e)?;
        }
        sink.flush()?;
        Ok((sink.bytes_written(), sink.events_written()))
    }
}

fn cmd_solve(rest: &[String]) -> CliResult {
    let mut args = rest.to_vec();
    let mut obs = CliObserver::from_args(&mut args)?;
    let trace_path = take_opt(&mut args, "--trace")?;
    let binary = take_flag(&mut args, "--binary");
    let mut cfg = SolverConfig::default();
    if take_flag(&mut args, "--no-learning") {
        cfg.learning = false;
    }
    if take_flag(&mut args, "--no-deletion") {
        cfg.clause_deletion = false;
    }
    if take_flag(&mut args, "--no-restarts") {
        cfg.restarts = false;
    }
    let [path] = args.as_slice() else {
        return Err("solve needs exactly one CNF file".into());
    };
    let mut root = Span::start("solve", &mut obs);
    let parse = Phase::start("parse", &mut obs);
    let cnf = dimacs::read_file(path)?;
    parse.finish(&mut obs);
    let mut solver = Solver::from_cnf(&cnf, cfg);

    // With `--trace` the events are collected in memory and encoded in a
    // separate phase, so the solve and trace-encode timers stay distinct
    // (mirroring the paper's Table 1 methodology).
    let solve_phase = Phase::start("solve", &mut obs);
    let (result, events) = match &trace_path {
        Some(_) => {
            let mut sink = MemorySink::new();
            let result = solver.solve_observed(&mut sink, &mut obs)?;
            (result, Some(sink.into_events()))
        }
        None => {
            let mut sink = rescheck::trace::NullSink::new();
            (solver.solve_observed(&mut sink, &mut obs)?, None)
        }
    };
    solve_phase.finish(&mut obs);
    report::flush_solver_stats(obs.metrics.registry_mut(), solver.stats());

    if let (Some(out), Some(events)) = (&trace_path, &events) {
        let encode = Phase::start("trace-encode", &mut obs);
        let (bytes, count) = encode_trace_file(out, binary, events)?;
        encode.finish(&mut obs);
        obs.observe(&Event::GaugeSet {
            name: "trace.bytes_written",
            value: bytes as f64,
        });
        obs.observe(&Event::GaugeSet {
            name: "trace.events_written",
            value: count as f64,
        });
    }

    eprintln!("c {}", solver.stats());
    let (answer, code) = match &result {
        SolveResult::Satisfiable(_) => ("SATISFIABLE", ExitCode::from(10)),
        SolveResult::Unsatisfiable => ("UNSATISFIABLE", ExitCode::from(20)),
        SolveResult::Unknown => ("UNKNOWN", ExitCode::SUCCESS),
    };
    root.stop(&mut obs);
    obs.write_metrics("solve", |doc| {
        doc.set("result", answer)
            .set("solver", report::solver_stats_json(solver.stats()));
    })?;
    match result {
        SolveResult::Satisfiable(model) => {
            println!("s SATISFIABLE");
            let mut line = String::from("v");
            for (var, value) in model.iter() {
                if let Some(b) = value.to_bool() {
                    let d = var.to_dimacs() as i64;
                    line.push_str(&format!(" {}", if b { d } else { -d }));
                }
            }
            println!("{line} 0");
        }
        SolveResult::Unsatisfiable => {
            println!("s UNSATISFIABLE");
            if let Some(out) = trace_path {
                eprintln!("c resolve trace written to {out}");
            }
        }
        SolveResult::Unknown => println!("s UNKNOWN"),
    }
    Ok(code)
}

fn cmd_check(rest: &[String]) -> CliResult {
    use rescheck::checker::check_unsat_claim_observed;
    let mut args = rest.to_vec();
    let mut obs = CliObserver::from_args(&mut args)?;
    let strategy = match take_opt(&mut args, "--strategy")?.as_deref() {
        None | Some("df") => Strategy::DepthFirst,
        Some("bf") => Strategy::BreadthFirst,
        Some("hybrid") => Strategy::Hybrid,
        Some("portfolio") => Strategy::Portfolio,
        Some("pbf" | "parallel-bf") => Strategy::ParallelBf,
        Some("pdag" | "parallel-dag") => Strategy::ParallelDag,
        Some("dfd" | "disk-df") => Strategy::DiskDepthFirst,
        Some(other) => {
            return Err(
                format!("unknown strategy {other:?} (df|bf|dfd|hybrid|portfolio|pbf|pdag)").into(),
            )
        }
    };
    let memory_limit = take_opt(&mut args, "--mem-limit")?
        .map(|s| s.parse::<u64>())
        .transpose()?;
    let jobs = take_opt(&mut args, "--jobs")?
        .map(|s| s.parse::<usize>())
        .transpose()?
        .unwrap_or(0);
    let no_mmap = take_flag(&mut args, "--no-mmap") || rescheck::trace::no_mmap_requested();
    let flight_out = take_opt(&mut args, "--flight-out")?;
    let proof_format = match take_opt(&mut args, "--proof-format")?.as_deref() {
        None | Some("native") => None,
        Some(name) => match rescheck::interop::ProofFormat::from_name(name) {
            Some(format) => Some(format),
            None => {
                return Err(format!("unknown proof format {name:?} (native|drat|drup|lrat)").into())
            }
        },
    };
    let [cnf_path, trace_path] = args.as_slice() else {
        return Err("check needs a CNF file and a trace file".into());
    };
    // Checker events are low-rate, so the flight recorder is always on:
    // a rejected proof dumps the events leading up to the defect.
    obs.flight = Some(FlightRecorder::new());
    // Environmental failures (missing/unreadable inputs) exit with 4 so
    // scripts can tell "the proof is bad" from "the file never arrived".
    let open_failed = |what: &str, e: &dyn std::fmt::Display| -> ExitCode {
        eprintln!("error: cannot read {what}: {e}");
        ExitCode::from(4)
    };
    let mut root = Span::start("check", &mut obs);
    let parse = Phase::start("parse", &mut obs);
    let cnf = match dimacs::read_file(cnf_path) {
        Ok(cnf) => cnf,
        Err(e) => return Ok(open_failed(cnf_path, &e)),
    };
    // `-` reads the trace from stdin (format sniffed by magic); anything
    // else is a file consulted in place, by random access where the
    // strategy wants it.
    enum TraceInput {
        File(FileTrace),
        Stdin(MemorySink),
    }
    let mut ingest_stats = None;
    let trace = if let Some(format) = proof_format {
        use rescheck::interop::InteropErrorKind;
        // Clausal proofs (DRAT/LRAT) have no random-access story: read
        // the whole proof, synthesize a resolve trace, check that.
        let bytes = if trace_path == "-" {
            use std::io::Read;
            let mut bytes = Vec::new();
            if let Err(e) = std::io::stdin().lock().read_to_end(&mut bytes) {
                return Ok(open_failed("stdin", &e));
            }
            bytes
        } else {
            match std::fs::read(trace_path) {
                Ok(bytes) => bytes,
                Err(e) => return Ok(open_failed(trace_path, &e)),
            }
        };
        obs.observe(&Event::GaugeSet {
            name: "io.trace.bytes",
            value: bytes.len() as f64,
        });
        match rescheck::interop::ingest_bytes(&cnf, &bytes, format) {
            Ok(report) => {
                if !report.resolution_checkable() {
                    // RAT steps have no resolution derivation, so there
                    // is no trace to hand the strategies: the ingestion
                    // engine's own forward verification is the verdict.
                    parse.finish(&mut obs);
                    root.stop(&mut obs);
                    println!("VALID UNSAT proof (verified by {format} ingestion)");
                    println!(
                        "note: {} RAT step(s) have no resolution derivation; \
                         the synthesized trace was not re-checked",
                        report.stats.rat_steps
                    );
                    println!("{}", report.stats);
                    obs.write_metrics("check", |doc| {
                        doc.set("proof_format", format.to_string().as_str())
                            .set("rat_steps", report.stats.rat_steps);
                    })?;
                    return Ok(ExitCode::SUCCESS);
                }
                ingest_stats = Some(report.stats);
                TraceInput::Stdin(MemorySink::from(report.events))
            }
            Err(e) => {
                return Ok(match e.kind {
                    InteropErrorKind::Input => {
                        eprintln!("error: invalid {format} proof in {trace_path}: {e}");
                        ExitCode::from(4)
                    }
                    InteropErrorKind::ProofDefect => {
                        println!("INVALID proof: {e}");
                        ExitCode::from(1)
                    }
                });
            }
        }
    } else if trace_path == "-" {
        use rescheck::trace::{read_all, TraceFormat, BINARY_MAGIC};
        use std::io::Read;
        let mut bytes = Vec::new();
        if let Err(e) = std::io::stdin().lock().read_to_end(&mut bytes) {
            return Ok(open_failed("stdin", &e));
        }
        obs.observe(&Event::GaugeSet {
            name: "io.trace.bytes",
            value: bytes.len() as f64,
        });
        let format = if bytes.starts_with(&BINARY_MAGIC) {
            TraceFormat::Binary
        } else {
            TraceFormat::Ascii
        };
        match read_all(&bytes[..], format) {
            Ok(events) => TraceInput::Stdin(MemorySink::from(events)),
            Err(e) => return Ok(open_failed("stdin trace", &e)),
        }
    } else {
        match FileTrace::open(trace_path) {
            Ok(trace) => TraceInput::File(trace),
            Err(e) => return Ok(open_failed(trace_path, &e)),
        }
    };
    parse.finish(&mut obs);
    if let Ok(meta) = std::fs::metadata(cnf_path) {
        obs.observe(&Event::GaugeSet {
            name: "io.cnf.bytes",
            value: meta.len() as f64,
        });
    }
    if let TraceInput::File(_) = &trace {
        if let Ok(meta) = std::fs::metadata(trace_path) {
            obs.observe(&Event::GaugeSet {
                name: "io.trace.bytes",
                value: meta.len() as f64,
            });
        }
    }
    let config = CheckConfig {
        memory_limit,
        jobs,
        no_mmap,
        ..CheckConfig::default()
    };
    let result = match &trace {
        TraceInput::File(file) => {
            check_unsat_claim_observed(&cnf, file, strategy, &config, &mut obs)
        }
        TraceInput::Stdin(mem) => {
            check_unsat_claim_observed(&cnf, mem, strategy, &config, &mut obs)
        }
    };
    root.stop(&mut obs);
    match result {
        Ok(outcome) => {
            println!("VALID UNSAT proof");
            if let Some(stats) = &ingest_stats {
                println!("{stats}");
            }
            println!("{}", outcome.stats);
            if let Some(core) = &outcome.core {
                println!(
                    "unsat core: {} of {} clauses, {} variables",
                    core.num_clauses(),
                    cnf.num_clauses(),
                    core.num_vars()
                );
            }
            obs.write_metrics("check", |doc| {
                doc.set("check", report::check_stats_json(&outcome.stats));
                if let Some(core) = &outcome.core {
                    let mut core_json = Json::object();
                    core_json
                        .set("num_clauses", core.num_clauses())
                        .set("num_vars", core.num_vars());
                    doc.set("core", core_json);
                }
            })?;
            Ok(ExitCode::SUCCESS)
        }
        Err(e) => {
            use rescheck::checker::FailureKind;
            let kind = e.kind();
            println!("INVALID proof: {e}");
            // A stdin trace has no adjacent file to name the dump after;
            // use the current directory instead of `-.flight.json`.
            let flight_path = flight_out.unwrap_or_else(|| {
                if trace_path == "-" {
                    "rescheck.flight.json".to_string()
                } else {
                    format!("{trace_path}.flight.json")
                }
            });
            obs.dump_flight(&flight_path);
            obs.write_metrics("check", |doc| {
                doc.set("error", e.to_string().as_str())
                    .set("failure_kind", kind.to_string().as_str());
            })?;
            // Distinct exit codes per failure class: a defective proof
            // (1) is a solver/trace bug, a breached memory budget (3) a
            // retry-with-more-resources, an I/O failure (4) an
            // environment problem, a checker-internal error (5 — e.g. a
            // worker panic surfaced as a structured verdict) a bug in
            // *us*. Cancellation shares 3: the run was stopped by a
            // resource policy, not by the proof.
            Ok(ExitCode::from(match kind {
                FailureKind::ProofDefect => 1,
                FailureKind::ResourceLimit | FailureKind::Cancelled => 3,
                FailureKind::Io => 4,
                FailureKind::Internal => 5,
            }))
        }
    }
}

fn cmd_export(rest: &[String]) -> CliResult {
    use rescheck::interop::{export_lrat, lrat};
    use rescheck::trace::{read_all, TraceFormat, BINARY_MAGIC};
    let mut args = rest.to_vec();
    let mut obs = CliObserver::from_args(&mut args)?;
    let out = take_opt(&mut args, "--out")?;
    let binary = take_flag(&mut args, "--binary");
    match take_opt(&mut args, "--format")?.as_deref() {
        None | Some("lrat") => {}
        Some(other) => return Err(format!("unknown export format {other:?} (lrat)").into()),
    }
    let [cnf_path, trace_path] = args.as_slice() else {
        return Err("export needs a CNF file and a trace file".into());
    };
    let open_failed = |what: &str, e: &dyn std::fmt::Display| -> ExitCode {
        eprintln!("error: cannot read {what}: {e}");
        ExitCode::from(4)
    };
    let mut root = Span::start("export", &mut obs);
    let parse = Phase::start("parse", &mut obs);
    let cnf = match dimacs::read_file(cnf_path) {
        Ok(cnf) => cnf,
        Err(e) => return Ok(open_failed(cnf_path, &e)),
    };
    let bytes = if trace_path == "-" {
        use std::io::Read;
        let mut bytes = Vec::new();
        if let Err(e) = std::io::stdin().lock().read_to_end(&mut bytes) {
            return Ok(open_failed("stdin", &e));
        }
        bytes
    } else {
        match std::fs::read(trace_path) {
            Ok(bytes) => bytes,
            Err(e) => return Ok(open_failed(trace_path, &e)),
        }
    };
    let format = if bytes.starts_with(&BINARY_MAGIC) {
        TraceFormat::Binary
    } else {
        TraceFormat::Ascii
    };
    let events = match read_all(&bytes[..], format) {
        Ok(events) => events,
        Err(e) => return Ok(open_failed("trace", &e)),
    };
    parse.finish(&mut obs);
    let convert = Phase::start("export:convert", &mut obs);
    let report = match export_lrat(&cnf, &events) {
        Ok(report) => report,
        Err(e) => {
            // The trace cannot be folded into a proof — same exit code
            // as a rejected proof in `check`: the trace is defective.
            println!("INVALID trace: {e}");
            return Ok(ExitCode::from(1));
        }
    };
    convert.finish(&mut obs);
    let proof = if binary {
        lrat::write_binary(&report.steps)
    } else {
        let mut text = Vec::new();
        lrat::write_text(&mut text, &report.steps)?;
        text
    };
    obs.observe(&Event::GaugeSet {
        name: "io.proof.bytes",
        value: proof.len() as f64,
    });
    root.stop(&mut obs);
    // Without --out the proof itself occupies stdout, so the summary
    // moves to stderr.
    match &out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &proof) {
                eprintln!("error: cannot write {path}: {e}");
                return Ok(ExitCode::from(4));
            }
            println!("exported LRAT proof to {path} ({} bytes)", proof.len());
            println!("{}", report.stats);
        }
        None => {
            std::io::stdout().lock().write_all(&proof)?;
            eprintln!("{}", report.stats);
        }
    }
    obs.write_metrics("export", |doc| {
        doc.set("steps", report.steps.len())
            .set("proof_bytes", proof.len())
            .set("learned", report.stats.learned)
            .set("deletions", report.stats.deletions);
    })?;
    Ok(ExitCode::SUCCESS)
}

fn cmd_core(rest: &[String]) -> CliResult {
    let mut args = rest.to_vec();
    let mut obs = CliObserver::from_args(&mut args)?;
    let iterations: usize = take_opt(&mut args, "--iterations")?
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(30);
    let out = take_opt(&mut args, "--out")?;
    let [path] = args.as_slice() else {
        return Err("core needs exactly one CNF file".into());
    };
    let mut root = Span::start("core", &mut obs);
    let parse = Phase::start("parse", &mut obs);
    let cnf = dimacs::read_file(path)?;
    parse.finish(&mut obs);
    let minimize = Phase::start("core:minimize", &mut obs);
    let result = minimize_core(&cnf, &SolverConfig::default(), iterations)?;
    minimize.finish(&mut obs);
    for (i, it) in result.iterations.iter().enumerate() {
        println!(
            "iteration {:>2}: {} clauses, {} variables",
            i + 1,
            it.num_clauses,
            it.num_vars
        );
    }
    let core = result.final_core(&cnf);
    println!(
        "final core: {} of {} clauses (fixed point: {})",
        core.num_clauses(),
        cnf.num_clauses(),
        result.reached_fixed_point
    );
    obs.observe(&Event::GaugeSet {
        name: "core.final_clauses",
        value: core.num_clauses() as f64,
    });
    root.stop(&mut obs);
    obs.write_metrics("core", |doc| {
        let rows: Vec<Json> = result
            .iterations
            .iter()
            .map(|it| {
                let mut row = Json::object();
                row.set("num_clauses", it.num_clauses)
                    .set("num_vars", it.num_vars);
                row
            })
            .collect();
        let mut section = Json::object();
        section
            .set("iterations", Json::Array(rows))
            .set("final_clauses", core.num_clauses())
            .set("final_vars", core.num_vars())
            .set("reached_fixed_point", result.reached_fixed_point);
        doc.set("core", section);
    })?;
    if let Some(out) = out {
        dimacs::write_file(&out, &core.to_subformula(&cnf))?;
        println!("core written to {out}");
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_trim(rest: &[String]) -> CliResult {
    use rescheck::checker::trim_trace_observed;
    let mut args = rest.to_vec();
    let mut obs = CliObserver::from_args(&mut args)?;
    let out = take_opt(&mut args, "--out")?.ok_or("trim needs --out <file>")?;
    let binary = take_flag(&mut args, "--binary");
    let [cnf_path, trace_path] = args.as_slice() else {
        return Err("trim needs a CNF file and a trace file".into());
    };
    let mut root = Span::start("trim", &mut obs);
    let parse = Phase::start("parse", &mut obs);
    let cnf = dimacs::read_file(cnf_path)?;
    let trace = FileTrace::open(trace_path)?;
    parse.finish(&mut obs);
    let trimmed = trim_trace_observed(&cnf, &trace, &mut obs)?;
    let encode = Phase::start("trace-encode", &mut obs);
    let (bytes, count) = encode_trace_file(&out, binary, &trimmed.events)?;
    encode.finish(&mut obs);
    obs.observe(&Event::GaugeSet {
        name: "trace.bytes_written",
        value: bytes as f64,
    });
    obs.observe(&Event::GaugeSet {
        name: "trace.events_written",
        value: count as f64,
    });
    println!(
        "kept {} of {} learned clauses ({:.1}%); core: {} of {} original clauses",
        trimmed.kept_learned,
        trimmed.kept_learned + trimmed.dropped_learned,
        trimmed.kept_percent(),
        trimmed.core.num_clauses(),
        cnf.num_clauses()
    );
    println!("trimmed trace written to {out}");
    root.stop(&mut obs);
    obs.write_metrics("trim", |doc| {
        let mut section = Json::object();
        section
            .set("kept_learned", trimmed.kept_learned)
            .set("dropped_learned", trimmed.dropped_learned)
            .set("kept_percent", trimmed.kept_percent())
            .set("core_clauses", trimmed.core.num_clauses());
        doc.set("trim", section);
    })?;
    Ok(ExitCode::SUCCESS)
}

fn cmd_stats(rest: &[String]) -> CliResult {
    use rescheck::checker::proof_stats;
    let mut args = rest.to_vec();
    let mut obs = CliObserver::from_args(&mut args)?;
    let [cnf_path, trace_path] = args.as_slice() else {
        return Err("stats needs a CNF file and a trace file".into());
    };
    let mut root = Span::start("stats", &mut obs);
    let parse = Phase::start("parse", &mut obs);
    let cnf = dimacs::read_file(cnf_path)?;
    let trace = FileTrace::open(trace_path)?;
    parse.finish(&mut obs);
    let scan = Phase::start("check:pass1", &mut obs);
    let stats = proof_stats(&cnf, &trace)?;
    scan.finish(&mut obs);
    println!("{stats}");
    root.stop(&mut obs);
    obs.write_metrics("stats", |doc| {
        doc.set("proof", report::proof_stats_json(&stats));
    })?;
    Ok(ExitCode::SUCCESS)
}

fn cmd_gen(rest: &[String]) -> CliResult {
    let mut args = rest.to_vec();
    let seed_flag = take_opt(&mut args, "--seed")?
        .map(|s| s.parse::<u64>())
        .transpose()?;
    let usize_arg = |i: usize| -> Result<usize, Box<dyn std::error::Error>> {
        Ok(args
            .get(i)
            .ok_or_else(|| format!("missing argument {i} for gen"))?
            .parse()?)
    };
    // Randomized families take their seed positionally or via --seed
    // (the flag wins); deterministic families reject the flag outright
    // rather than silently ignoring it.
    let seed_arg = |i: usize| -> Result<u64, Box<dyn std::error::Error>> {
        match seed_flag {
            Some(seed) => Ok(seed),
            None => Ok(args
                .get(i)
                .ok_or_else(|| format!("missing seed: pass it as argument {i} or via --seed"))?
                .parse()?),
        }
    };
    let family = args.first().map(String::as_str);
    if seed_flag.is_some() && !matches!(family, Some("random" | "routing")) {
        return Err(format!(
            "--seed only applies to the randomized families (random, routing), not {:?}",
            family.unwrap_or("<none>")
        )
        .into());
    }
    let instance = match family {
        Some("pigeonhole") => workloads::pigeonhole::instance(usize_arg(1)?),
        Some("parity") => workloads::parity::chained_parity(usize_arg(1)?),
        Some("adder") => workloads::equiv::adder_miter(usize_arg(1)?),
        Some("longmult") => workloads::bmc::longmult(usize_arg(1)?),
        Some("barrel") => workloads::bmc::barrel(usize_arg(1)?, usize_arg(2)?),
        Some("routing") => {
            workloads::routing::congested_channel(usize_arg(1)?, usize_arg(2)?, seed_arg(3)?)
        }
        Some("planning") => workloads::planning::agent_swap(usize_arg(1)?, usize_arg(2)?),
        Some("pipe") => workloads::pipeline::pipe(usize_arg(1)?, usize_arg(2)?),
        Some("atpg") => workloads::atpg::redundant_fault(usize_arg(1)?, usize_arg(2)?),
        Some("random") => {
            workloads::random_ksat::instance(usize_arg(1)?, usize_arg(2)?, 3, seed_arg(3)?)
        }
        other => return Err(format!("unknown family {other:?}\n{USAGE}").into()),
    };
    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    writeln!(lock, "c {instance}")?;
    if let Some(expected) = instance.expected {
        writeln!(lock, "c expected: {expected}")?;
    }
    dimacs::write(&mut lock, &instance.cnf)?;
    Ok(ExitCode::SUCCESS)
}

fn cmd_fuzz(rest: &[String]) -> CliResult {
    use rescheck_fuzz::{run_campaign, CampaignConfig, InjectedBug};
    let mut args = rest.to_vec();
    let mut obs = CliObserver::from_args(&mut args)?;
    let defaults = CampaignConfig::default();
    let seed = take_opt(&mut args, "--seed")?
        .ok_or("fuzz needs --seed <s>")?
        .parse::<u64>()?;
    let iterations = take_opt(&mut args, "--iters")?
        .ok_or("fuzz needs --iters <n>")?
        .parse::<u64>()?;
    let max_vars = match take_opt(&mut args, "--max-vars")? {
        Some(v) => v.parse()?,
        None => defaults.oracle.max_vars,
    };
    let mutants_per_trace = match take_opt(&mut args, "--mutants")? {
        Some(v) => v.parse()?,
        None => defaults.oracle.mutants_per_trace,
    };
    let conflict_limit = match take_opt(&mut args, "--conflict-limit")? {
        Some(v) => v.parse()?,
        None => defaults.oracle.conflict_limit,
    };
    let shrink_budget = match take_opt(&mut args, "--shrink-budget")? {
        Some(v) => v.parse()?,
        None => defaults.shrink_budget,
    };
    let max_findings = match take_opt(&mut args, "--max-findings")? {
        Some(v) => v.parse()?,
        None => defaults.max_findings,
    };
    let artifact_dir = take_opt(&mut args, "--artifacts")?.map(std::path::PathBuf::from);
    let inject = match take_opt(&mut args, "--inject")? {
        Some(v) => Some(
            InjectedBug::parse(&v)
                .ok_or_else(|| format!("unknown --inject {v:?} (reject-valid|accept-mutants)"))?,
        ),
        None => None,
    };
    let quiet = take_flag(&mut args, "--quiet");
    if !args.is_empty() {
        return Err(format!("fuzz does not take positional arguments: {args:?}").into());
    }
    let cfg = CampaignConfig {
        seed,
        iterations,
        oracle: rescheck_fuzz::OracleConfig {
            conflict_limit,
            mutants_per_trace,
            max_vars,
            inject,
            ..defaults.oracle
        },
        shrink_budget,
        artifact_dir,
        max_findings,
    };

    let mut root = Span::start("fuzz", &mut obs);
    let fuzz_phase = Phase::start("fuzz:campaign", &mut obs);
    let outcome = run_campaign(&cfg, &mut obs)?;
    fuzz_phase.finish(&mut obs);
    root.stop(&mut obs);

    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    if !quiet {
        for line in &outcome.log {
            writeln!(lock, "{line}")?;
        }
    }
    write!(lock, "{}", outcome.summary())?;
    for f in &outcome.findings {
        if let Some(dir) = &f.case_dir {
            writeln!(lock, "repro written to {}", dir.display())?;
        }
    }
    drop(lock);

    obs.write_metrics("fuzz", |doc| {
        let mut section = Json::object();
        section
            .set("seed", format!("{:#018x}", outcome.seed))
            .set("iterations", outcome.iterations_run)
            .set("findings", outcome.findings.len())
            .set("digest", format!("{:#018x}", outcome.digest()));
        doc.set("fuzz", section);
    })?;
    Ok(if outcome.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}

fn cmd_serve(rest: &[String]) -> CliResult {
    use rescheck_serve::{serve_stdin, serve_tcp, ServeConfig};
    let mut args = rest.to_vec();
    let listen = take_opt(&mut args, "--listen")?;
    let use_stdin = take_flag(&mut args, "--stdin");
    if use_stdin && listen.is_some() {
        return Err("--stdin and --listen are mutually exclusive".into());
    }
    let defaults = ServeConfig::default();
    let workers = take_opt(&mut args, "--jobs")?
        .map(|s| s.parse::<usize>())
        .transpose()?
        .unwrap_or(defaults.workers);
    let queue_depth = take_opt(&mut args, "--queue-depth")?
        .map(|s| s.parse::<usize>())
        .transpose()?
        .unwrap_or(defaults.queue_depth);
    let mem_total = take_opt(&mut args, "--mem-total")?
        .map(|s| s.parse::<u64>())
        .transpose()?;
    let default_timeout_ms = take_opt(&mut args, "--timeout-ms")?
        .map(|s| s.parse::<u64>())
        .transpose()?;
    let max_frame_bytes = take_opt(&mut args, "--max-frame-bytes")?
        .map(|s| s.parse::<usize>())
        .transpose()?
        .unwrap_or(defaults.max_frame_bytes);
    if !args.is_empty() {
        return Err(format!("serve does not take positional arguments: {args:?}").into());
    }
    let config = ServeConfig {
        workers,
        queue_depth,
        mem_total,
        default_timeout_ms,
        max_frame_bytes,
    };
    let summary = match listen {
        // Default front end is stdin: frames in on stdin, verdicts (and
        // the final summary frame) out on stdout.
        None => serve_stdin(config)?,
        Some(addr) => {
            let summary = serve_tcp(config, &addr, |local| {
                eprintln!("c rescheck serve listening on {local}");
            })?;
            // TCP clients are gone by wind-down; the summary goes to the
            // operator's stdout instead.
            println!("{summary}");
            summary
        }
    };
    let completed = summary.get("jobs_completed").and_then(Json::as_u64);
    eprintln!(
        "c serve wound down cleanly ({} jobs completed)",
        completed.unwrap_or(0)
    );
    Ok(ExitCode::SUCCESS)
}
