//! `rescheck` — command-line front end for solving, checking and core
//! extraction on DIMACS CNF files.
//!
//! ```text
//! rescheck solve <file.cnf> [--trace <out>] [--binary] [--no-learning]
//!                [--no-deletion] [--no-restarts]
//! rescheck check <file.cnf> <trace> [--strategy df|bf] [--mem-limit <bytes>]
//! rescheck core  <file.cnf> [--iterations <n>] [--out <core.cnf>]
//! rescheck gen   <family> [args…]        # writes DIMACS to stdout
//! ```

use rescheck::prelude::*;
use rescheck::workloads;
use std::io::Write;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("solve") => cmd_solve(&args[1..]),
        Some("check") => cmd_check(&args[1..]),
        Some("core") => cmd_core(&args[1..]),
        Some("trim") => cmd_trim(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("gen") => cmd_gen(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            eprint!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown command {other:?}\n{USAGE}").into()),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            // A closed stdout (e.g. piping into `head`) is not an error.
            if let Some(io) = e.downcast_ref::<std::io::Error>() {
                if io.kind() == std::io::ErrorKind::BrokenPipe {
                    return ExitCode::SUCCESS;
                }
            }
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
rescheck — validate SAT solver results with a resolution-based checker

USAGE:
  rescheck solve <file.cnf> [--trace <out>] [--binary]
                 [--no-learning] [--no-deletion] [--no-restarts]
  rescheck check <file.cnf> <trace> [--strategy df|bf|hybrid] [--mem-limit <bytes>]
  rescheck core  <file.cnf> [--iterations <n>] [--out <core.cnf>]
  rescheck trim  <file.cnf> <trace> --out <trimmed> [--binary]
  rescheck stats <file.cnf> <trace>
  rescheck gen   <family> [args…]      (families: pigeonhole <holes>,
                 parity <n>, adder <width>, longmult <width>,
                 barrel <positions> <bound>, routing <tracks> <easy> <seed>,
                 planning <path> <horizon>, pipe <width> <depth>,
                 atpg <width> <redundancy>, random <vars> <clauses> <seed>)

Exit codes: solve → 10 SAT / 20 UNSAT (competition convention);
check/core → 0 on success, 1 on an invalid proof, 2 on usage errors.
";

type CliResult = Result<ExitCode, Box<dyn std::error::Error>>;

fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(pos) = args.iter().position(|a| a == flag) {
        args.remove(pos);
        true
    } else {
        false
    }
}

fn take_opt(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    if let Some(pos) = args.iter().position(|a| a == flag) {
        if pos + 1 >= args.len() {
            return Err(format!("{flag} needs a value"));
        }
        args.remove(pos);
        Ok(Some(args.remove(pos)))
    } else {
        Ok(None)
    }
}

fn cmd_solve(rest: &[String]) -> CliResult {
    let mut args = rest.to_vec();
    let trace_path = take_opt(&mut args, "--trace")?;
    let binary = take_flag(&mut args, "--binary");
    let mut cfg = SolverConfig::default();
    if take_flag(&mut args, "--no-learning") {
        cfg.learning = false;
    }
    if take_flag(&mut args, "--no-deletion") {
        cfg.clause_deletion = false;
    }
    if take_flag(&mut args, "--no-restarts") {
        cfg.restarts = false;
    }
    let [path] = args.as_slice() else {
        return Err("solve needs exactly one CNF file".into());
    };
    let cnf = dimacs::read_file(path)?;
    let mut solver = Solver::from_cnf(&cnf, cfg);

    let result = match &trace_path {
        Some(out) => {
            let file = std::io::BufWriter::new(std::fs::File::create(out)?);
            if binary {
                let mut sink = BinaryWriter::new(file)?;
                solver.solve_traced(&mut sink)?
            } else {
                let mut sink = AsciiWriter::new(file);
                solver.solve_traced(&mut sink)?
            }
        }
        None => solver.solve(),
    };
    eprintln!("c {}", solver.stats());
    match result {
        SolveResult::Satisfiable(model) => {
            println!("s SATISFIABLE");
            let mut line = String::from("v");
            for (var, value) in model.iter() {
                if let Some(b) = value.to_bool() {
                    let d = var.to_dimacs() as i64;
                    line.push_str(&format!(" {}", if b { d } else { -d }));
                }
            }
            println!("{line} 0");
            Ok(ExitCode::from(10))
        }
        SolveResult::Unsatisfiable => {
            println!("s UNSATISFIABLE");
            if let Some(out) = trace_path {
                eprintln!("c resolve trace written to {out}");
            }
            Ok(ExitCode::from(20))
        }
        SolveResult::Unknown => {
            println!("s UNKNOWN");
            Ok(ExitCode::SUCCESS)
        }
    }
}

fn cmd_check(rest: &[String]) -> CliResult {
    let mut args = rest.to_vec();
    let strategy = match take_opt(&mut args, "--strategy")?.as_deref() {
        None | Some("df") => Strategy::DepthFirst,
        Some("bf") => Strategy::BreadthFirst,
        Some("hybrid") => Strategy::Hybrid,
        Some(other) => return Err(format!("unknown strategy {other:?} (df|bf|hybrid)").into()),
    };
    let memory_limit = take_opt(&mut args, "--mem-limit")?
        .map(|s| s.parse::<u64>())
        .transpose()?;
    let [cnf_path, trace_path] = args.as_slice() else {
        return Err("check needs a CNF file and a trace file".into());
    };
    let cnf = dimacs::read_file(cnf_path)?;
    let trace = FileTrace::open(trace_path)?;
    let config = CheckConfig { memory_limit };
    match check_unsat_claim(&cnf, &trace, strategy, &config) {
        Ok(outcome) => {
            println!("VALID UNSAT proof");
            println!("{}", outcome.stats);
            if let Some(core) = outcome.core {
                println!(
                    "unsat core: {} of {} clauses, {} variables",
                    core.num_clauses(),
                    cnf.num_clauses(),
                    core.num_vars()
                );
            }
            Ok(ExitCode::SUCCESS)
        }
        Err(e) => {
            println!("INVALID proof: {e}");
            Ok(ExitCode::from(1))
        }
    }
}

fn cmd_core(rest: &[String]) -> CliResult {
    let mut args = rest.to_vec();
    let iterations: usize = take_opt(&mut args, "--iterations")?
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(30);
    let out = take_opt(&mut args, "--out")?;
    let [path] = args.as_slice() else {
        return Err("core needs exactly one CNF file".into());
    };
    let cnf = dimacs::read_file(path)?;
    let result = minimize_core(&cnf, &SolverConfig::default(), iterations)?;
    for (i, it) in result.iterations.iter().enumerate() {
        println!(
            "iteration {:>2}: {} clauses, {} variables",
            i + 1,
            it.num_clauses,
            it.num_vars
        );
    }
    let core = result.final_core(&cnf);
    println!(
        "final core: {} of {} clauses (fixed point: {})",
        core.num_clauses(),
        cnf.num_clauses(),
        result.reached_fixed_point
    );
    if let Some(out) = out {
        dimacs::write_file(&out, &core.to_subformula(&cnf))?;
        println!("core written to {out}");
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_trim(rest: &[String]) -> CliResult {
    use rescheck::checker::trim_trace;
    use rescheck::trace::TraceSink as _;
    let mut args = rest.to_vec();
    let out = take_opt(&mut args, "--out")?.ok_or("trim needs --out <file>")?;
    let binary = take_flag(&mut args, "--binary");
    let [cnf_path, trace_path] = args.as_slice() else {
        return Err("trim needs a CNF file and a trace file".into());
    };
    let cnf = dimacs::read_file(cnf_path)?;
    let trace = FileTrace::open(trace_path)?;
    let trimmed = trim_trace(&cnf, &trace)?;
    let file = std::io::BufWriter::new(std::fs::File::create(&out)?);
    if binary {
        let mut sink = rescheck::trace::BinaryWriter::new(file)?;
        for e in &trimmed.events {
            sink.event(e)?;
        }
        sink.flush()?;
    } else {
        let mut sink = rescheck::trace::AsciiWriter::new(file);
        for e in &trimmed.events {
            sink.event(e)?;
        }
        sink.flush()?;
    }
    println!(
        "kept {} of {} learned clauses ({:.1}%); core: {} of {} original clauses",
        trimmed.kept_learned,
        trimmed.kept_learned + trimmed.dropped_learned,
        trimmed.kept_percent(),
        trimmed.core.num_clauses(),
        cnf.num_clauses()
    );
    println!("trimmed trace written to {out}");
    Ok(ExitCode::SUCCESS)
}

fn cmd_stats(rest: &[String]) -> CliResult {
    use rescheck::checker::proof_stats;
    let [cnf_path, trace_path] = rest else {
        return Err("stats needs a CNF file and a trace file".into());
    };
    let cnf = dimacs::read_file(cnf_path)?;
    let trace = FileTrace::open(trace_path)?;
    let stats = proof_stats(&cnf, &trace)?;
    println!("{stats}");
    Ok(ExitCode::SUCCESS)
}

fn cmd_gen(rest: &[String]) -> CliResult {
    let usize_arg = |i: usize| -> Result<usize, Box<dyn std::error::Error>> {
        Ok(rest
            .get(i)
            .ok_or_else(|| format!("missing argument {i} for gen"))?
            .parse()?)
    };
    let instance = match rest.first().map(String::as_str) {
        Some("pigeonhole") => workloads::pigeonhole::instance(usize_arg(1)?),
        Some("parity") => workloads::parity::chained_parity(usize_arg(1)?),
        Some("adder") => workloads::equiv::adder_miter(usize_arg(1)?),
        Some("longmult") => workloads::bmc::longmult(usize_arg(1)?),
        Some("barrel") => workloads::bmc::barrel(usize_arg(1)?, usize_arg(2)?),
        Some("routing") => workloads::routing::congested_channel(
            usize_arg(1)?,
            usize_arg(2)?,
            usize_arg(3)? as u64,
        ),
        Some("planning") => workloads::planning::agent_swap(usize_arg(1)?, usize_arg(2)?),
        Some("pipe") => workloads::pipeline::pipe(usize_arg(1)?, usize_arg(2)?),
        Some("atpg") => workloads::atpg::redundant_fault(usize_arg(1)?, usize_arg(2)?),
        Some("random") => workloads::random_ksat::instance(
            usize_arg(1)?,
            usize_arg(2)?,
            3,
            usize_arg(3)? as u64,
        ),
        other => return Err(format!("unknown family {other:?}\n{USAGE}").into()),
    };
    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    writeln!(lock, "c {instance}")?;
    if let Some(expected) = instance.expected {
        writeln!(lock, "c expected: {expected}")?;
    }
    dimacs::write(&mut lock, &instance.cnf)?;
    Ok(ExitCode::SUCCESS)
}
